"""Value-level types shared by the storage, core and baseline packages.

The library stores opaque string keys mapped to byte values.  Reads carry the
batch number in which the returned value became visible — this is the version
used by optimistic concurrency control validation (Definition 3.1 in the
paper) and by the snapshot read-only protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional

from repro.common.ids import NO_BATCH, BatchNumber, PartitionId

#: Database key.  Keys are opaque strings; the partitioner hashes them.
Key = str

#: Database value.  Values are stored as ``bytes``.
Value = bytes


def as_value(data: "bytes | str") -> Value:
    """Coerce ``data`` to the canonical value representation (``bytes``)."""
    if isinstance(data, bytes):
        return data
    return data.encode("utf-8")


class TxnStatus(enum.Enum):
    """Lifecycle of a transaction as observed by the client."""

    PENDING = "pending"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TxnKind(enum.Enum):
    """Classification used by the workload generator and the metrics layer."""

    LOCAL_WRITE_ONLY = "local-write-only"
    LOCAL_READ_WRITE = "local-read-write"
    DISTRIBUTED_READ_WRITE = "distributed-read-write"
    READ_ONLY = "read-only"


@dataclass(frozen=True)
class VersionedValue:
    """A value together with the batch number in which it became visible."""

    value: Value
    version: BatchNumber = NO_BATCH

    def is_initial(self) -> bool:
        """True when the value pre-dates every batch (database preload)."""
        return self.version == NO_BATCH


@dataclass(frozen=True)
class ReadRecord:
    """One entry of a transaction's read set.

    ``version`` is the batch number the value was read from; commit-time
    validation checks that the key has not been overwritten by a later batch
    (conflict-detection rule 1 in Definition 3.1).
    """

    key: Key
    value: Value
    version: BatchNumber
    partition: PartitionId


@dataclass(frozen=True)
class WriteRecord:
    """One entry of a transaction's write set."""

    key: Key
    value: Value
    partition: PartitionId


@dataclass
class ReadSet:
    """Mutable collection of read records keyed by key."""

    records: Dict[Key, ReadRecord] = field(default_factory=dict)

    def add(self, record: ReadRecord) -> None:
        self.records[record.key] = record

    def keys(self) -> FrozenSet[Key]:
        return frozenset(self.records)

    def partitions(self) -> FrozenSet[PartitionId]:
        return frozenset(r.partition for r in self.records.values())

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, key: Key) -> bool:
        return key in self.records


@dataclass
class WriteSet:
    """Mutable collection of write records keyed by key (last write wins)."""

    records: Dict[Key, WriteRecord] = field(default_factory=dict)

    def add(self, record: WriteRecord) -> None:
        self.records[record.key] = record

    def keys(self) -> FrozenSet[Key]:
        return frozenset(self.records)

    def partitions(self) -> FrozenSet[PartitionId]:
        return frozenset(r.partition for r in self.records.values())

    def as_mapping(self) -> Mapping[Key, Value]:
        return {k: r.value for k, r in self.records.items()}

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, key: Key) -> bool:
        return key in self.records


@dataclass(frozen=True)
class ReadOnlyResult:
    """Result of a snapshot read-only transaction.

    ``values`` maps each requested key to the value observed in the snapshot
    (``None`` when the key has never been written).  ``rounds`` records how
    many protocol rounds were needed (1 or 2); ``latency_ms`` is simulated
    end-to-end latency and ``round2_latency_ms`` the part contributed by the
    second round, matching the split reported in Figure 5 of the paper.
    ``served_by_edge`` is True when round 1 was answered by an edge proxy's
    verified cache instead of the core clusters (``repro.edge``).
    """

    txn_id: str
    values: Mapping[Key, Optional[Value]]
    versions: Mapping[Key, BatchNumber]
    rounds: int
    latency_ms: float
    round2_latency_ms: float = 0.0
    verified: bool = True
    served_by_edge: bool = False

    def value_of(self, key: Key) -> Optional[Value]:
        return self.values.get(key)


@dataclass(frozen=True)
class CommitResult:
    """Outcome of a read-write transaction submitted for commitment."""

    txn_id: str
    status: TxnStatus
    commit_batch: BatchNumber = NO_BATCH
    latency_ms: float = 0.0
    abort_reason: str = ""

    @property
    def committed(self) -> bool:
        return self.status is TxnStatus.COMMITTED
