"""Configuration objects for the simulated TransEdge deployment.

A single :class:`SystemConfig` describes the whole deployment: partitioning,
replication factor, batching policy, network latency model parameters and the
per-operation processing-cost model used to derive simulated throughput.

The defaults mirror the experimental setup in Section 5.1 of the paper
(5 clusters, 7 replicas per cluster tolerating ``f = 2`` byzantine faults),
scaled so that the full benchmark suite completes quickly on one machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class LatencyConfig:
    """Network latency parameters, in simulated milliseconds.

    ``inter_cluster_extra_ms`` models the "additional latency between
    clusters" knob the paper sweeps in Figures 8, 12 and 13.

    ``client_to_edge_ms`` is the near-edge link: a client talking to an edge
    proxy placed in its own region.  It is deliberately much smaller than
    ``client_to_cluster_ms`` so that the edge-tier experiments can model
    clients that are close to a proxy but far from every core cluster.
    """

    intra_cluster_ms: float = 0.5
    inter_cluster_ms: float = 2.0
    client_to_cluster_ms: float = 1.0
    client_to_edge_ms: float = 0.2
    inter_cluster_extra_ms: float = 0.0
    jitter_fraction: float = 0.05

    def validate(self) -> None:
        for name in (
            "intra_cluster_ms",
            "inter_cluster_ms",
            "client_to_cluster_ms",
            "client_to_edge_ms",
            "inter_cluster_extra_ms",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if not 0 <= self.jitter_fraction < 1:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")


@dataclass(frozen=True)
class CostConfig:
    """Per-operation processing costs, in simulated milliseconds.

    Nodes are modelled as single-server queues: every message handled by a
    node occupies it for the modelled cost, which is what bounds simulated
    throughput.  The constants are small, laptop-class estimates; only their
    ratios matter for reproducing the shape of the paper's figures.
    """

    signature_sign_ms: float = 0.02
    signature_verify_ms: float = 0.02
    #: Extra occupancy charged per signature-verify *cache miss*, on top of
    #: the flat ``signature_verify_ms``.  The default 0.0 keeps the seed cost
    #: model byte-for-byte (hits and misses cost the same); setting it makes
    #: simulated latency sensitive to verify-cache health, which is what lets
    #: the chaos performance oracle see a wedged cache.
    verify_cache_miss_penalty_ms: float = 0.0
    hash_ms: float = 0.001
    read_op_ms: float = 0.002
    write_op_ms: float = 0.003
    #: Cost of producing one Merkle proof *per tree level*; the total charge
    #: is O(log K) in the partition size (see :meth:`merkle_proof_cost_ms`).
    #: The default reproduces the old flat 0.004 ms charge at K = 1000 keys
    #: (a 10-level tree).
    merkle_proof_per_level_ms: float = 0.0004
    conflict_check_ms: float = 0.002
    batch_base_ms: float = 0.05
    message_handling_ms: float = 0.01
    client_think_ms: float = 0.0

    def merkle_proof_cost_ms(self, tree_keys: int) -> float:
        """Cost of one membership proof over a tree of ``tree_keys`` leaves.

        A proof walks one root path, so its cost scales with the tree depth
        ``ceil(log2 K)`` — the state-size-aware replacement for the old flat
        per-proof charge, which made simulated service time insensitive to
        the partition size.
        """
        levels = max(1, math.ceil(math.log2(tree_keys))) if tree_keys > 1 else 1
        return self.merkle_proof_per_level_ms * levels

    def tree_rebuild_cost_ms(self, tree_keys: int) -> float:
        """Cost of rebuilding a full Merkle tree over ``tree_keys`` leaves.

        Hashing every leaf plus the internal nodes is ~2K hashes; this is the
        O(K) charge a round-2 snapshot request pays when the archive cannot
        answer and the replica falls back to a rebuild, so simulated
        throughput reflects the archive fast path as well as wall-clock does.
        """
        return self.hash_ms * 2 * max(1, tree_keys)

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class BatchConfig:
    """Batching policy of the partition leader.

    A batch is sealed and proposed to consensus when either ``max_size``
    transactions have accumulated or ``timeout_ms`` has elapsed since the
    first transaction entered the in-progress batch, whichever comes first.
    """

    max_size: int = 100
    timeout_ms: float = 5.0

    def validate(self) -> None:
        if self.max_size < 1:
            raise ConfigurationError("batch max_size must be >= 1")
        if self.timeout_ms <= 0:
            raise ConfigurationError("batch timeout_ms must be > 0")


@dataclass(frozen=True)
class FreshnessConfig:
    """Freshness window parameters (Section 4.4.2 of the paper)."""

    enabled: bool = True
    acceptance_window_ms: float = 30_000.0
    client_staleness_bound_ms: Optional[float] = None

    def validate(self) -> None:
        if self.acceptance_window_ms <= 0:
            raise ConfigurationError("acceptance_window_ms must be > 0")
        if (
            self.client_staleness_bound_ms is not None
            and self.client_staleness_bound_ms <= 0
        ):
            raise ConfigurationError("client_staleness_bound_ms must be > 0")


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing, log-compaction and state-transfer policy (``repro.recovery``).

    Every ``interval_batches`` delivered batches each replica digests its
    partition state and votes for a checkpoint; ``2f + 1`` matching votes make
    the checkpoint *stable*, after which the SMR log below it is truncated and
    version chains are pruned down to ``retention_batches`` below the stable
    checkpoint.  Disabling checkpointing restores the unbounded seed
    behaviour (useful for history-verification tests that replay full logs).
    """

    enabled: bool = True
    interval_batches: int = 100
    retention_batches: int = 20

    def validate(self) -> None:
        if self.interval_batches < 1:
            raise ConfigurationError("checkpoint interval_batches must be >= 1")
        if self.retention_batches < 0:
            raise ConfigurationError("checkpoint retention_batches must be >= 0")


@dataclass(frozen=True)
class FailoverConfig:
    """Automatic failure detection and 2PC resumption (``repro.recovery`` PR 3).

    ``progress_timeout_ms`` is how long a replica tolerates *pending work
    without progress* (an in-flight consensus instance, a gap in deliveries,
    an undecided prepare group, or a client complaint) before voting to
    replace its leader; each further round of silence casts another vote, up
    to ``max_suspect_rounds`` consecutive rounds (the monitor then stands
    down until progress resumes, which bounds simulation work when a cluster
    has genuinely lost liveness).  ``two_pc_retry_ms`` is the cadence at
    which a leader re-drives unfinished Two-Phase-Commit work — re-sending
    coordinator prepares for missing votes, re-sending participant votes,
    and querying the coordinator cluster for decisions it may have certified
    without us (``DecisionQuery``) — with at most ``two_pc_max_retries``
    attempts per transaction.  Timers are armed lazily (only while matching
    work is pending), so an idle or healthy deployment schedules nothing.
    ``enabled=False`` restores the PR-1 behaviour: crashes of a leader need a
    manual ``suspect_leader`` nudge and stranded 2PC participants stay
    stranded.

    ``replica_commit_replies`` makes every replica of the coordinator
    cluster report each client-visible outcome it applies from a delivered
    batch (:class:`repro.core.messages.ReplicaCommitReply`); a client
    accepts a commit once ``f + 1`` replicas agree, so a leader that dies
    immediately after its cluster certifies the outcome cannot strand the
    client until timeout.  Classic PBFT client behaviour; independent of
    ``enabled`` (it needs no failure detector).
    """

    enabled: bool = True
    progress_timeout_ms: float = 60.0
    max_suspect_rounds: int = 8
    two_pc_retry_ms: float = 40.0
    two_pc_max_retries: int = 10
    replica_commit_replies: bool = True

    def validate(self) -> None:
        if self.progress_timeout_ms <= 0:
            raise ConfigurationError("progress_timeout_ms must be > 0")
        if self.max_suspect_rounds < 1:
            raise ConfigurationError("max_suspect_rounds must be >= 1")
        if self.two_pc_retry_ms <= 0:
            raise ConfigurationError("two_pc_retry_ms must be > 0")
        if self.two_pc_max_retries < 1:
            raise ConfigurationError("two_pc_max_retries must be >= 1")


@dataclass(frozen=True)
class PerfConfig:
    """Hot-path performance knobs: Merkle tree archive and verify caching.

    ``archive_enabled`` keeps a copy-on-write archive of recent committed
    Merkle trees per partition, so round-2 snapshot reads are served in
    O(read · log K) instead of rebuilding an O(K) tree per request;
    ``archive_max_batches`` bounds its memory when checkpoint-driven pruning
    is off.  ``snapshot_rebuild_fallback`` controls what happens for batches
    older than the archive: rebuild the historical tree from the
    multi-version store (the pre-archive behaviour, default), or refuse the
    request (the client times out and retries another replica) — refusing is
    strictly O(read) service but trades liveness; serving any *other*
    snapshot would be unsound, since only the earliest dependency-satisfying
    header is covered by the protocol's two-round consistency argument.
    ``verify_cache_size`` sizes the LRU signature-verification cache shared
    through the :class:`~repro.crypto.signatures.KeyRegistry`, so a quorum of
    identical votes is canonicalised and verified once, not ``3f + 1`` times
    (0 disables the cache).

    ``archive_compaction`` merges adjacent archive deltas at checkpoint time
    for batches that no round-2 snapshot request can ever name (only the
    earliest header of each LCE run is reachable through the dependency
    lookup), which extends the retained window at equal memory; see
    :meth:`~repro.crypto.archive.MerkleTreeArchive.compact`.
    """

    archive_enabled: bool = True
    archive_max_batches: int = 512
    snapshot_rebuild_fallback: bool = True
    verify_cache_size: int = 4096
    archive_compaction: bool = True

    def validate(self) -> None:
        if self.archive_max_batches < 1:
            raise ConfigurationError("archive_max_batches must be >= 1")
        if self.verify_cache_size < 0:
            raise ConfigurationError("verify_cache_size must be >= 0")
        if not self.archive_enabled and not self.snapshot_rebuild_fallback:
            raise ConfigurationError(
                "archive_enabled=False with snapshot_rebuild_fallback=False "
                "would refuse every round-2 snapshot read"
            )


@dataclass(frozen=True)
class EdgeConfig:
    """Untrusted edge read-proxy tier (``repro.edge``).

    When ``enabled``, the deployment spawns ``num_proxies`` edge proxies that
    sit between clients and the core partition clusters.  Each proxy caches
    recent certified batch headers plus ``(key, value, version, proof)``
    entries per partition and serves snapshot read-only requests locally when
    its cache can satisfy the CD-vector consistency check, falling back to
    the core cluster on misses.  Proxies are *untrusted*: clients re-verify
    every proof and header exactly as they do for core replicas, so a
    byzantine or stale proxy can only be caught (and blacklisted), never
    believed.  ``enabled=False`` (the default) spawns nothing and leaves the
    client read path byte-for-byte unchanged.

    * ``cache_capacity`` — cached entries per partition per proxy (LRU).
    * ``cache_ttl_ms`` — entries older than this are refreshed from the core
      (``None`` disables the time bound).
    * ``max_header_lag_batches`` — a cached partition context whose header
      trails the newest announced header by more than this many batches is
      refreshed, bounding edge staleness in batches.
    * ``announce_interval_batches`` — core leaders announce every Nth
      certified header to the proxies.
    * ``routing`` — how clients pick a proxy: ``"nearest"`` prefers a proxy
      in the client's own region, ``"round-robin"`` spreads load evenly.
    * ``read_timeout_ms`` — how long a client waits for a proxy before
      falling back to the core cluster.
    * ``fetch_timeout_ms`` — how long a proxy waits for a core replica when
      filling a cache miss.
    """

    enabled: bool = False
    num_proxies: int = 2
    cache_capacity: int = 256
    cache_ttl_ms: Optional[float] = None
    max_header_lag_batches: int = 8
    announce_interval_batches: int = 1
    routing: str = "nearest"
    read_timeout_ms: float = 20_000.0
    fetch_timeout_ms: float = 20_000.0

    def validate(self) -> None:
        if self.num_proxies < 1:
            raise ConfigurationError("edge num_proxies must be >= 1")
        if self.cache_capacity < 1:
            raise ConfigurationError("edge cache_capacity must be >= 1")
        if self.cache_ttl_ms is not None and self.cache_ttl_ms <= 0:
            raise ConfigurationError("edge cache_ttl_ms must be > 0 when set")
        if self.max_header_lag_batches < 0:
            raise ConfigurationError("edge max_header_lag_batches must be >= 0")
        if self.announce_interval_batches < 1:
            raise ConfigurationError("edge announce_interval_batches must be >= 1")
        if self.routing not in ("nearest", "round-robin"):
            raise ConfigurationError(
                f"unknown edge routing policy {self.routing!r}; "
                "expected 'nearest' or 'round-robin'"
            )
        if self.read_timeout_ms <= 0 or self.fetch_timeout_ms <= 0:
            raise ConfigurationError("edge timeouts must be > 0")


@dataclass(frozen=True)
class ReliabilityConfig:
    """Reliable delivery over lossy core links (:mod:`repro.simnet.reliable`).

    When ``enabled``, every replica-to-replica message travels through a
    :class:`~repro.simnet.reliable.ReliableChannel`: per-link sequence
    numbers, cumulative acks piggybacked on reverse traffic (with a
    standalone ack after ``ack_delay_ms`` of silence), retransmission on a
    jittered exponential backoff starting at ``retransmit_base_ms`` and
    capped at ``retransmit_cap_ms``, and receiver-side dedup so protocol
    layers never observe a duplicate.  ``max_retransmits`` bounds the
    consecutive no-progress retransmission rounds per link before the
    outstanding window is abandoned (the chaos planner only opens *finite*
    loss windows, so the cap exists to bound simulation work against
    genuinely dead peers, not for correctness).

    ``rebroadcast_interval_ms`` is the cadence at which a
    :class:`~repro.bft.engine.PbftEngine` with stalled undelivered instances
    re-broadcasts its highest decided certificate, so a replica that missed
    an entire instance converges without a full state transfer.

    ``commit_retry_attempts``/``commit_retry_backoff_ms`` govern the client
    side: a commit reply timeout is retried against the coordinator (which
    answers duplicates from its decision log) instead of aborting outright.

    ``enabled=False`` restores the fire-and-forget seed behaviour
    byte-for-byte: no envelopes, no timers, no extra randomness drawn.
    """

    enabled: bool = True
    ack_delay_ms: float = 4.0
    retransmit_base_ms: float = 12.0
    retransmit_cap_ms: float = 120.0
    retransmit_jitter_fraction: float = 0.2
    max_retransmits: int = 12
    rebroadcast_interval_ms: float = 50.0
    commit_retry_attempts: int = 3
    commit_retry_backoff_ms: float = 30.0

    def validate(self) -> None:
        if self.ack_delay_ms <= 0:
            raise ConfigurationError("reliability ack_delay_ms must be > 0")
        if self.retransmit_base_ms <= 0:
            raise ConfigurationError("reliability retransmit_base_ms must be > 0")
        if self.retransmit_cap_ms < self.retransmit_base_ms:
            raise ConfigurationError(
                "reliability retransmit_cap_ms must be >= retransmit_base_ms"
            )
        if not 0 <= self.retransmit_jitter_fraction < 1:
            raise ConfigurationError(
                "reliability retransmit_jitter_fraction must be in [0, 1)"
            )
        if self.max_retransmits < 1:
            raise ConfigurationError("reliability max_retransmits must be >= 1")
        if self.rebroadcast_interval_ms <= 0:
            raise ConfigurationError("reliability rebroadcast_interval_ms must be > 0")
        if self.commit_retry_attempts < 1:
            raise ConfigurationError("reliability commit_retry_attempts must be >= 1")
        if self.commit_retry_backoff_ms <= 0:
            raise ConfigurationError("reliability commit_retry_backoff_ms must be > 0")


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs (:mod:`repro.obs`).

    ``tracing_enabled`` turns on causal spans: clients open one trace per
    transaction, a ``TraceContext`` rides on every message, and every node
    records queue/net/handle spans.  Tracing draws no randomness and
    schedules no simulator events, so enabling it never changes what a run
    *does* — only what it records — and the same seed always produces the
    same trace digest.  Off by default: the hot path then pays only a
    boolean check per message.

    ``events_enabled`` turns on the flight recorder: bounded per-node rings
    (``ring_capacity`` events each) of typed protocol events (view changes,
    checkpoints, recoveries, fault injections, cache refreshes).  On by
    default — the sites are rare and the memory is bounded.

    ``max_traces`` bounds trace retention: completed traces past the window
    are evicted oldest-first (the streaming digest already covers them).
    """

    tracing_enabled: bool = False
    events_enabled: bool = True
    ring_capacity: int = 256
    max_traces: int = 2048

    def validate(self) -> None:
        if self.ring_capacity < 1:
            raise ConfigurationError("obs ring_capacity must be >= 1")
        if self.max_traces < 1:
            raise ConfigurationError("obs max_traces must be >= 1")


@dataclass(frozen=True)
class MonitorConfig:
    """Live monitoring knobs (:mod:`repro.obs.monitor`).

    When ``enabled``, the deployment samples a :class:`~repro.obs.monitor.
    MetricsTimeline` of windowed counter deltas every ``window_ms`` of
    *simulated* time and derives per-node health states.  Sampling
    piggybacks on existing dispatches (no extra simulator events), draws no
    randomness and mutates no counters, so enabling it never changes what a
    run does — chaos fingerprints and trace digests are byte-identical with
    monitoring on or off.

    * ``window_ms`` — nominal width of one timeline window.
    * ``max_windows`` — retained window ring; older windows fold into the
      evicted-totals accumulator (deltas stay exact in aggregate).
    * ``latency_samples_per_window`` — per-window cap on retained raw
      end-to-end latency samples (counts stay exact past the cap).
    * ``healthy_after_quiet_windows`` — degraded/suspected nodes decay back
      to healthy after this many windows without a new degrading signal.
    * ``max_health_transitions`` — bounded health transition log.
    """

    enabled: bool = False
    window_ms: float = 50.0
    max_windows: int = 256
    latency_samples_per_window: int = 512
    healthy_after_quiet_windows: int = 3
    max_health_transitions: int = 1024

    def validate(self) -> None:
        if self.window_ms <= 0:
            raise ConfigurationError("monitor window_ms must be > 0")
        if self.max_windows < 1:
            raise ConfigurationError("monitor max_windows must be >= 1")
        if self.latency_samples_per_window < 1:
            raise ConfigurationError(
                "monitor latency_samples_per_window must be >= 1"
            )
        if self.healthy_after_quiet_windows < 1:
            raise ConfigurationError(
                "monitor healthy_after_quiet_windows must be >= 1"
            )
        if self.max_health_transitions < 1:
            raise ConfigurationError("monitor max_health_transitions must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level description of a simulated TransEdge deployment.

    ``perf`` collects the hot-path optimisation knobs (Merkle tree archive
    for snapshot reads, signature verify cache); see :class:`PerfConfig`.
    ``edge`` describes the optional untrusted edge read-proxy tier; see
    :class:`EdgeConfig`.  ``obs`` configures tracing and the flight
    recorder; see :class:`ObsConfig`.  ``monitor`` configures the live
    metrics timeline and health tracking; see :class:`MonitorConfig`.
    """

    num_partitions: int = 5
    fault_tolerance: int = 2
    batch: BatchConfig = field(default_factory=BatchConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    costs: CostConfig = field(default_factory=CostConfig)
    freshness: FreshnessConfig = field(default_factory=FreshnessConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    failover: FailoverConfig = field(default_factory=FailoverConfig)
    perf: PerfConfig = field(default_factory=PerfConfig)
    edge: EdgeConfig = field(default_factory=EdgeConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    crypto_backend: str = "hmac"
    seed: int = 7
    initial_keys: int = 1_000
    value_size: int = 256
    key_size: int = 4

    @property
    def cluster_size(self) -> int:
        """Replicas per cluster: ``3f + 1``."""
        return 3 * self.fault_tolerance + 1

    @property
    def quorum_size(self) -> int:
        """Consensus quorum: ``2f + 1``."""
        return 2 * self.fault_tolerance + 1

    @property
    def certificate_size(self) -> int:
        """Signatures carried in proofs sent across clusters: ``f + 1``."""
        return self.fault_tolerance + 1

    def validate(self) -> "SystemConfig":
        """Check internal consistency, returning ``self`` for chaining."""
        if self.num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        if self.fault_tolerance < 1:
            raise ConfigurationError("fault_tolerance (f) must be >= 1")
        if self.crypto_backend not in ("hmac", "rsa"):
            raise ConfigurationError(
                f"unknown crypto backend {self.crypto_backend!r}; expected 'hmac' or 'rsa'"
            )
        if self.initial_keys < 1:
            raise ConfigurationError("initial_keys must be >= 1")
        if self.value_size < 1 or self.key_size < 1:
            raise ConfigurationError("key/value sizes must be >= 1")
        self.batch.validate()
        self.latency.validate()
        self.costs.validate()
        self.freshness.validate()
        self.checkpoint.validate()
        self.failover.validate()
        self.perf.validate()
        self.edge.validate()
        self.reliability.validate()
        self.obs.validate()
        self.monitor.validate()
        return self

    def with_updates(self, **changes: object) -> "SystemConfig":
        """Return a copy with ``changes`` applied and validated.

        Nested configuration objects can be replaced wholesale, e.g.::

            config.with_updates(latency=LatencyConfig(inter_cluster_extra_ms=70))
        """
        return replace(self, **changes).validate()

    def with_tracing(self, enabled: bool = True, **obs_changes: object) -> "SystemConfig":
        """Copy with causal tracing toggled (and optional ObsConfig tweaks)."""
        return self.with_updates(
            obs=replace(self.obs, tracing_enabled=enabled, **obs_changes)
        )


def paper_scale_config() -> SystemConfig:
    """Configuration matching Section 5.1 of the paper.

    5 clusters of 7 replicas (``f = 2``); read-write transactions use 5 reads
    and 3 writes spread over the 5 clusters; read-only transactions read one
    key per cluster.  The key space is reduced from 1M to keep simulation
    state small — the hash partitioner and uniform key choice make the
    contention level a function of the *ratio* of transactions to keys, which
    benchmark workloads preserve.
    """
    return SystemConfig(num_partitions=5, fault_tolerance=2).validate()


def small_test_config(num_partitions: int = 2, fault_tolerance: int = 1) -> SystemConfig:
    """A small deployment used throughout the unit tests (fast to simulate)."""
    return SystemConfig(
        num_partitions=num_partitions,
        fault_tolerance=fault_tolerance,
        batch=BatchConfig(max_size=10, timeout_ms=2.0),
        initial_keys=64,
    ).validate()
