"""Identifiers for nodes, clusters, clients and transactions.

The simulated system addresses every participant with a small, hashable,
immutable identifier.  Replica identifiers carry their partition so that the
latency model can distinguish intra-cluster from inter-cluster links without
a lookup table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union

#: Partition index (``0 .. num_partitions - 1``).
PartitionId = int

#: Monotonically increasing batch index within one partition's SMR log.
BatchNumber = int

#: Sentinel batch number meaning "no dependency" / "nothing committed yet".
NO_BATCH: BatchNumber = -1


@dataclass(frozen=True, order=True)
class ReplicaId:
    """Address of one replica inside one partition's cluster."""

    partition: PartitionId
    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"P{self.partition}/R{self.index}"


@dataclass(frozen=True, order=True)
class ClientId:
    """Address of a client process."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"client:{self.name}"


@dataclass(frozen=True, order=True)
class EdgeProxyId:
    """Address of one untrusted edge read-proxy node (``repro.edge``)."""

    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"edge:{self.index}"


#: Anything that can send or receive messages on the simulated network.
NodeId = Union[ReplicaId, ClientId, EdgeProxyId]


class TxnIdGenerator:
    """Generates unique transaction identifiers for one client.

    Identifiers embed the client name so that two clients never collide, and
    a per-client counter so that ordering by identifier is meaningful in
    logs and tests.
    """

    def __init__(self, owner: str) -> None:
        self._owner = owner
        self._counter = itertools.count()

    def next(self) -> str:
        """Return a fresh transaction identifier."""
        return f"{self._owner}#{next(self._counter)}"


def leader_of(partition: PartitionId, view: int = 0, cluster_size: int = 4) -> ReplicaId:
    """Return the replica acting as leader of ``partition`` in ``view``.

    Leader selection is round-robin over the cluster members, the standard
    PBFT rule ``leader = view mod cluster_size``.
    """
    return ReplicaId(partition, view % cluster_size)
