"""Exception hierarchy shared across the TransEdge reproduction.

Every error raised by the library derives from :class:`TransEdgeError` so
applications can catch library failures with a single ``except`` clause while
still being able to distinguish protocol-level outcomes (transaction aborts),
verification failures (bad proofs or signatures) and configuration problems.
"""

from __future__ import annotations


class TransEdgeError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(TransEdgeError):
    """A configuration object is inconsistent or out of supported range."""


class SimulationError(TransEdgeError):
    """The discrete-event simulator was used incorrectly."""


class NetworkError(SimulationError):
    """A message was addressed to an unknown node or the bus is misused."""


class StorageError(TransEdgeError):
    """The multi-version store was asked for an impossible read or write."""


class UnknownKeyError(StorageError):
    """A key was requested that has never been written."""

    def __init__(self, key: str) -> None:
        super().__init__(f"key {key!r} has never been written")
        self.key = key


class CryptoError(TransEdgeError):
    """A cryptographic primitive failed or was misused."""


class SignatureError(CryptoError):
    """A signature failed to verify or a signer is unknown."""


class ProofError(CryptoError):
    """A Merkle membership proof failed to verify."""


class ConsensusError(TransEdgeError):
    """The BFT consensus engine was driven into an invalid state."""


class NotLeaderError(ConsensusError):
    """A proposal was submitted to a replica that is not the current leader."""


class TransactionError(TransEdgeError):
    """Base class for transaction-processing protocol errors."""


class TransactionAborted(TransactionError):
    """A transaction was aborted.

    The abort reason distinguishes conflict aborts (optimistic concurrency
    control validation failed) from interference aborts (the Augustus
    baseline aborts read-write transactions that hit shared read locks).
    """

    def __init__(self, txn_id: str, reason: str = "conflict") -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class InvalidTransactionError(TransactionError):
    """A transaction object violates the protocol interface."""


class ReadOnlyProtocolError(TransactionError):
    """The snapshot read-only protocol received an unverifiable response."""


class InconsistentSnapshotError(ReadOnlyProtocolError):
    """A distributed read-only result failed the dependency check.

    The two-round protocol is expected to repair this internally; seeing the
    error escape to an application indicates a bug (Theorem 4.6 guarantees at
    most two rounds).
    """


class FreshnessError(TransactionError):
    """A returned snapshot is older than the configured freshness window."""


class VerificationError(TransEdgeError):
    """An execution history failed a correctness check (serializability)."""
