"""Corpus self-test: prove every rule still detects its violation corpus.

A linter whose rules silently stopped matching is worse than no linter —
the tree looks clean because nothing is checked.  Mirroring the chaos
engine's ``--inject-bug`` self-tests, every rule ships a minimal *bad*
fixture it must flag and a *good* twin it must not, under
``tests/lint/corpus/<RULE>/``:

* ``bad.py`` / ``good.py`` — single-file fixtures (file rules), or
* ``bad/`` / ``good/`` — directory fixtures (cross-file project rules).

``run_selftest`` fails if any rule misses its bad fixture, flags its good
twin, lacks a corpus, or if a corpus directory names no known rule.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

from repro.lint.engine import Rule, collect_files, run_rules
from repro.lint.rules import all_rules


@dataclass
class SelfTestResult:
    """Outcome of one rule's corpus check."""

    rule_id: str
    ok: bool
    detail: str


def _fixture(corpus_dir: str, rule_id: str, kind: str) -> Optional[str]:
    base = os.path.join(corpus_dir, rule_id, kind)
    if os.path.isfile(base + ".py"):
        return base + ".py"
    if os.path.isdir(base):
        return base
    return None


def _check_rule(rule: Rule, corpus_dir: str) -> SelfTestResult:
    bad = _fixture(corpus_dir, rule.id, "bad")
    good = _fixture(corpus_dir, rule.id, "good")
    if bad is None or good is None:
        return SelfTestResult(
            rule.id, False, f"missing bad/good fixtures under {corpus_dir}/{rule.id}/"
        )
    bad_findings = [
        finding
        for finding in run_rules(collect_files([bad]), [rule], ignore_scopes=True)
        if finding.rule == rule.id
    ]
    if not bad_findings:
        return SelfTestResult(
            rule.id, False, f"bad fixture {bad} produced no {rule.id} finding"
        )
    good_findings = [
        finding
        for finding in run_rules(collect_files([good]), [rule], ignore_scopes=True)
        if finding.rule == rule.id
    ]
    if good_findings:
        first = good_findings[0]
        return SelfTestResult(
            rule.id,
            False,
            f"good fixture flagged: {first.path}:{first.line} {first.message}",
        )
    return SelfTestResult(
        rule.id, True, f"{len(bad_findings)} finding(s) on bad, 0 on good"
    )


def run_selftest(corpus_dir: str) -> List[SelfTestResult]:
    """Check every registered rule against its corpus pair."""
    results = [_check_rule(rule, corpus_dir) for rule in all_rules()]
    known = {rule.id for rule in all_rules()}
    if os.path.isdir(corpus_dir):
        for entry in sorted(os.listdir(corpus_dir)):
            full = os.path.join(corpus_dir, entry)
            if os.path.isdir(full) and entry not in known:
                results.append(
                    SelfTestResult(
                        entry, False, f"corpus directory {entry}/ names no known rule"
                    )
                )
    else:
        results.append(
            SelfTestResult("corpus", False, f"corpus directory {corpus_dir} not found")
        )
    return results
