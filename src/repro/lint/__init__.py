"""Static analysis for the TransEdge reproduction (``python -m repro.lint``).

The chaos engine (:mod:`repro.chaos`) finds invariant violations at runtime;
this package proves a class of them absent from the AST, which makes every
determinism claim structural rather than empirical.  Four rule families:

* **D — determinism**: no unseeded module-level randomness, no wall-clock or
  entropy reads, no iteration over bare ``set``/``frozenset`` values, no
  ``hash()``-dependent ordering, no mutable default arguments.  These are the
  hazards that leak ``PYTHONHASHSEED`` or the host clock into a simulation
  whose whole verification story is "same seed, same bytes" (PR 6 found one
  of these — set-iteration order in the workload key choosers — only after
  it corrupted cross-process trace digests at runtime).
* **P — protocol safety** (cross-file): every ``Message`` subclass defined in
  a ``messages.py`` is constructed somewhere and dispatched by some handler;
  handlers that read fields of signed payloads call a verifier first; no
  direct ``Network.send`` bypasses the reliable transport layer.
* **S — simulation purity**: no filesystem, subprocess, threading or
  blocking-I/O access inside ``simnet``/``bft``/``core`` event handlers —
  real I/O belongs in the bench/CLI layers.
* **A — accounting**: every counter field is actually incremented somewhere,
  and every ``ReplicaCounters`` field is folded into the ``SystemCounters``
  aggregate (a forgotten field silently vanishes from chaos fingerprints
  and benchmark notes).

Vetted exceptions live in ``lint-baseline.toml``; every entry must carry a
written justification.  ``--self-test`` runs each rule against its violation
corpus under ``tests/lint/corpus/`` — the static-analysis analog of the
chaos engine's ``--inject-bug`` self-tests.
"""

from repro.lint.findings import Finding
from repro.lint.engine import FileRule, ProjectRule, Rule, SourceFile, collect_files, run_rules

__all__ = [
    "Finding",
    "FileRule",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "collect_files",
    "run_rules",
]
