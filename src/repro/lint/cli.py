"""Command-line interface of the static analyzer.

::

    python -m repro.lint                      # lint src/repro with the baseline
    python -m repro.lint --rule D103 src/     # one rule over another tree
    python -m repro.lint --json               # machine-readable findings
    python -m repro.lint --self-test          # rules vs the violation corpus
    python -m repro.lint --list-rules         # rule catalog

Exit codes: 0 — clean (or everything suppressed by a justified baseline);
1 — unbaselined findings or a failed self-test; 2 — usage, parse or
baseline errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lint.baseline import BaselineError, apply_baseline, parse_baseline
from repro.lint.engine import LintError, collect_files, run_rules
from repro.lint.rules import all_rules, select_rules
from repro.lint.selftest import run_selftest

#: Bumped when a field is added/renamed in the --json document.
JSON_SCHEMA_VERSION = 1

DEFAULT_TARGET = os.path.join("src", "repro")
DEFAULT_BASELINE = "lint-baseline.toml"
DEFAULT_CORPUS = os.path.join("tests", "lint", "corpus")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based determinism & protocol-safety analyzer",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule id (repeatable)",
    )
    parser.add_argument("--json", action="store_true", help="emit findings as JSON")
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run every rule against the violation corpus and exit",
    )
    parser.add_argument(
        "--corpus",
        default=DEFAULT_CORPUS,
        metavar="DIR",
        help=f"corpus directory for --self-test (default: {DEFAULT_CORPUS})",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        kind = "project" if hasattr(rule, "check_project") else "file"
        print(f"{rule.id}  {rule.name:<20} [{kind:>7}]  {rule.rationale}")
    return 0


def _run_selftest(corpus: str) -> int:
    results = run_selftest(corpus)
    failed = [result for result in results if not result.ok]
    for result in results:
        status = "ok  " if result.ok else "FAIL"
        print(f"{status} {result.rule_id:<8} {result.detail}")
    total = len(results)
    print(
        f"self-test: {total - len(failed)}/{total} checks passed"
        + ("" if not failed else f", {len(failed)} FAILED")
    )
    return 0 if not failed else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()
    if args.self_test:
        return _run_selftest(args.corpus)

    try:
        rules = select_rules(args.rules)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    paths = args.paths or [DEFAULT_TARGET]
    try:
        files = collect_files(paths)
        findings = run_rules(files, rules)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    entries = []
    if baseline_path and not args.no_baseline:
        try:
            entries = parse_baseline(baseline_path)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    unsuppressed, suppressed, stale = apply_baseline(findings, entries)

    if args.json:
        document = {
            "version": JSON_SCHEMA_VERSION,
            "rules": [
                {"id": rule.id, "name": rule.name, "severity": rule.severity}
                for rule in rules
            ],
            "findings": [
                dict(finding.to_dict(), suppressed=False) for finding in unsuppressed
            ]
            + [dict(finding.to_dict(), suppressed=True) for finding in suppressed],
            "stale_baseline": [
                {"rule": entry.rule, "path": entry.path, "line": entry.line}
                for entry in stale
            ],
            "counts": {
                "files": len(files),
                "findings": len(unsuppressed),
                "suppressed": len(suppressed),
                "stale_baseline": len(stale),
            },
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for finding in unsuppressed:
            print(finding.render())
        for entry in stale:
            print(
                f"{baseline_path}:{entry.line}: stale baseline entry "
                f"({entry.rule} in {entry.path}) matches nothing — remove it"
            )
        summary = (
            f"{len(files)} files, {len(unsuppressed)} finding(s), "
            f"{len(suppressed)} suppressed by baseline, {len(stale)} stale entr"
            + ("y" if len(stale) == 1 else "ies")
        )
        print(("clean: " if not unsuppressed else "") + summary)
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
