"""Structured lint findings.

A finding is one violation at one source location: rule id, severity,
``path:line``, a human message and the offending source line.  Findings are
value objects — the engine sorts and deduplicates them, the baseline matches
them by ``(rule, path)``, and the CLI renders them as text or JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str  # "error" or "warning"
    path: str  # repo-relative posix path
    line: int
    message: str
    snippet: str = ""

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON shape (covered by the --json schema test)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text
