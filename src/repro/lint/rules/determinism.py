"""D-rules: determinism hazards.

The simulation's verification story rests on "same seed, same bytes": chaos
fingerprints, trace digests and shrunk repro artifacts are all compared
across runs and across processes.  Anything that draws from the process
RNG, the host clock or hash-randomised iteration order breaks that silently
— these rules prove those hazards absent from the AST.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.engine import FileRule, SourceFile, call_name, dotted_name, functions_in
from repro.lint.findings import Finding


def _in_repro_lint(path: str) -> bool:
    return "repro/lint" in path


class UnseededRandomRule(FileRule):
    """D101: module-level ``random.*`` calls draw from the process RNG."""

    id = "D101"
    name = "unseeded-random"
    rationale = (
        "module-level random.* calls (and argless random.Random()) draw from "
        "the process-global RNG, so two runs of the same seed diverge; all "
        "randomness must flow through seeded random.Random streams"
    )

    _MODULE_FUNCS = {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
    }

    def applies_to(self, path: str) -> bool:
        return not _in_repro_lint(path)

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in {f"random.{func}" for func in self._MODULE_FUNCS}:
                yield self.finding(
                    file,
                    node.lineno,
                    f"call to {name}() uses the process-global RNG; "
                    f"draw from a seeded random.Random stream instead",
                )
            elif name == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    file,
                    node.lineno,
                    "random.Random() without a seed argument is seeded from "
                    "OS entropy; pass an explicit seed",
                )


class WallClockRule(FileRule):
    """D102: wall-clock and entropy reads inside the simulated system."""

    id = "D102"
    name = "wall-clock"
    rationale = (
        "time.time/datetime.now/os.urandom/uuid.uuid4 read host state that "
        "differs between runs; simulated components must use env.now and "
        "seeded streams (bench/CLI timing layers are out of scope)"
    )

    _FORBIDDEN_SUFFIXES = {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }

    def applies_to(self, path: str) -> bool:
        return not _in_repro_lint(path) and "repro/bench" not in path

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if not name:
                continue
            if name.startswith("secrets."):
                yield self.finding(
                    file,
                    node.lineno,
                    f"call to {name}() reads OS entropy; use a seeded stream",
                )
                continue
            for suffix in self._FORBIDDEN_SUFFIXES:
                if name == suffix or name.endswith("." + suffix):
                    yield self.finding(
                        file,
                        node.lineno,
                        f"call to {name}() reads the host clock/entropy; "
                        f"simulated time is env.now, randomness is seeded",
                    )
                    break


class BareSetIterationRule(FileRule):
    """D103: iterating a bare set leaks PYTHONHASHSEED into the schedule."""

    id = "D103"
    name = "set-iteration"
    rationale = (
        "iteration order of str-keyed sets is randomised per process "
        "(PYTHONHASHSEED); anything ordered by it — send order, returned "
        "lists, dict builds — diverges across processes under the same seed. "
        "Wrap in sorted(...) or keep draw order (the PR 6 key-chooser bug)"
    )

    _SET_BUILTINS = {"set", "frozenset"}
    _SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
    _ITERATING_CALLS = {"list", "tuple", "iter", "enumerate"}

    def applies_to(self, path: str) -> bool:
        return not _in_repro_lint(path) and "repro/bench" not in path

    # -- set-expression detection -------------------------------------------

    def _is_set_expr(self, node: ast.AST, set_vars: Set[str]) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_vars
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in self._SET_BUILTINS:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in self._SET_METHODS:
                # x.union(y) etc. return sets whatever x is; accept the rare
                # false positive (str.union does not exist) for the coverage.
                return self._is_set_expr(node.func.value, set_vars) or True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_vars) or self._is_set_expr(
                node.right, set_vars
            )
        return False

    def _set_typed_locals(self, function: ast.AST) -> Set[str]:
        """Names assigned a set expression anywhere in ``function`` (flow-free)."""
        names: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                annotation = dotted_name(node.annotation) if node.annotation else ""
                if (
                    self._is_set_expr(node.value, names)
                    or annotation.split("[")[0] in ("Set", "FrozenSet", "set", "frozenset")
                ):
                    if isinstance(node.target, ast.Name):
                        names.add(node.target.id)
        return names

    # -- iteration contexts --------------------------------------------------

    def _iteration_sites(self, scope: ast.AST):
        for node in ast.walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter, node.lineno, "for loop"
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield generator.iter, node.lineno, "comprehension"
            elif isinstance(node, ast.Call) and call_name(node) in self._ITERATING_CALLS:
                if node.args:
                    yield node.args[0], node.lineno, f"{call_name(node)}()"
            elif isinstance(node, ast.Starred):
                yield node.value, getattr(node, "lineno", 0), "unpacking"

    def check(self, file: SourceFile) -> Iterator[Finding]:
        scopes: List[ast.AST] = list(functions_in(file.tree))
        # Module level too (rare, but set literals at import time happen).
        seen = set()
        for scope in scopes + [file.tree]:
            set_vars = self._set_typed_locals(scope) if scope is not file.tree else set()
            for iterable, line, context in self._iteration_sites(scope):
                if scope is file.tree and any(
                    # Module pass: skip sites inside functions (already done).
                    line >= fn.lineno and line <= (fn.end_lineno or fn.lineno)
                    for fn in scopes
                ):
                    continue
                if not self._is_set_expr(iterable, set_vars):
                    continue
                key = (line, context)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    file,
                    line,
                    f"{context} iterates a bare set/frozenset value; iteration "
                    f"order leaks PYTHONHASHSEED — wrap in sorted(...) or keep "
                    f"an explicit order",
                )


class HashOrderingRule(FileRule):
    """D104: builtin ``hash()`` feeding comparisons or ordering."""

    id = "D104"
    name = "hash-ordering"
    rationale = (
        "builtin hash() of strings/bytes is salted per process; using it for "
        "ordering, bucketing or identity diverges across processes — use "
        "hashlib digests (as repro.storage.partitioner does)"
    )

    def applies_to(self, path: str) -> bool:
        return not _in_repro_lint(path)

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call) and call_name(node) == "hash":
                yield self.finding(
                    file,
                    node.lineno,
                    "builtin hash() is salted per process (PYTHONHASHSEED); "
                    "use a hashlib digest for stable hashing",
                )
            elif isinstance(node, ast.keyword) and node.arg == "key":
                if isinstance(node.value, ast.Name) and node.value.id == "hash":
                    yield self.finding(
                        file,
                        node.value.lineno,
                        "key=hash sorts by the process-salted builtin hash",
                    )


class MutableDefaultRule(FileRule):
    """D105: mutable default arguments are shared across calls."""

    id = "D105"
    name = "mutable-default"
    rationale = (
        "a list/dict/set default is created once and shared by every call; "
        "mutation bleeds state across transactions and replicas — default to "
        "None or use dataclasses.field(default_factory=...)"
    )

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for function in functions_in(file.tree):
            defaults = list(function.args.defaults) + [
                default for default in function.args.kw_defaults if default is not None
            ]
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and call_name(default) in ("list", "dict", "set", "bytearray")
                )
                if mutable:
                    yield self.finding(
                        file,
                        default.lineno,
                        f"function {function.name}() has a mutable default "
                        f"argument; it is shared across calls",
                    )
