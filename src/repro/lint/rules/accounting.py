"""A-rules: accounting completeness (cross-file).

The chaos fingerprint and every benchmark note are built from counters; a
counter that is declared but never incremented reads as a permanently-zero
signal, and a per-replica counter that is never folded into the system-wide
aggregate silently vanishes from fingerprints, oracle evidence and CI
gates.  Both defects are invisible at runtime — zero looks like "nothing
happened" — which is exactly what a static pass can prove absent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from repro.lint.engine import ProjectRule, SourceFile
from repro.lint.findings import Finding

_COUNTER_CLASSES = ("SystemCounters", "ReplicaCounters")


def _counter_fields(
    files: Sequence[SourceFile], class_name: str
) -> List[Tuple[SourceFile, str, int]]:
    """(file, field, line) for every annotated field of ``class_name``."""
    fields: List[Tuple[SourceFile, str, int]] = []
    for file in files:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for statement in node.body:
                    if isinstance(statement, ast.AnnAssign) and isinstance(
                        statement.target, ast.Name
                    ):
                        fields.append((file, statement.target.id, statement.lineno))
    return fields


class CounterIncrementRule(ProjectRule):
    """A401: every counter field is incremented or assigned somewhere."""

    id = "A401"
    name = "counter-incremented"
    rationale = (
        "a SystemCounters/ReplicaCounters field nobody increments is a "
        "permanently-zero metric: dashboards, oracles and fingerprints read "
        "it as 'nothing happened' forever"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        # Attribute names that appear as assignment/aug-assignment targets
        # anywhere (x.field += 1, total.field = ...), outside class bodies.
        stored: Set[str] = set()
        for file in files:
            for node in ast.walk(file.tree):
                targets: List[ast.AST] = []
                if isinstance(node, ast.AugAssign):
                    targets = [node.target]
                elif isinstance(node, ast.Assign):
                    targets = list(node.targets)
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        stored.add(target.attr)
        for class_name in _COUNTER_CLASSES:
            for file, field, line in _counter_fields(files, class_name):
                if field not in stored:
                    yield self.finding(
                        file,
                        line,
                        f"counter field {class_name}.{field} is never "
                        f"incremented or assigned anywhere in the scanned tree",
                    )


class CounterAggregationRule(ProjectRule):
    """A402: every ReplicaCounters field is folded into SystemCounters."""

    id = "A402"
    name = "counter-aggregated"
    rationale = (
        "TransEdgeSystem.counters() folds per-replica counters into the "
        "system aggregate field by field; a field missing from that rollup "
        "is collected but never surfaced in fingerprints or bench notes"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        replica_fields = _counter_fields(files, "ReplicaCounters")
        if not replica_fields:
            return
        # Aggregation functions: any function that constructs SystemCounters.
        aggregated: Set[str] = set()
        found_aggregator = False
        aggregator_sites: List[Tuple[SourceFile, int]] = []
        for file in files:
            for node in ast.walk(file.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                constructs = any(
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "SystemCounters"
                    for call in ast.walk(node)
                )
                if not constructs:
                    continue
                found_aggregator = True
                aggregator_sites.append((file, node.lineno))
                for attr in ast.walk(node):
                    if isinstance(attr, ast.Attribute):
                        aggregated.add(attr.attr)
        if not found_aggregator:
            file, _field, line = replica_fields[0]
            yield self.finding(
                file,
                line,
                "ReplicaCounters is defined but no function constructs a "
                "SystemCounters aggregate from it",
            )
            return
        for file, field, line in replica_fields:
            if field not in aggregated:
                yield self.finding(
                    file,
                    line,
                    f"ReplicaCounters.{field} is never read by the "
                    f"SystemCounters aggregation (it will be missing from "
                    f"chaos fingerprints and bench notes)",
                )
