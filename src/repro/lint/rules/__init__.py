"""Rule registry: every shipped rule, in catalog order."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.lint.engine import Rule
from repro.lint.rules.determinism import (
    BareSetIterationRule,
    HashOrderingRule,
    MutableDefaultRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.lint.rules.protocol import (
    HandlerTargetRule,
    MessageLifecycleRule,
    TransportBypassRule,
    VerifyBeforeReadRule,
)
from repro.lint.rules.purity import SimBlockingRule, SimFilesystemRule
from repro.lint.rules.accounting import CounterAggregationRule, CounterIncrementRule
from repro.lint.rules.coverage import BugSelfTestCoverageRule


def all_rules() -> List[Rule]:
    """Fresh instances of every rule (rules keep no cross-run state)."""
    return [
        UnseededRandomRule(),
        WallClockRule(),
        BareSetIterationRule(),
        HashOrderingRule(),
        MutableDefaultRule(),
        SimFilesystemRule(),
        SimBlockingRule(),
        MessageLifecycleRule(),
        VerifyBeforeReadRule(),
        TransportBypassRule(),
        HandlerTargetRule(),
        CounterIncrementRule(),
        CounterAggregationRule(),
        BugSelfTestCoverageRule(),
    ]


def rules_by_id() -> Dict[str, Rule]:
    return {rule.id: rule for rule in all_rules()}


def select_rules(ids: Optional[Sequence[str]]) -> List[Rule]:
    """The full registry, or the subset named by ``ids`` (order preserved)."""
    rules = all_rules()
    if not ids:
        return rules
    known = {rule.id for rule in rules}
    unknown = [rule_id for rule_id in ids if rule_id not in known]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {', '.join(unknown)}; known: {', '.join(sorted(known))}"
        )
    wanted = set(ids)
    return [rule for rule in rules if rule.id in wanted]
