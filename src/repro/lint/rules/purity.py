"""S-rules: simulation purity.

Every node in ``simnet``/``bft``/``core`` lives inside the single-threaded
discrete-event loop: its only legitimate effects are messages, timers and
in-memory state.  Filesystem, subprocess, threading or blocking-I/O access
from event handlers would couple simulated time to host behaviour (and break
the determinism the chaos engine depends on).  Real I/O belongs in the
bench/CLI/obs-export layers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileRule, SourceFile, call_name
from repro.lint.findings import Finding

_SIM_PACKAGES = ("repro/simnet/", "repro/bft/", "repro/core/")


def _in_sim_layer(path: str) -> bool:
    return any(package in path for package in _SIM_PACKAGES)


class SimFilesystemRule(FileRule):
    """S201: filesystem/subprocess/threading access in the simulation layer."""

    id = "S201"
    name = "sim-filesystem"
    rationale = (
        "simnet/bft/core handlers run inside the deterministic event loop; "
        "file, process or thread effects belong in bench/CLI layers, never "
        "in protocol code"
    )

    _FORBIDDEN_IMPORTS = {
        "subprocess",
        "threading",
        "multiprocessing",
        "socket",
        "shutil",
        "tempfile",
        "asyncio",
    }
    _FORBIDDEN_CALLS = {
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.mkdir",
        "os.rename",
        "os.replace",
        "os.open",
        "os.fdopen",
        "os.system",
        "os.popen",
    }
    _FORBIDDEN_METHODS = {"write_text", "write_bytes", "read_text", "read_bytes"}

    def applies_to(self, path: str) -> bool:
        return _in_sim_layer(path)

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._FORBIDDEN_IMPORTS:
                        yield self.finding(
                            file,
                            node.lineno,
                            f"import of {alias.name} in the simulation layer; "
                            f"process/thread/socket effects are not simulatable",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self._FORBIDDEN_IMPORTS:
                    yield self.finding(
                        file,
                        node.lineno,
                        f"import from {node.module} in the simulation layer",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if name == "open":
                    yield self.finding(
                        file,
                        node.lineno,
                        "open() in the simulation layer; files belong to the "
                        "bench/CLI/export layers",
                    )
                elif name in self._FORBIDDEN_CALLS:
                    yield self.finding(
                        file,
                        node.lineno,
                        f"{name}() touches the filesystem from simulation code",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._FORBIDDEN_METHODS
                ):
                    yield self.finding(
                        file,
                        node.lineno,
                        f".{node.func.attr}() file access from simulation code",
                    )


class SimBlockingRule(FileRule):
    """S202: blocking waits in simulation code."""

    id = "S202"
    name = "sim-blocking"
    rationale = (
        "time.sleep/select/input block the host thread instead of advancing "
        "simulated time; use Sleep()/schedule() so waits are events"
    )

    def applies_to(self, path: str) -> bool:
        return _in_sim_layer(path) or "repro/workload" in path or "repro/edge" in path

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "time.sleep" or name.endswith(".time.sleep"):
                yield self.finding(
                    file,
                    node.lineno,
                    "time.sleep() blocks the host thread; yield Sleep(delay_ms) "
                    "or use schedule() to advance simulated time",
                )
            elif name in ("input",) or name.startswith("select."):
                yield self.finding(
                    file,
                    node.lineno,
                    f"{name}() blocks the event loop from simulation code",
                )
