"""P-rules: protocol safety (cross-file).

These rules know the repo's protocol architecture: message dataclasses live
in ``messages.py`` modules and derive from :class:`repro.simnet.messages.
Message`; nodes dispatch by registering handlers (``register_handler``)
with method-resolution-order fallback; certified payloads (headers, vote
certificates) must be verified before their fields are believed; and every
node-to-node send goes through ``SimNode.send``/``broadcast`` so the
reliable-transport layer covers it.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.lint.engine import ProjectRule, FileRule, SourceFile, call_name, dotted_name
from repro.lint.findings import Finding


class MessageLifecycleRule(ProjectRule):
    """P301: every Message subclass is constructed and dispatched somewhere."""

    id = "P301"
    name = "message-lifecycle"
    rationale = (
        "a message class that is never constructed is dead protocol surface; "
        "one that is never dispatched (no register_handler / isinstance for "
        "it or a base class) is silently dropped by on_unhandled at runtime"
    )

    _ROOTS = {"Message"}

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        # Class hierarchy over the whole file set, by simple name.
        bases_by_class: Dict[str, List[str]] = {}
        message_defs: List[Tuple[SourceFile, ast.ClassDef]] = []
        for file in files:
            in_messages_module = file.path.endswith("/messages.py") or file.path.endswith(
                "messages.py"
            )
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                base_names = [dotted_name(base).split(".")[-1] for base in node.bases]
                bases_by_class.setdefault(node.name, base_names)
                if in_messages_module:
                    message_defs.append((file, node))

        def derives_from_message(name: str, seen: Set[str]) -> bool:
            if name in self._ROOTS:
                return True
            if name in seen:
                return False
            seen.add(name)
            return any(
                derives_from_message(base, seen)
                for base in bases_by_class.get(name, [])
            )

        # Classes that other scanned classes derive from are abstract bases:
        # they are constructed and dispatched through their subclasses.
        has_subclass: Set[str] = {
            base for bases in bases_by_class.values() for base in bases
        }

        constructed: Set[str] = set()
        dispatched: Set[str] = set()
        for file in files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node).split(".")[-1]
                if name == "register_handler" and node.args:
                    target = node.args[0]
                    for element in (
                        target.elts if isinstance(target, ast.Tuple) else [target]
                    ):
                        dispatched.add(dotted_name(element).split(".")[-1])
                elif name == "isinstance" and len(node.args) == 2:
                    target = node.args[1]
                    for element in (
                        target.elts if isinstance(target, ast.Tuple) else [target]
                    ):
                        dispatched.add(dotted_name(element).split(".")[-1])
                elif name:
                    constructed.add(name)

        def ancestry(name: str) -> Iterator[str]:
            stack, seen = [name], set()
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                yield current
                stack.extend(bases_by_class.get(current, []))

        for file, node in message_defs:
            if node.name in self._ROOTS or node.name in has_subclass:
                continue
            if not derives_from_message(node.name, set()):
                continue
            if node.name not in constructed:
                yield self.finding(
                    file,
                    node.lineno,
                    f"message class {node.name} is never constructed anywhere "
                    f"in the scanned tree (dead protocol surface)",
                )
            if not any(base in dispatched for base in ancestry(node.name)):
                yield self.finding(
                    file,
                    node.lineno,
                    f"message class {node.name} is never dispatched: no "
                    f"register_handler or isinstance mentions it or a base "
                    f"class, so receivers raise on_unhandled",
                )


class HandlerTargetRule(ProjectRule):
    """P304: every register_handler target must exist on the class."""

    id = "P304"
    name = "handler-target-defined"
    rationale = (
        "register_handler(Type, self._on_x) captures the bound method at "
        "registration time; if _on_x is not defined on the class (or an "
        "ancestor) the node crashes with AttributeError during __init__ — "
        "or worse, a typo'd name silently registers the wrong handler "
        "after a rename"
    )

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        # Per-class view over the whole file set: methods defined via def,
        # attributes assigned to self.<name> anywhere in the body, and base
        # class simple names for MRO-style lookup across files.
        methods_by_class: Dict[str, Set[str]] = {}
        bases_by_class: Dict[str, List[str]] = {}
        registrations: List[Tuple[SourceFile, str, ast.Call, str]] = []

        for file in files:
            for klass in ast.walk(file.tree):
                if not isinstance(klass, ast.ClassDef):
                    continue
                # Same-named classes across files (common in test corpora)
                # merge: membership and bases are unioned, which errs toward
                # leniency instead of false positives.
                bases_by_class.setdefault(klass.name, []).extend(
                    dotted_name(base).split(".")[-1] for base in klass.bases
                )
                members = methods_by_class.setdefault(klass.name, set())
                for node in ast.walk(klass):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        members.add(node.name)
                    elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                members.add(target.attr)
                            elif isinstance(target, ast.Name):
                                members.add(target.id)  # class attribute
                    elif (
                        isinstance(node, ast.Call)
                        and call_name(node).split(".")[-1] == "register_handler"
                        and len(node.args) >= 2
                    ):
                        handler = node.args[1]
                        if (
                            isinstance(handler, ast.Attribute)
                            and isinstance(handler.value, ast.Name)
                            and handler.value.id == "self"
                        ):
                            registrations.append(
                                (file, klass.name, node, handler.attr)
                            )

        def resolves(klass: str, attr: str) -> bool:
            stack, seen = [klass], set()
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                if attr in methods_by_class.get(current, set()):
                    return True
                if current not in bases_by_class:
                    # Base outside the scanned tree: give it the benefit of
                    # the doubt rather than flag unknowable inheritance.
                    return True
                stack.extend(bases_by_class[current])
            return False

        for file, klass, node, attr in registrations:
            if not resolves(klass, attr):
                yield self.finding(
                    file,
                    node.lineno,
                    f"register_handler target self.{attr} is not defined on "
                    f"{klass} or any scanned ancestor (AttributeError at "
                    f"node construction)",
                )


class VerifyBeforeReadRule(FileRule):
    """P302: handlers reading signed-payload fields must verify first."""

    id = "P302"
    name = "verify-before-read"
    rationale = (
        "a handler that reads fields of a certified payload (header, "
        "certificate, commit record) without calling a verify*/validate* "
        "helper in the same body trusts unauthenticated bytes from the wire"
    )

    #: Attributes that carry signed/certified payloads in this protocol.
    _SIGNED_ATTRS = {"header", "certificate", "view_certificate"}

    def applies_to(self, path: str) -> bool:
        return any(
            package in path
            for package in ("repro/core/", "repro/bft/", "repro/edge/")
        )

    def _is_handler(self, node: ast.AST) -> bool:
        return isinstance(node, ast.FunctionDef) and (
            node.name.startswith("on_") or node.name.startswith("_on_")
        )

    def _verifies(self, function: ast.FunctionDef) -> bool:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node).split(".")[-1]
            if name.startswith(("verify", "validate", "_verify", "_validate")):
                return True
        return False

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for function in [n for n in ast.walk(file.tree) if self._is_handler(n)]:
            if self._verifies(function):
                continue
            for node in ast.walk(function):
                # Reading a *field of* a signed payload: e.g. msg.header.cd_vector
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr in self._SIGNED_ATTRS
                ):
                    yield self.finding(
                        file,
                        node.lineno,
                        f"handler {function.name}() reads "
                        f".{node.value.attr}.{node.attr} without any "
                        f"verify*/validate* call in its body",
                    )
                    break  # one finding per handler is enough


class TransportBypassRule(FileRule):
    """P303: direct Network.send calls bypass the reliable transport."""

    id = "P303"
    name = "transport-bypass"
    rationale = (
        "SimNode.send/broadcast route replica-to-replica traffic through "
        "ReliableTransport (acks, retransmission, dedup); calling "
        "network.send directly silently loses those guarantees"
    )

    _BYPASS_SUFFIXES = ("network.send", "network.broadcast", "network.deliver")

    def applies_to(self, path: str) -> bool:
        # The transport layer itself and the fault injector own the network.
        return "repro/simnet/" not in path

    def check(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if any(
                name == suffix or name.endswith("." + suffix)
                for suffix in self._BYPASS_SUFFIXES
            ):
                yield self.finding(
                    file,
                    node.lineno,
                    f"direct {name}() call bypasses the reliable transport; "
                    f"send through SimNode.send/broadcast",
                )
