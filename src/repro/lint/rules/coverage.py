"""X-rules: cross-artifact coverage (the code vs its CI and test harness).

The chaos engine's ``--inject-bug`` registry is a self-test catalogue: each
entry re-introduces one defect so the oracle suite can prove it still
catches it.  A registered bug that *nothing replays* — no ``--inject-bug``
step in the CI workflow, no pinned test quoting its name — is a self-test
that can rot silently: the patch drifts out of sync with the code it
patches and nobody notices until the day the oracle is actually needed.
That is a cross-artifact fact (python registry vs YAML workflow vs test
tree), which is exactly what a :class:`ProjectRule` with an evidence
sweep can prove.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterator, List, Sequence, Set, Tuple

from repro.lint.engine import ProjectRule, SourceFile, call_name
from repro.lint.findings import Finding

_INJECT_BUG_STEP = re.compile(r"--inject-bug[\s=]+([A-Za-z0-9_-]+)")


def _is_test_path(path: str) -> bool:
    """Is this scanned file itself test evidence (a pinned test)?"""
    parts = path.replace(os.sep, "/").split("/")
    return "tests" in parts or parts[-1].startswith("test_")


def _registrations(
    files: Sequence[SourceFile],
) -> List[Tuple[SourceFile, int, str]]:
    """Every ``InjectedBug(name="...")`` construction in the scanned tree."""
    found: List[Tuple[SourceFile, int, str]] = []
    for file in files:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node).split(".")[-1] != "InjectedBug":
                continue
            name = None
            for keyword in node.keywords:
                if (
                    keyword.arg == "name"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                ):
                    name = keyword.value.value
            if (
                name is None
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
            if name:
                found.append((file, node.lineno, name))
    return found


class BugSelfTestCoverageRule(ProjectRule):
    """X501: every injectable-bug registry entry is replayed somewhere."""

    id = "X501"
    name = "bug-self-test-coverage"
    rationale = (
        "an InjectedBug nobody replays (no --inject-bug CI step, no pinned "
        "test quoting its name) is a self-test that rots silently: the "
        "patch drifts from the code it patches and the oracle it proves is "
        "never proven again"
    )

    #: Evidence swept outside the linted tree, relative to the working
    #: directory: workflow YAML for ``--inject-bug <name>`` steps, and the
    #: test tree for the quoted bug name (a pinned test).
    workflow_dir = os.path.join(".github", "workflows")
    external_test_dir = "tests"

    def _workflow_bugs(self) -> Set[str]:
        names: Set[str] = set()
        if not os.path.isdir(self.workflow_dir):
            return names
        for entry in sorted(os.listdir(self.workflow_dir)):
            if not entry.endswith((".yml", ".yaml")):
                continue
            try:
                with open(
                    os.path.join(self.workflow_dir, entry), "r", encoding="utf-8"
                ) as handle:
                    names.update(_INJECT_BUG_STEP.findall(handle.read()))
            except OSError:
                continue
        return names

    def _external_test_quotes(self, name: str, scanned: Set[str]) -> bool:
        """Does a test file *outside the scanned set* quote ``name``?

        Scanned files are excluded so a fixture that registers a bug cannot
        count its own registration literal as pinned-test evidence.
        """
        if not os.path.isdir(self.external_test_dir):
            return False
        quoted = (f'"{name}"', f"'{name}'")
        for directory, _dirnames, filenames in os.walk(self.external_test_dir):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                if path.replace(os.sep, "/") in scanned:
                    continue
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        text = handle.read()
                except OSError:
                    continue
                if any(literal in text for literal in quoted):
                    return True
        return False

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        registrations = _registrations(files)
        if not registrations:
            return
        # In-scan evidence: a *test* file in the scanned set quoting the
        # name (the self-test corpus ships its pin inside the fixture).
        # Files that register bugs are excluded — a registration literal is
        # not a replay, even when the registry lives under a test tree.
        registry_paths = {file.path for file, _line, _name in registrations}
        in_scan: Set[str] = set()
        for file in files:
            if file.path in registry_paths or not _is_test_path(file.path):
                continue
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    in_scan.add(node.value)
        workflow_bugs = self._workflow_bugs()
        scanned_paths = {file.path for file in files}
        for file, line, name in registrations:
            if name in workflow_bugs:
                continue
            if name in in_scan:
                continue
            if self._external_test_quotes(name, scanned_paths):
                continue
            yield self.finding(
                file,
                line,
                f"injectable bug {name!r} is registered but never replayed: "
                f"no --inject-bug step in {self.workflow_dir}/*.yml and no "
                f"test under {self.external_test_dir}/ quotes it",
            )
