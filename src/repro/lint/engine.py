"""The rule engine: parse once, run per-file visitors plus project passes.

Two rule shapes:

* :class:`FileRule` — examines one parsed module at a time (most determinism
  and purity rules).
* :class:`ProjectRule` — sees every parsed module at once, for cross-file
  facts ("this message class is never dispatched", "this counter field is
  never aggregated").

Each rule owns a path predicate (:meth:`Rule.applies_to`) so e.g. wall-clock
rules skip the bench/CLI layers by construction rather than by baseline.
``run_rules(..., ignore_scopes=True)`` bypasses the predicates — the
self-test corpus exercises every rule regardless of where it is checked out.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.lint.findings import Finding


class LintError(Exception):
    """A problem with the lint run itself (unreadable file, syntax error)."""


@dataclass
class SourceFile:
    """One parsed module: display path, raw source, AST and split lines."""

    path: str  # normalised posix path used in findings and baselines
    source: str
    tree: ast.Module
    lines: List[str]

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def display_path(path: str) -> str:
    """Posix path relative to the current directory when inside it."""
    absolute = os.path.abspath(path)
    cwd = os.getcwd()
    if absolute == cwd or absolute.startswith(cwd + os.sep):
        absolute = os.path.relpath(absolute, cwd)
    return absolute.replace(os.sep, "/")


def parse_file(path: str) -> SourceFile:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        raise LintError(f"cannot parse {path}: {error}")
    return SourceFile(
        path=display_path(path),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def collect_files(paths: Sequence[str]) -> List[SourceFile]:
    """Parse every ``.py`` file under ``paths`` (files or directories)."""
    names: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for directory, _dirnames, filenames in os.walk(path):
                for filename in filenames:
                    if filename.endswith(".py"):
                        names.append(os.path.join(directory, filename))
        elif path.endswith(".py"):
            names.append(path)
        else:
            raise LintError(f"not a python file or directory: {path}")
    return [parse_file(name) for name in sorted(set(names))]


class Rule:
    """Base interface shared by file and project rules."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        return True


class FileRule(Rule):
    """A rule that inspects one module at a time."""

    def check(self, file: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=file.path,
            line=line,
            message=message,
            snippet=file.snippet(line),
        )


class ProjectRule(Rule):
    """A rule that inspects the whole file set at once."""

    def check_project(self, files: Sequence[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=file.path,
            line=line,
            message=message,
            snippet=file.snippet(line),
        )


def run_rules(
    files: Sequence[SourceFile],
    rules: Iterable[Rule],
    ignore_scopes: bool = False,
) -> List[Finding]:
    """Run ``rules`` over ``files`` and return sorted, deduplicated findings."""
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, FileRule):
            for file in files:
                if ignore_scopes or rule.applies_to(file.path):
                    findings.extend(rule.check(file))
        elif isinstance(rule, ProjectRule):
            scoped = [
                file
                for file in files
                if ignore_scopes or rule.applies_to(file.path)
            ]
            if scoped:
                findings.extend(rule.check_project(scoped))
        else:
            raise LintError(f"rule {rule!r} is neither a FileRule nor a ProjectRule")
    return sorted(set(findings), key=Finding.sort_key)


# ---------------------------------------------------------------------------
# Shared AST helpers used by several rule modules
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a Name/Attribute chain (``"a.b.c"``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("")  # chain rooted in a call/subscript: keep the suffix
    return ".".join(reversed(parts))


def call_name(node: ast.Call) -> str:
    """Dotted name of a call's callee (empty for lambdas etc.)."""
    return dotted_name(node.func)


def functions_in(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
