"""Allowlist of vetted findings (``lint-baseline.toml``).

A baseline entry suppresses every finding of one rule in one file and must
carry a written justification — an unexplained suppression is a parse error,
not a warning.  Entries that no longer match anything are reported as *stale*
so the baseline shrinks as the code improves.

The file format is a small TOML subset (``[[suppress]]`` array tables with
string values), parsed by hand because the repo supports Python 3.9 and adds
no dependencies (``tomllib`` is 3.11+)::

    [[suppress]]
    rule = "D102"
    path = "src/repro/chaos/cli.py"
    justification = "operator-facing progress timing; never feeds the simulation"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding


class BaselineError(Exception):
    """The baseline file is malformed or missing a justification."""


@dataclass
class BaselineEntry:
    """One vetted exception: a rule/path pair plus why it is acceptable."""

    rule: str
    path: str
    justification: str
    line: int = 0  # line in the baseline file, for error reporting
    matches: int = field(default=0, compare=False)


_REQUIRED_KEYS = ("rule", "path", "justification")


def _parse_value(raw: str, path: str, line_number: int) -> str:
    raw = raw.strip()
    if len(raw) >= 2 and raw[0] == '"' and raw[-1] == '"':
        body = raw[1:-1]
        out = []
        index = 0
        while index < len(body):
            char = body[index]
            if char == "\\" and index + 1 < len(body):
                out.append(body[index + 1])
                index += 2
                continue
            if char == '"':
                raise BaselineError(
                    f"{path}:{line_number}: unescaped quote inside string value"
                )
            out.append(char)
            index += 1
        return "".join(out)
    raise BaselineError(
        f"{path}:{line_number}: expected a double-quoted string value, got {raw!r}"
    )


def parse_baseline(path: str) -> List[BaselineEntry]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}")

    entries: List[BaselineEntry] = []
    current: Dict[str, str] = {}
    current_line = 0
    in_table = False

    def flush() -> None:
        if not in_table:
            return
        for key in _REQUIRED_KEYS:
            if key not in current:
                raise BaselineError(
                    f"{path}:{current_line}: suppress entry is missing {key!r}"
                )
        if not current["justification"].strip():
            raise BaselineError(
                f"{path}:{current_line}: suppress entry for {current['rule']} "
                f"({current['path']}) has an empty justification — every vetted "
                f"exception must say why it is acceptable"
            )
        entries.append(
            BaselineEntry(
                rule=current["rule"],
                path=current["path"],
                justification=current["justification"],
                line=current_line,
            )
        )

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[suppress]]":
            flush()
            current = {}
            current_line = line_number
            in_table = True
            continue
        if line.startswith("["):
            raise BaselineError(
                f"{path}:{line_number}: unknown table {line!r} "
                f"(only [[suppress]] is supported)"
            )
        key, separator, value = line.partition("=")
        if not separator:
            raise BaselineError(f"{path}:{line_number}: expected key = \"value\"")
        if not in_table:
            raise BaselineError(
                f"{path}:{line_number}: key outside a [[suppress]] table"
            )
        key = key.strip()
        if key in current:
            raise BaselineError(f"{path}:{line_number}: duplicate key {key!r}")
        current[key] = _parse_value(value, path, line_number)
    flush()
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (unsuppressed, suppressed) and list stale entries."""
    unsuppressed: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        entry = next(
            (
                candidate
                for candidate in entries
                if candidate.rule == finding.rule and candidate.path == finding.path
            ),
            None,
        )
        if entry is None:
            unsuppressed.append(finding)
        else:
            entry.matches += 1
            suppressed.append(finding)
    stale = [entry for entry in entries if entry.matches == 0]
    return unsuppressed, suppressed, stale
