"""Deterministic chaos engine: seeded scenario fuzzing with invariant oracles.

One seed expands — through a single ``random.Random(seed)`` — into a whole
scenario: a configuration point (partitions, checkpointing, archive, edge
tier, failover knobs), a workload plan (mixed streams, hot-key skew,
co-written group traffic) and a fault plan (crashes and restarts, leader
kills mid-batch, client-link drop windows, delay windows, byzantine edge
proxies).  The run is executed on the discrete-event simulation, quiesced,
probed, and judged by the invariant oracle suite of
:mod:`repro.verification.oracles`.  On failure the schedule *shrinks* to a
minimal reproduction and is written as a replayable JSON artifact::

    python -m repro.chaos --seeds 25            # fuzz seeds 0..24
    python -m repro.chaos --seed 7              # one seed, verbose
    python -m repro.chaos --replay chaos-repro-7.json

Everything is derived from the seed and the plan alone — no wall clock, no
unseeded randomness — so two runs of the same seed are bit-identical, and a
``chaos-repro-<seed>.json`` artifact reproduces on any machine.
"""

from repro.chaos.bugs import BUGS, InjectedBug
from repro.chaos.plan import (
    ChaosPlan,
    ConfigPoint,
    FaultEvent,
    WorkloadSegment,
    plan_from_seed,
)
from repro.chaos.runner import ChaosReport, run_plan, run_seed
from repro.chaos.shrink import shrink_plan

__all__ = [
    "BUGS",
    "ChaosPlan",
    "ChaosReport",
    "ConfigPoint",
    "FaultEvent",
    "InjectedBug",
    "WorkloadSegment",
    "plan_from_seed",
    "run_plan",
    "run_seed",
    "shrink_plan",
]
