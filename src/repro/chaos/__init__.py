"""Deterministic chaos engine: seeded scenario fuzzing with invariant oracles.

One seed expands — through a single ``random.Random(seed)`` — into a whole
scenario: a configuration point (partitions, checkpointing, archive, edge
tier, failover knobs), a workload plan (mixed streams, hot-key skew,
co-written group traffic) and a fault plan (crashes and restarts, leader
kills mid-batch, client-link drop windows, delay windows, byzantine edge
proxies).  The run is executed on the discrete-event simulation, quiesced,
probed, and judged by the invariant oracle suite of
:mod:`repro.verification.oracles`.  On failure the schedule *shrinks* to a
minimal reproduction and is written as a replayable JSON artifact::

    python -m repro.chaos --seeds 25            # fuzz seeds 0..24
    python -m repro.chaos --seed 7              # one seed, verbose
    python -m repro.chaos --replay chaos-repro-7.json

Everything is derived from the seed and the plan alone — no wall clock, no
unseeded randomness — so two runs of the same seed are bit-identical, and a
``chaos-repro-<seed>.json`` artifact reproduces on any machine.

On top of the serial runner sits the *fleet* (:mod:`repro.chaos.fleet`):
worker-pool parallel sweeps whose merged results are byte-identical to the
serial ones, and coverage-guided mutation sessions that grow a persisted
corpus (:mod:`repro.chaos.corpus`) of rare-path plans, each entry doubling
as a standing determinism oracle.
"""

from repro.chaos.bugs import BUGS, InjectedBug
from repro.chaos.corpus import Corpus, CorpusEntry, plan_id
from repro.chaos.coverage import (
    CoverageMap,
    coverage_signature,
    mutate_plan,
    signature_weight,
)
from repro.chaos.fleet import (
    FleetResult,
    FleetSettings,
    SessionOutcome,
    coverage_session,
    replay_corpus,
    run_fleet,
    run_seed_fleet,
    seed_corpus,
)
from repro.chaos.plan import (
    ChaosPlan,
    ConfigPoint,
    FaultEvent,
    WorkloadSegment,
    plan_from_seed,
)
from repro.chaos.runner import ChaosReport, run_plan, run_seed
from repro.chaos.shrink import shrink_plan

__all__ = [
    "BUGS",
    "ChaosPlan",
    "ChaosReport",
    "ConfigPoint",
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "FaultEvent",
    "FleetResult",
    "FleetSettings",
    "InjectedBug",
    "SessionOutcome",
    "WorkloadSegment",
    "coverage_session",
    "coverage_signature",
    "mutate_plan",
    "plan_from_seed",
    "plan_id",
    "replay_corpus",
    "run_fleet",
    "run_plan",
    "run_seed",
    "run_seed_fleet",
    "seed_corpus",
    "shrink_plan",
    "signature_weight",
]
