"""Schedule shrinking: reduce a failing plan to a minimal reproduction.

Greedy delta-debugging over the plan's structure: repeatedly try removing
one fault event or one workload segment (and then halving segment lengths),
keeping every edit after which the failure still reproduces.  "Reproduces"
means the re-run fails at least one oracle that the original run failed —
matching by oracle name keeps the shrinker from walking to a *different*
bug than the one being minimised.

Every candidate edit costs a full (deterministic) re-run, so the total
number of runs is bounded by ``max_runs``; the loop converges because each
accepted edit strictly shrinks the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set

from repro.chaos.plan import ChaosPlan
from repro.chaos.runner import ChaosReport, run_plan


@dataclass
class ShrinkResult:
    """The minimised plan plus the bookkeeping of how it was found."""

    plan: ChaosPlan
    report: ChaosReport
    runs: int = 0
    removed_faults: int = 0
    removed_segments: int = 0
    trimmed_transactions: int = 0


def shrink_plan(
    plan: ChaosPlan,
    failing_report: ChaosReport,
    bug=None,
    max_runs: int = 80,
    max_events: int = 4_000_000,
    monitor: bool = True,
    perf_oracle: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> ShrinkResult:
    """Minimise ``plan`` while ``failing_report``'s failure keeps reproducing.

    ``monitor``/``perf_oracle`` mirror :func:`run_plan`'s flags and must be
    the settings the failing run used: re-running candidates with monitoring
    re-enabled would judge them under a different oracle set than the one
    being minimised.  The fault-free twin is only replayed when the
    phase-latency oracle is actually among the target oracles — every other
    failure shrinks on single runs.
    """
    target_oracles: Set[str] = {failure.oracle for failure in failing_report.failures}
    perf = perf_oracle and "phase-latency-anomaly" in target_oracles
    state = ShrinkResult(plan=plan, report=failing_report)

    def say(message: str) -> None:
        if log is not None:
            log(message)

    def reproduces(candidate: ChaosPlan) -> Optional[ChaosReport]:
        state.runs += 1
        report = run_plan(
            candidate,
            bug=bug,
            max_events=max_events,
            monitor=monitor,
            perf_oracle=perf,
        )
        failed = {failure.oracle for failure in report.failures}
        return report if failed & target_oracles else None

    # Pass 1+: drop whole fault events, then whole segments, until no single
    # removal reproduces any more.
    changed = True
    while changed and state.runs < max_runs:
        changed = False
        for index in reversed(range(len(state.plan.faults))):
            if state.runs >= max_runs:
                break
            candidate = state.plan.without_fault(index)
            report = reproduces(candidate)
            if report is not None:
                say(f"shrink: dropped fault #{index} ({state.plan.faults[index].kind})")
                state.plan, state.report = candidate, report
                state.removed_faults += 1
                changed = True
        for index in reversed(range(len(state.plan.segments))):
            if state.runs >= max_runs or len(state.plan.segments) <= 1:
                break
            candidate = state.plan.without_segment(index)
            report = reproduces(candidate)
            if report is not None:
                say(
                    f"shrink: dropped segment #{index} "
                    f"({state.plan.segments[index].kind})"
                )
                state.plan, state.report = candidate, report
                state.removed_segments += 1
                changed = True

    # Final pass: halve surviving segments' transaction counts while the
    # failure persists.
    for index in range(len(state.plan.segments)):
        while state.runs < max_runs:
            count = state.plan.segments[index].count
            if count <= 2:
                break
            candidate = state.plan.with_segment_count(index, count // 2)
            report = reproduces(candidate)
            if report is None:
                break
            say(f"shrink: segment #{index} count {count} -> {count // 2}")
            state.trimmed_transactions += count - count // 2
            state.plan, state.report = candidate, report

    return state
