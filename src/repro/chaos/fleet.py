"""Parallel chaos fleet: worker-pool execution and coverage-guided search.

Two layers on top of the serial runner:

**Parallel execution.**  :func:`run_fleet` fans a list of plans across a
``multiprocessing`` pool.  Each worker runs one plan end-to-end (including
shrinking and artifact writing on failure, per :class:`FleetSettings`) and
returns a *reduced*, picklable :class:`FleetResult` — the full
:class:`~repro.chaos.runner.ChaosReport` holds live simulator handles and
never crosses the process boundary.  Results are merged by plan index, so
the output is byte-identical for any worker count and any completion
order: parallelism changes wall-clock only, never fingerprints or trace
digests.  (Every run is deterministic in its plan and runs in its own
process with its own RNGs; nothing is shared.)

**Coverage-guided search.**  :func:`coverage_session` grows a persisted
corpus (:mod:`repro.chaos.corpus`) AFL-style: corpus entries are weighted
by the global rarity of their coverage signatures
(:mod:`repro.chaos.coverage`), bases are drawn by weight, and mutants are
derived by legality-preserving ``ConfigPoint``/fault-plan mutations.  All
draws come from one session RNG and every batch of mutants is generated
*single-threaded before the batch runs*, so a session is a deterministic
function of ``(corpus state, session seed)`` — worker count cannot change
which mutants are tried.  Mutants whose runs exhibit never-seen features
are admitted; a mutant that fails an oracle is a *finding* (shrunk and
written as an artifact like any failing seed) and is never admitted.

**Corpus replay.**  :func:`replay_corpus` re-runs every entry and diffs
its fingerprint and trace digest against the recorded ones — each entry is
a standing determinism oracle, which is what the per-PR smoke job checks
before the uniform sweep.
"""

from __future__ import annotations

import multiprocessing
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.corpus import Corpus, CorpusEntry, plan_id
from repro.chaos.coverage import (
    CoverageMap,
    coverage_signature,
    mutate_plan,
    signature_weight,
)
from repro.chaos.plan import ChaosPlan, plan_from_seed
from repro.chaos.runner import run_plan

#: Mutant seed namespace: far above any uniform sweep seed, so artifact
#: names (``chaos-repro-<seed>.json``) never collide with seed runs.
MUTANT_SEED_BASE = 1_000_000

#: Coverage-session batch width: how many mutants are drawn (and their base
#: entries weighted) before any of them runs.  Fixed — NOT the worker count —
#: because admissions update the weights between batches: tying the batch
#: width to the pool size would make the mutant sequence depend on how many
#: workers happened to be available.
SESSION_BATCH = 8


@dataclass(frozen=True)
class FleetSettings:
    """Per-run knobs, identical for every worker (picklable)."""

    bug_name: Optional[str] = None
    max_events: int = 4_000_000
    monitor: bool = True
    perf_oracle: bool = True
    shrink: bool = True
    max_shrink_runs: int = 80
    #: ``None`` disables artifact writing (corpus replay never writes).
    artifact_dir: Optional[str] = "."


@dataclass
class FleetResult:
    """The reduced, picklable outcome of one fleet run."""

    index: int
    seed: int
    plan: dict
    ok: bool
    fingerprint: str
    trace_digest: str
    failures: List[Tuple[str, str]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    health: Dict[str, object] = field(default_factory=dict)
    perf_ratio: Optional[float] = None
    signature: Tuple[str, ...] = ()
    summary: str = ""
    events_processed: int = 0
    elapsed_sim_ms: float = 0.0
    shrink_runs: int = 0
    artifact: Optional[str] = None
    shrunk_faults: Optional[int] = None
    shrunk_segments: Optional[int] = None


def _execute(task: Tuple[int, dict, FleetSettings]) -> FleetResult:
    """Run one plan in this process and reduce the report (pool target).

    Imports the CLI's artifact writer lazily: the CLI imports this module,
    so a top-level import would be circular.
    """
    index, plan_dict, settings = task
    plan = ChaosPlan.from_dict(plan_dict)
    bug = settings.bug_name
    report = run_plan(
        plan,
        bug=bug,
        max_events=settings.max_events,
        monitor=settings.monitor,
        perf_oracle=settings.perf_oracle,
    )
    result = FleetResult(
        index=index,
        seed=plan.seed,
        plan=plan_dict,
        ok=report.ok,
        fingerprint=report.fingerprint(),
        trace_digest=report.trace_digest,
        failures=[(f.oracle, f.description) for f in report.failures],
        counters=dict(report.counters),
        health=dict(report.health),
        perf_ratio=report.perf_ratio,
        signature=coverage_signature(
            report.counters,
            report.health,
            failure_oracles=[f.oracle for f in report.failures],
            perf_ratio=report.perf_ratio,
        ),
        summary=report.summary_line(),
        events_processed=report.events_processed,
        elapsed_sim_ms=report.elapsed_sim_ms,
    )
    if report.ok:
        return result
    shrunk_plan, shrunk_report = plan, report
    if settings.shrink:
        from repro.chaos.shrink import shrink_plan

        shrunk = shrink_plan(
            plan,
            report,
            bug=bug,
            max_runs=settings.max_shrink_runs,
            max_events=settings.max_events,
            monitor=settings.monitor,
            perf_oracle=settings.perf_oracle,
        )
        shrunk_plan, shrunk_report = shrunk.plan, shrunk.report
        result.shrink_runs = shrunk.runs
        result.shrunk_faults = len(shrunk_plan.faults)
        result.shrunk_segments = len(shrunk_plan.segments)
    if settings.artifact_dir is not None:
        from repro.chaos.cli import write_artifact

        result.artifact = write_artifact(
            settings.artifact_dir,
            shrunk_plan,
            shrunk_report,
            settings.bug_name,
            result.shrink_runs,
        )
    return result


def run_fleet(
    plans: Sequence[ChaosPlan],
    settings: FleetSettings = FleetSettings(),
    workers: int = 1,
) -> List[FleetResult]:
    """Run every plan, across ``workers`` processes, merged by plan index.

    The merge sorts on the submission index, so the returned list — and
    therefore every fingerprint/digest it carries — is identical whether
    the plans ran serially, on 2 workers or on 16.
    """
    tasks = [
        (index, plan.to_dict(), settings) for index, plan in enumerate(plans)
    ]
    if workers <= 1 or len(tasks) <= 1:
        results = [_execute(task) for task in tasks]
    else:
        with multiprocessing.Pool(processes=min(workers, len(tasks))) as pool:
            results = list(pool.imap_unordered(_execute, tasks, chunksize=1))
    return sorted(results, key=lambda result: result.index)


def run_seed_fleet(
    seeds: Sequence[int],
    settings: FleetSettings = FleetSettings(),
    workers: int = 1,
) -> List[FleetResult]:
    """The uniform sweep, fleet-style: ``plan_from_seed`` for every seed."""
    return run_fleet([plan_from_seed(seed) for seed in seeds], settings, workers)


def seed_corpus(corpus: Corpus, results: Sequence[FleetResult]) -> List[str]:
    """Admit every passing sweep result as a mutation base; returns new ids."""
    admitted = []
    for result in results:
        if not result.ok:
            continue
        plan = ChaosPlan.from_dict(result.plan)
        entry = CorpusEntry(
            entry_id=plan_id(plan),
            plan=plan,
            signature=tuple(result.signature),
            fingerprint=result.fingerprint,
            trace_digest=result.trace_digest,
            parent=f"seed:{result.seed}",
        )
        if corpus.add(entry):
            admitted.append(entry.entry_id)
    return admitted


@dataclass
class SessionOutcome:
    """What one coverage session did to the corpus."""

    session_seed: int
    runs: int
    admitted: List[str] = field(default_factory=list)
    novel_features: List[str] = field(default_factory=list)
    failing: List[FleetResult] = field(default_factory=list)
    results: List[FleetResult] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "session_seed": self.session_seed,
            "runs": self.runs,
            "admitted": list(self.admitted),
            "novel_features": sorted(set(self.novel_features)),
            "failing_seeds": [result.seed for result in self.failing],
        }


def coverage_session(
    corpus: Corpus,
    session_seed: int,
    runs: int,
    settings: FleetSettings = FleetSettings(),
    workers: int = 1,
    log: Optional[Callable[[str], None]] = None,
) -> SessionOutcome:
    """Grow ``corpus`` by ``runs`` coverage-guided mutant runs.

    Deterministic in ``(corpus state, session_seed)``: every base draw and
    mutation comes from one ``random.Random(session_seed)``, and each
    fixed-width batch (:data:`SESSION_BATCH`) of mutants is fully generated
    before it runs, so worker count and completion order never reach the
    RNG — ``workers`` changes wall-clock only.
    """
    if not corpus.entries:
        raise ValueError("coverage session needs a non-empty corpus to mutate")
    rng = random.Random(session_seed)
    coverage = CoverageMap.from_signatures(
        entry.signature for entry in corpus.ordered()
    )
    outcome = SessionOutcome(session_seed=session_seed, runs=runs)
    batch_size = SESSION_BATCH
    draw = 0
    while draw < runs:
        entries = corpus.ordered()
        weights = [
            signature_weight(entry.signature, coverage) for entry in entries
        ]
        batch: List[Tuple[ChaosPlan, str]] = []
        for _ in range(min(batch_size, runs - draw)):
            base = rng.choices(entries, weights=weights)[0]
            mutant_seed = MUTANT_SEED_BASE + session_seed * 10_000 + draw
            batch.append((mutate_plan(base.plan, rng, mutant_seed), base.entry_id))
            draw += 1
        results = run_fleet([plan for plan, _ in batch], settings, workers)
        for result, (plan, parent) in zip(results, batch):
            outcome.results.append(result)
            fresh = coverage.observe(result.signature)
            outcome.novel_features.extend(fresh)
            if not result.ok:
                outcome.failing.append(result)
                if log:
                    log(f"  mutant {result.seed}: FAILED ({result.summary})")
                continue
            if fresh:
                entry = CorpusEntry(
                    entry_id=plan_id(plan),
                    plan=plan,
                    signature=tuple(result.signature),
                    fingerprint=result.fingerprint,
                    trace_digest=result.trace_digest,
                    parent=parent,
                )
                if corpus.add(entry):
                    outcome.admitted.append(entry.entry_id)
                    if log:
                        log(
                            f"  mutant {result.seed}: admitted {entry.entry_id} "
                            f"(new: {', '.join(fresh)})"
                        )
    return outcome


@dataclass
class ReplayDrift:
    """A corpus entry whose re-run no longer matches its recorded digests."""

    entry_id: str
    field_name: str
    recorded: str
    observed: str


def replay_corpus(
    corpus: Corpus,
    settings: FleetSettings = FleetSettings(),
    workers: int = 1,
) -> Tuple[List[FleetResult], List[ReplayDrift]]:
    """Re-run every entry; any fingerprint/digest drift is a determinism bug."""
    entries = corpus.ordered()
    replay_settings = replace(settings, shrink=False, artifact_dir=None)
    results = run_fleet(
        [entry.plan for entry in entries], replay_settings, workers
    )
    drift: List[ReplayDrift] = []
    for entry, result in zip(entries, results):
        if result.fingerprint != entry.fingerprint:
            drift.append(
                ReplayDrift(
                    entry.entry_id, "fingerprint", entry.fingerprint, result.fingerprint
                )
            )
        if result.trace_digest != entry.trace_digest:
            drift.append(
                ReplayDrift(
                    entry.entry_id, "trace_digest", entry.trace_digest, result.trace_digest
                )
            )
    return results, drift
