"""``python -m repro.chaos`` entry point."""

import sys

from repro.chaos.cli import main

sys.exit(main())
