"""Chaos plans: the replayable description of one generated scenario.

A :class:`ChaosPlan` is pure data — JSON-serialisable, hashable into a
fingerprint, and sufficient on its own to re-execute the exact run (the
runner derives everything else deterministically from it).  The *planner*
(:func:`plan_from_seed`) draws a plan from a single ``random.Random(seed)``;
the *shrinker* edits plans structurally (dropping fault events and workload
segments), which is why the plan, not the seed, is the unit of replay.

Planning constraints keep generated scenarios inside the envelope the
protocol promises to survive, so every oracle failure is a real bug:

* at most ``f`` replicas of a partition are crashed at any moment, and every
  crash schedules a restart (the oracles judge the *recovered* system);
* leader kills are only planned when automatic failover is enabled —
  without it, a dead leader is a liveness loss by design, not a bug;
* drop windows cover client↔core links and — now that the reliable channel
  (:mod:`repro.simnet.reliable`) retransmits intra-cluster traffic —
  core-to-core links inside a partition; core-link drops are only planned
  when reliability is enabled, since raw core loss without retransmission
  is a liveness loss by design (delays are allowed anywhere);
* byzantine proxies are only planned when the edge tier is enabled.

Core-link drop targets are drawn from a *side-stream* generator (seeded from
the plan seed but distinct from the main stream), so every draw of the main
stream — and therefore every pre-existing plan fingerprint for seeds without
drop faults — is unchanged by the planner learning the new fault target.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.common.config import (
    BatchConfig,
    CheckpointConfig,
    CostConfig,
    EdgeConfig,
    FailoverConfig,
    FreshnessConfig,
    LatencyConfig,
    MonitorConfig,
    PerfConfig,
    ReliabilityConfig,
    SystemConfig,
)
from repro.storage.partitioner import HashPartitioner

#: Fault kinds understood by the runner.
FAULT_KINDS = ("crash", "leader-kill", "drop", "delay", "byzantine-proxy")

#: Workload segment kinds understood by the runner.
SEGMENT_KINDS = ("mixed", "read-only", "group-write", "group-read")


@dataclass(frozen=True)
class ConfigPoint:
    """The system-configuration coordinates of one scenario."""

    num_partitions: int = 2
    fault_tolerance: int = 1
    initial_keys: int = 48
    value_size: int = 32
    batch_max_size: int = 4
    batch_timeout_ms: float = 2.0
    checkpoint_enabled: bool = True
    checkpoint_interval: int = 8
    retention_batches: int = 6
    archive_enabled: bool = True
    archive_compaction: bool = True
    edge_enabled: bool = False
    edge_num_proxies: int = 2
    edge_max_header_lag: int = 4
    edge_cache_ttl_ms: Optional[float] = None
    failover_enabled: bool = True
    reliability_enabled: bool = True
    progress_timeout_ms: float = 60.0
    jitter_fraction: float = 0.0
    commit_timeout_ms: float = 800.0
    request_timeout_ms: float = 600.0
    system_seed: int = 7
    #: Extra occupancy per signature-verify cache miss.  Non-zero in chaos
    #: runs so simulated latency is sensitive to verify-cache health — a
    #: wedged cache becomes a *measurable* slowdown the phase-latency
    #: oracle can catch (the benchmark/default cost model keeps 0.0).  The
    #: magnitude models a real from-scratch verification (think RSA) being
    #: an order of magnitude dearer than a memo hit; empirically it puts a
    #: wedged cache 2–4x above the twin while honest fault recovery (cold
    #: caches after restarts) stays under ~1.5x.
    verify_cache_miss_penalty_ms: float = 2.0
    #: Monitoring-timeline window width; the live monitor is always on in
    #: chaos runs (it is provably neutral) so every report carries health
    #: states and the performance oracle has timelines to compare.
    monitor_window_ms: float = 50.0
    #: The remaining fields are *mutation-only* dimensions: the uniform
    #: planner (:func:`plan_from_seed`) always leaves them at these defaults
    #: — which reproduce the historical behaviour byte-for-byte — and only
    #: the coverage-guided mutator (:mod:`repro.chaos.coverage`) moves them,
    #: opening config regions uniform seeds can never reach (e.g. a tiny
    #: refusing archive is the only road to ``snapshot_refused``).
    #: Client staleness bound on verified reads (None = unbounded, the
    #: pre-fleet behaviour); arming it also arms the edge-freshness oracle.
    client_staleness_bound_ms: Optional[float] = None
    #: Merkle-archive retention and what happens past it: rebuild (True,
    #: default) or refuse the round-2 snapshot (``snapshot_refused``).
    archive_max_batches: int = 512
    snapshot_rebuild_fallback: bool = True
    #: Retransmission-round cap per core link (None = library default);
    #: lowering it makes ``transport_retransmits_abandoned`` reachable
    #: within a survivable drop window.
    max_retransmits: Optional[int] = None

    def to_system_config(self) -> SystemConfig:
        """Expand into the full :class:`SystemConfig` the runner builds."""
        return SystemConfig(
            num_partitions=self.num_partitions,
            fault_tolerance=self.fault_tolerance,
            initial_keys=self.initial_keys,
            value_size=self.value_size,
            seed=self.system_seed,
            batch=BatchConfig(
                max_size=self.batch_max_size, timeout_ms=self.batch_timeout_ms
            ),
            latency=LatencyConfig(jitter_fraction=self.jitter_fraction),
            checkpoint=CheckpointConfig(
                enabled=self.checkpoint_enabled,
                interval_batches=self.checkpoint_interval,
                retention_batches=self.retention_batches,
            ),
            failover=FailoverConfig(
                enabled=self.failover_enabled,
                progress_timeout_ms=self.progress_timeout_ms,
            ),
            reliability=(
                ReliabilityConfig(enabled=self.reliability_enabled)
                if self.max_retransmits is None
                else ReliabilityConfig(
                    enabled=self.reliability_enabled,
                    max_retransmits=self.max_retransmits,
                )
            ),
            costs=CostConfig(
                verify_cache_miss_penalty_ms=self.verify_cache_miss_penalty_ms
            ),
            monitor=MonitorConfig(enabled=True, window_ms=self.monitor_window_ms),
            freshness=FreshnessConfig(
                client_staleness_bound_ms=self.client_staleness_bound_ms
            ),
            perf=PerfConfig(
                archive_enabled=self.archive_enabled,
                archive_compaction=self.archive_compaction,
                archive_max_batches=self.archive_max_batches,
                snapshot_rebuild_fallback=self.snapshot_rebuild_fallback,
            ),
            edge=EdgeConfig(
                enabled=self.edge_enabled,
                num_proxies=self.edge_num_proxies,
                max_header_lag_batches=self.edge_max_header_lag,
                cache_ttl_ms=self.edge_cache_ttl_ms,
            ),
        ).validate()


@dataclass(frozen=True)
class WorkloadSegment:
    """One client's stream of transactions, generated from its own sub-seed."""

    client: int
    kind: str
    count: int
    start_ms: float
    gap_ms: float
    seed: int
    read_only_fraction: float = 0.3
    local_fraction: float = 0.3
    distribution: str = "uniform"
    zipf_theta: float = 0.9
    group: int = 0


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.  Unused fields keep their defaults per ``kind``.

    * ``crash`` — crash member ``replica_index`` of ``partition`` at
      ``at_ms``, restart it ``duration_ms`` later;
    * ``leader-kill`` — crash whoever leads ``partition`` at fire time;
    * ``drop`` with ``target="client"`` — drop client ``client``'s traffic
      (``direction`` selects to-core or from-core) with ``probability`` for
      ``duration_ms``;
    * ``drop`` with ``target="core"`` — drop intra-cluster traffic between
      the replicas of ``partition`` with ``probability`` for ``duration_ms``
      (survivable only because the reliable channel retransmits);
    * ``delay`` — delay all traffic matching ``probability`` by ``extra_ms``
      for ``duration_ms``;
    * ``byzantine-proxy`` — install ``behaviour`` on edge proxy ``proxy``.
    """

    at_ms: float
    kind: str
    partition: int = 0
    replica_index: int = 1
    duration_ms: float = 30.0
    client: int = 0
    direction: str = "to-core"
    #: Drop scope: ``"client"`` (client↔core links) or ``"core"``
    #: (replica↔replica links of ``partition``).  Defaults to ``"client"``
    #: so serialised pre-reliability plans replay unchanged.
    target: str = "client"
    probability: float = 0.25
    extra_ms: float = 4.0
    proxy: int = 0
    behaviour: str = "tampered-value"


@dataclass(frozen=True)
class ChaosPlan:
    """A full scenario: config point + workload plan + fault plan."""

    seed: int
    config: ConfigPoint
    num_clients: int
    groups: Sequence[Sequence[str]]
    segments: Sequence[WorkloadSegment]
    faults: Sequence[FaultEvent]

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "config": asdict(self.config),
            "num_clients": self.num_clients,
            "groups": [list(group) for group in self.groups],
            "segments": [asdict(segment) for segment in self.segments],
            "faults": [asdict(event) for event in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        return cls(
            seed=int(data["seed"]),
            config=ConfigPoint(**data["config"]),
            num_clients=int(data["num_clients"]),
            groups=tuple(tuple(group) for group in data["groups"]),
            segments=tuple(WorkloadSegment(**entry) for entry in data["segments"]),
            faults=tuple(FaultEvent(**entry) for entry in data["faults"]),
        )

    # -- structural edits (used by the shrinker) ---------------------------

    def without_fault(self, index: int) -> "ChaosPlan":
        faults = tuple(event for i, event in enumerate(self.faults) if i != index)
        return replace(self, faults=faults)

    def without_segment(self, index: int) -> "ChaosPlan":
        segments = tuple(s for i, s in enumerate(self.segments) if i != index)
        return replace(self, segments=segments)

    def with_segment_count(self, index: int, count: int) -> "ChaosPlan":
        segments = tuple(
            replace(segment, count=count) if i == index else segment
            for i, segment in enumerate(self.segments)
        )
        return replace(self, segments=segments)


def partition_keys(config: ConfigPoint) -> Dict[int, List[str]]:
    """The preloaded key population, grouped by partition, without a system.

    Built from the *same* generator and partitioner the deployment uses, so
    the planner's reserved co-written groups are guaranteed to name real
    preloaded keys (the atomic-visibility oracle's zero-false-positive
    property rests on that).
    """
    from repro.core.system import generate_initial_data

    partitioner = HashPartitioner(config.num_partitions)
    grouped = partitioner.group_items(generate_initial_data(config.to_system_config()))
    return {
        partition: sorted(grouped.get(partition, {}))
        for partition in range(config.num_partitions)
    }


def plan_from_seed(seed: int) -> ChaosPlan:
    """Draw a complete scenario from ``random.Random(seed)``."""
    rng = random.Random(seed)
    # Core-link drop targets come from this side stream (see module
    # docstring): consuming it never perturbs the main stream's draws.
    side = random.Random((seed << 4) ^ 0xC0DE)

    edge_enabled = rng.random() < 0.4
    failover_enabled = rng.random() < 0.8
    config = ConfigPoint(
        num_partitions=rng.choice((2, 3)),
        initial_keys=rng.choice((36, 48, 64)),
        batch_max_size=rng.choice((4, 6, 8)),
        checkpoint_enabled=rng.random() < 0.8,
        checkpoint_interval=rng.choice((5, 8, 12)),
        retention_batches=rng.choice((4, 8)),
        archive_enabled=rng.random() < 0.8,
        archive_compaction=rng.random() < 0.5,
        edge_enabled=edge_enabled,
        edge_num_proxies=rng.choice((1, 2)),
        edge_max_header_lag=rng.choice((2, 4, 8)),
        edge_cache_ttl_ms=rng.choice((None, 40.0)),
        failover_enabled=failover_enabled,
        progress_timeout_ms=rng.choice((40.0, 60.0)),
        jitter_fraction=rng.choice((0.0, 0.05)),
        commit_timeout_ms=rng.choice((400.0, 800.0)),
        request_timeout_ms=rng.choice((300.0, 600.0)),
        system_seed=rng.randrange(1, 1 << 16),
    )

    # Reserved co-written groups: one key from each of two partitions, never
    # touched by the random streams, so atomic visibility is checkable with
    # zero false positives.
    by_partition = partition_keys(config)
    groups: List[List[str]] = []
    for group_index in range(rng.randint(1, 2)):
        partitions = rng.sample(sorted(by_partition), 2)
        group = [by_partition[p][group_index] for p in sorted(partitions)]
        groups.append(group)

    num_clients = rng.randint(2, 4)
    segments: List[WorkloadSegment] = []

    def draw_segment(kind: str) -> WorkloadSegment:
        return WorkloadSegment(
            client=rng.randrange(num_clients),
            kind=kind,
            count=rng.randint(5, 10) if kind == "group-write" else rng.randint(6, 14),
            start_ms=round(rng.uniform(0.0, 10.0), 3),
            gap_ms=round(rng.uniform(1.5, 4.0), 3),
            seed=rng.randrange(1 << 31),
            read_only_fraction=round(rng.uniform(0.2, 0.5), 3),
            local_fraction=round(rng.uniform(0.1, 0.4), 3),
            distribution=rng.choice(("uniform", "zipfian")),
            zipf_theta=rng.choice((0.7, 0.9, 0.99)),
            group=rng.randrange(len(groups)),
        )

    # Always at least one writer and one reader of the co-written groups.
    segments.append(draw_segment("group-write"))
    segments.append(draw_segment("group-read"))
    for _ in range(rng.randint(2, 5)):
        segments.append(
            draw_segment(
                rng.choices(SEGMENT_KINDS, weights=(0.5, 0.2, 0.15, 0.15))[0]
            )
        )

    faults: List[FaultEvent] = []
    #: Per partition, when the currently planned crash window ends (at most
    #: ``f = 1`` member of a cluster may be down at any moment).
    crash_free_at: Dict[int, float] = {}
    cluster_size = 3 * config.fault_tolerance + 1
    for _ in range(rng.randint(1, 4)):
        kinds = ["crash", "drop", "delay"]
        weights = [0.4, 0.25, 0.15]
        if failover_enabled:
            kinds.append("leader-kill")
            weights.append(0.3)
        if edge_enabled:
            kinds.append("byzantine-proxy")
            weights.append(0.25)
        kind = rng.choices(kinds, weights=weights)[0]
        at_ms = round(rng.uniform(3.0, 25.0), 3)
        if kind in ("crash", "leader-kill"):
            partition = rng.randrange(config.num_partitions)
            duration = round(rng.uniform(15.0, 40.0), 3)
            earliest = crash_free_at.get(partition, 0.0)
            if at_ms <= earliest:
                at_ms = round(earliest + rng.uniform(2.0, 6.0), 3)
            crash_free_at[partition] = at_ms + duration
            faults.append(
                FaultEvent(
                    at_ms=at_ms,
                    kind=kind,
                    partition=partition,
                    replica_index=rng.randint(1, cluster_size - 1),
                    duration_ms=duration,
                )
            )
        elif kind == "drop":
            # Main-stream draws happen unconditionally (and in the historical
            # order) so the choice of target cannot shift later draws.
            client = rng.randrange(num_clients)
            direction = rng.choice(("to-core", "from-core"))
            probability = round(rng.uniform(0.1, 0.35), 3)
            duration_ms = round(rng.uniform(10.0, 30.0), 3)
            if config.reliability_enabled and side.random() < 0.5:
                faults.append(
                    FaultEvent(
                        at_ms=at_ms,
                        kind="drop",
                        target="core",
                        partition=side.randrange(config.num_partitions),
                        probability=probability,
                        duration_ms=duration_ms,
                    )
                )
            else:
                faults.append(
                    FaultEvent(
                        at_ms=at_ms,
                        kind="drop",
                        client=client,
                        direction=direction,
                        probability=probability,
                        duration_ms=duration_ms,
                    )
                )
        elif kind == "delay":
            faults.append(
                FaultEvent(
                    at_ms=at_ms,
                    kind="delay",
                    probability=round(rng.uniform(0.1, 0.3), 3),
                    extra_ms=round(rng.uniform(1.0, 6.0), 3),
                    duration_ms=round(rng.uniform(10.0, 30.0), 3),
                )
            )
        else:  # byzantine-proxy
            faults.append(
                FaultEvent(
                    at_ms=at_ms,
                    kind="byzantine-proxy",
                    proxy=rng.randrange(config.edge_num_proxies),
                    behaviour=rng.choice(
                        ("tampered-value", "tampered-proof", "stale-header")
                    ),
                )
            )
    faults.sort(key=lambda event: event.at_ms)

    return ChaosPlan(
        seed=seed,
        config=config,
        num_clients=num_clients,
        groups=tuple(tuple(group) for group in groups),
        segments=tuple(segments),
        faults=tuple(faults),
    )
