"""Execute one chaos plan and judge it with the invariant oracles.

The runner is a deterministic function of the plan: it builds the system
from the plan's config point, pre-generates every workload segment's
transaction specifications from the segment's own sub-seed, schedules the
fault plan on the simulator clock, runs to quiescence, restarts whatever is
still down, sends a small probe workload (liveness under quiescence), and
hands the recorded :class:`~repro.verification.history.ExecutionHistory`
plus the quiesced system to the oracle suite.

Two bookkeeping subtleties keep the oracles sound under faults:

* **Write-value uniqueness.**  Every write value is retagged
  ``s<segment>-t<txn>:<key>`` so that no two transactions anywhere in the
  run write the same bytes — the wr/ww edges of the serialization graph
  need unambiguous writers.
* **Unknown commit outcomes.**  A commit whose reply timed out may still
  have committed server-side.  Recording it as aborted would make later
  reads of its values look illegitimate, so after quiescence the runner
  resolves every unknown against the authoritative version chains and the
  replicated decision records, and records it as committed when any
  evidence of commitment exists.  (The planner additionally confines
  *client*-targeted drop faults to the read path — read-phase timeouts
  abort *before* submission, so they are never ambiguous.  Core-targeted
  drops hit replica↔replica links only, where the reliable channel
  retransmits; a commit made slow by core loss that still times out at the
  client lands in the same unknown-outcome resolution.)
"""

from __future__ import annotations

import contextlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.config import MonitorConfig

from repro.common.errors import SimulationError
from repro.common.ids import ReplicaId
from repro.common.types import Key, TxnKind, Value
from repro.core.messages import (
    ReadOnlyReply,
    ReadOnlyRequest,
    ReadReply,
    ReadRequest,
    SnapshotReply,
    SnapshotRequest,
)
from repro.core.system import TransEdgeSystem
from repro.edge.messages import EdgeReadReply, EdgeReadRequest
from repro.crypto.hashing import sha256_hex, stable_encode
from repro.edge.byzantine import install_byzantine
from repro.simnet.faults import FaultRule, FaultSchedule
from repro.simnet.proc import Sleep
from repro.verification.history import ExecutionHistory
from repro.verification.oracles import (
    OracleFailure,
    PhaseLatencyAnomalyOracle,
    RunObservation,
    run_suite,
)
from repro.workload.generator import TxnSpec, WorkloadGenerator, WorkloadProfile

from repro.chaos.bugs import InjectedBug, get_bug
from repro.chaos.plan import ChaosPlan, plan_from_seed

#: Read-path message types a client-targeted drop fault may affect (see
#: module docstring; core-targeted drops match all intra-cluster traffic).
_DROPPABLE = (
    ReadRequest,
    ReadReply,
    ReadOnlyRequest,
    ReadOnlyReply,
    SnapshotRequest,
    SnapshotReply,
    EdgeReadRequest,
    EdgeReadReply,
)


@dataclass
class ChaosReport:
    """Everything one chaos run produced, failures first."""

    plan: ChaosPlan
    failures: List[OracleFailure]
    committed: int = 0
    aborted: int = 0
    unknown_resolved_committed: int = 0
    read_only_recorded: int = 0
    read_only_unverified: int = 0
    probe_submitted: int = 0
    probe_committed: int = 0
    fault_events: int = 0
    crashes: int = 0
    restarts: int = 0
    events_processed: int = 0
    elapsed_sim_ms: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    history_digest: str = ""
    #: Streaming digest over every causal span the run recorded (repro.obs).
    #: Deliberately outside :meth:`fingerprint`: the fingerprint predates
    #: tracing and archived fingerprints must stay comparable.
    trace_digest: str = ""
    #: Flight-recorder tail + failing transactions' full traces, attached
    #: only when an oracle failed — the repro artifact's black box.
    flight_recorder: List[Dict[str, object]] = field(default_factory=list)
    failing_traces: List[Dict[str, object]] = field(default_factory=list)
    #: ``(start_ms, end_ms-or-None)`` intervals the fault plan was active
    #: (simulator clock); the performance oracle excludes them.
    fault_windows: List[Tuple[float, Optional[float]]] = field(default_factory=list)
    #: Node-health summary from the live monitor (states + transitions).
    #: Like ``trace_digest``, deliberately outside :meth:`fingerprint`.
    health: Dict[str, object] = field(default_factory=dict)
    #: Worst commit-latency ratio vs the fault-free twin outside fault
    #: windows (``PhaseLatencyAnomalyOracle.measure``), when a twin ran.
    #: A coverage signal (near-misses in [1.2, 2.0) are rare-path evidence
    #: for the fleet), deliberately outside :meth:`fingerprint`.
    perf_ratio: Optional[float] = None
    #: Transient handles (not serialised): the run's live monitor and the
    #: oracle observation, kept so :func:`run_plan` can grade the run
    #: against its fault-free twin after ``_run`` returns.
    monitor: object = None
    observation: object = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def fingerprint(self) -> str:
        """Stable digest of everything observable: equal ⇒ identical run."""
        return sha256_hex(
            stable_encode(
                {
                    "history": self.history_digest,
                    "counters": {k: int(v) for k, v in self.counters.items()},
                    "committed": self.committed,
                    "aborted": self.aborted,
                    "read_only": self.read_only_recorded,
                    "unverified": self.read_only_unverified,
                    "events": self.events_processed,
                    "failures": [
                        [f.oracle, f.description] for f in self.failures
                    ],
                }
            )
        )

    def summary_line(self) -> str:
        status = "ok" if self.ok else f"FAIL({len(self.failures)})"
        return (
            f"seed {self.plan.seed}: {status}  "
            f"commits={self.committed} aborts={self.aborted} "
            f"reads={self.read_only_recorded} faults={self.fault_events} "
            f"events={self.events_processed}"
        )


def _history_digest(history: ExecutionHistory) -> str:
    commits = [
        [txn.txn_id, sorted((k, v) for k, v in txn.writes.items())]
        for txn in history.committed
    ]
    reads = [
        [
            obs.txn_id,
            sorted((k, v) for k, v in obs.values.items()),
            sorted((k, int(v)) for k, v in obs.versions.items()),
        ]
        for obs in history.read_only
    ]
    return sha256_hex(stable_encode({"commits": commits, "reads": reads}))


def _tagged_value(segment_index: int, txn_index: int, key: Key, size: int) -> Value:
    prefix = f"s{segment_index}-t{txn_index}:{key}".encode("ascii")
    return prefix.ljust(size, b".")


class _Tracker:
    """Mutable driver-side bookkeeping shared by all segment processes."""

    def __init__(self) -> None:
        self.committed = 0
        self.aborted = 0
        self.read_only_recorded = 0
        self.read_only_unverified = 0
        #: txn_id → writes, for commits whose reply timed out (outcome unknown).
        self.unknown: Dict[str, Dict[Key, Value]] = {}


def _segment_specs(
    plan: ChaosPlan, segment_index: int, population: Sequence[Key], partitioner
) -> List[TxnSpec]:
    """Pre-generate a segment's transaction stream from its sub-seed."""
    segment = plan.segments[segment_index]
    if segment.kind == "group-write":
        group = plan.groups[segment.group % len(plan.groups)]
        return [
            TxnSpec(
                kind=TxnKind.DISTRIBUTED_READ_WRITE,
                read_keys=(),
                writes={key: b"" for key in group},  # values retagged at send
            )
            for _ in range(segment.count)
        ]
    if segment.kind == "group-read":
        keys = tuple(sorted({key for group in plan.groups for key in group}))
        return [
            TxnSpec(kind=TxnKind.READ_ONLY, read_keys=keys, writes={})
            for _ in range(segment.count)
        ]
    profile = WorkloadProfile(
        read_ops=3,
        write_ops=2,
        read_only_ops=2,
        value_size=plan.config.value_size,
        read_only_fraction=segment.read_only_fraction,
        local_fraction=segment.local_fraction,
        distribution=segment.distribution,
        zipf_theta=segment.zipf_theta,
    )
    generator = WorkloadGenerator(
        population, partitioner, profile=profile, seed=segment.seed
    )
    if segment.kind == "read-only":
        return [generator.read_only() for _ in range(segment.count)]
    return list(generator.mixed_stream(segment.count))


def _segment_body(
    client,
    segment,
    segment_index: int,
    specs: List[TxnSpec],
    history: ExecutionHistory,
    tracker: _Tracker,
    value_size: int,
):
    def body():
        if segment.start_ms > 0:
            yield Sleep(segment.start_ms)
        for txn_index, spec in enumerate(specs):
            if segment.gap_ms > 0:
                yield Sleep(segment.gap_ms)
            if spec.kind is TxnKind.READ_ONLY:
                result = yield from client.read_only_txn(list(spec.read_keys))
                if result.verified:
                    tracker.read_only_recorded += 1
                    history.record_read_only(
                        result.txn_id, result.values, result.versions
                    )
                else:
                    tracker.read_only_unverified += 1
                continue
            writes = {
                key: _tagged_value(segment_index, txn_index, key, value_size)
                for key in spec.writes
            }
            result = yield from client.read_write_txn(list(spec.read_keys), writes)
            if result.committed:
                tracker.committed += 1
                history.record_commit(result.txn_id, {}, writes)
            else:
                tracker.aborted += 1
                if result.abort_reason == "commit reply timed out":
                    # Outcome unknown: resolved post-quiescence.
                    tracker.unknown[result.txn_id] = writes

    return body


def _resolve_unknown_outcomes(
    system: TransEdgeSystem, history: ExecutionHistory, tracker: _Tracker
) -> int:
    """Record unknown-outcome commits that demonstrably committed.

    Evidence, in order: any of the transaction's (unique) write values
    appearing in an authoritative version chain, or a replicated commit
    decision naming the transaction.
    """
    if not tracker.unknown:
        return 0
    # Only the unknown transactions' own write keys can carry evidence
    # (values are unique by construction), so scan just those chains.
    wanted: Set[Key] = {
        key for writes in tracker.unknown.values() for key in writes
    }
    present: Set[Tuple[Key, Value]] = set()
    for partition in system.topology.partitions():
        replica = system.leader_replica(partition)
        for key in sorted(wanted):
            if key not in replica.store:
                continue
            for _, value in replica.store.history(key):
                present.add((key, value))
    resolved = 0
    for txn_id in sorted(tracker.unknown):
        writes = tracker.unknown[txn_id]
        committed = any((key, value) in present for key, value in writes.items())
        if not committed:
            for replica in system.replicas.values():
                record = replica.decided.get(txn_id)
                if record is not None and record[1].committed:
                    committed = True
                    break
                if txn_id in replica.local_decided:
                    committed = True
                    break
        if committed:
            resolved += 1
            history.record_commit(txn_id, {}, writes)
    return resolved


def _schedule_faults(
    plan: ChaosPlan,
    system: TransEdgeSystem,
    bug: Optional[InjectedBug],
    crash_log: List[ReplicaId],
    restart_log: List[ReplicaId],
) -> List[Tuple[float, Optional[float]]]:
    """Schedule the fault plan; returns each fault's active interval.

    Intervals are on the simulator clock (plan times are run-relative and
    anchored at "now").  An end of ``None`` means the fault never lifts
    within the run — byzantine proxies stay installed, and crashes are
    never restarted under a ``skip_restarts`` bug.
    """
    simulator = system.env.simulator
    schedule = FaultSchedule(system.fault_injector, simulator)
    skip_restarts = bug is not None and bug.skip_restarts
    # Fault times are run-relative; the bootstrap (genesis batches) already
    # advanced the simulated clock, so anchor the plan at "now".
    base = simulator.now
    windows: List[Tuple[float, Optional[float]]] = []

    def plan_crash(event, target_of) -> None:
        def fire() -> None:
            target = target_of()
            if target is None or system.replicas[target].crashed:
                return
            system.crash_replica(target)
            crash_log.append(target)
            if skip_restarts:
                return

            def lift() -> None:
                if system.replicas[target].crashed:
                    system.restart_replica(target)
                    restart_log.append(target)

            simulator.schedule(event.duration_ms, lift)

        simulator.schedule_at(base + event.at_ms, fire)

    for event in plan.faults:
        if event.kind == "byzantine-proxy" or (
            skip_restarts and event.kind in ("crash", "leader-kill")
        ):
            windows.append((base + event.at_ms, None))
        else:
            windows.append(
                (base + event.at_ms, base + event.at_ms + event.duration_ms)
            )
        if event.kind == "crash":
            members = system.topology.members(event.partition % system.config.num_partitions)

            def target_of(event=event, members=members):
                return members[event.replica_index % len(members)]

            plan_crash(event, target_of)
        elif event.kind == "leader-kill":
            def leader_of(event=event):
                return system.topology.leader(
                    event.partition % system.config.num_partitions
                )

            plan_crash(event, leader_of)
        elif event.kind == "drop":
            if event.target == "core":
                # Lossy intra-cluster links: every ordered replica pair of the
                # partition drops with the event's probability.  All matching
                # traffic (envelopes, acks, retransmissions) travels the
                # reliable channel, which is what makes the window survivable.
                members = system.topology.members(
                    event.partition % system.config.num_partitions
                )
                for link_src in members:
                    for link_dst in members:
                        if link_src == link_dst:
                            continue
                        schedule.drop_window(
                            base + event.at_ms,
                            FaultRule(
                                src=link_src,
                                dst=link_dst,
                                probability=event.probability,
                            ),
                            until_ms=base + event.at_ms + event.duration_ms,
                        )
                continue
            client = system.clients[event.client % len(system.clients)]
            for message_type in _DROPPABLE:
                rule = (
                    FaultRule(
                        src=client.node_id,
                        message_type=message_type,
                        probability=event.probability,
                    )
                    if event.direction == "to-core"
                    else FaultRule(
                        dst=client.node_id,
                        message_type=message_type,
                        probability=event.probability,
                    )
                )
                schedule.drop_window(
                    base + event.at_ms,
                    rule,
                    until_ms=base + event.at_ms + event.duration_ms,
                )
        elif event.kind == "delay":
            schedule.delay_window(
                base + event.at_ms,
                FaultRule(probability=event.probability),
                extra_ms=event.extra_ms,
                until_ms=base + event.at_ms + event.duration_ms,
            )
        elif event.kind == "byzantine-proxy":
            if not system.proxies:
                continue
            proxy = system.proxies[event.proxy % len(system.proxies)]
            simulator.schedule_at(
                base + event.at_ms,
                lambda proxy=proxy, event=event: install_byzantine(
                    proxy, event.behaviour
                ),
            )
        else:
            raise ValueError(f"unknown fault kind {event.kind!r}")
    return windows


def run_plan(
    plan: ChaosPlan,
    bug: "InjectedBug | str | None" = None,
    max_events: int = 4_000_000,
    monitor: bool = True,
    perf_oracle: bool = True,
) -> ChaosReport:
    """Execute ``plan`` and return its report (deterministic in the plan).

    With ``perf_oracle`` (and monitoring on), the run is additionally graded
    by the phase-latency anomaly oracle against its *fault-free twin*: the
    same plan with the fault schedule stripped, executed **outside** the
    injected-bug patch.  The twin is skipped when the run is already its own
    twin (no faults, no bug) or when latency is meaningless (stalled run).
    ``monitor=False`` disables the live monitor only — the cost model is
    untouched, which is exactly the configuration the neutrality tests
    compare against.
    """
    if isinstance(bug, str):
        bug = get_bug(bug)
    patch = bug.patch() if bug is not None else contextlib.nullcontext()
    with patch:
        report = _run(plan, bug, max_events, monitor=monitor)
    observation = report.observation
    needs_twin = (
        perf_oracle
        and report.monitor is not None
        and (plan.faults or bug is not None)
        and not observation.simulation_stalled
    )
    if needs_twin:
        twin = _run(replace(plan, faults=()), None, max_events, monitor=True)
        graded = replace(
            observation,
            monitor=report.monitor,
            twin_monitor=twin.monitor,
            fault_windows=tuple(report.fault_windows),
        )
        oracle = PhaseLatencyAnomalyOracle()
        report.perf_ratio = oracle.measure(graded)
        perf_failures = oracle.check(graded)
        if perf_failures:
            had_failures = bool(report.failures)
            report.failures.extend(perf_failures)
            if not had_failures:
                # Late failure: attach the black box _run skipped.
                obs = observation.system.env.obs
                report.flight_recorder = obs.recorder.as_dicts(last_n=200)
    return report


def run_seed(
    seed: int,
    bug: "InjectedBug | str | None" = None,
    max_events: int = 4_000_000,
    monitor: bool = True,
    perf_oracle: bool = True,
) -> ChaosReport:
    return run_plan(
        plan_from_seed(seed),
        bug=bug,
        max_events=max_events,
        monitor=monitor,
        perf_oracle=perf_oracle,
    )


def _run(
    plan: ChaosPlan,
    bug: Optional[InjectedBug],
    max_events: int,
    monitor: bool = True,
) -> ChaosReport:
    # Tracing is always on under chaos: spans draw no randomness and add no
    # simulator events, so fingerprints are unchanged, and the traces are
    # both an oracle input (trace completeness) and the failure artifact's
    # flight-recorder payload.  The retention window and per-node rings are
    # enlarged so excuse events (drops, delays) survive long fault storms.
    config = plan.config.to_system_config().with_tracing(
        True, max_traces=20_000, ring_capacity=100_000
    )
    if not monitor:
        # Escape hatch (``--no-monitor``): disable only the live monitor,
        # never the cost model — so this configuration is what the
        # monitoring-neutrality tests diff fingerprints against.
        config = replace(config, monitor=MonitorConfig(enabled=False)).validate()
    system = TransEdgeSystem(config)
    history = ExecutionHistory(system.initial_data)
    tracker = _Tracker()
    reserved = {key for group in plan.groups for key in group}
    population = [key for key in sorted(system.initial_data) if key not in reserved]

    clients = [
        system.create_client(
            f"chaos-{index}",
            commit_timeout_ms=plan.config.commit_timeout_ms,
            request_timeout_ms=plan.config.request_timeout_ms,
        )
        for index in range(plan.num_clients)
    ]

    processes = []
    for segment_index, segment in enumerate(plan.segments):
        specs = _segment_specs(plan, segment_index, population, system.partitioner)
        client = clients[segment.client % len(clients)]
        processes.append(
            client.spawn(
                _segment_body(
                    client,
                    segment,
                    segment_index,
                    specs,
                    history,
                    tracker,
                    plan.config.value_size,
                )(),
                name=f"chaos-seg-{segment_index}",
            )
        )

    crash_log: List[ReplicaId] = []
    restart_log: List[ReplicaId] = []
    fault_windows = _schedule_faults(plan, system, bug, crash_log, restart_log)

    stalled = False
    try:
        system.run_until_idle(max_events=max_events)
    except SimulationError:
        stalled = True

    # Quiescence: lift anything still down (the honest runner always rejoins
    # crashed replicas; the skip-crash-restarts bug models forgetting to).
    if not (bug is not None and bug.skip_restarts) and not stalled:
        for replica_id in sorted(
            (r for r in system.replicas if system.replicas[r].crashed), key=str
        ):
            system.restart_replica(replica_id)
            restart_log.append(replica_id)
        system.fault_injector.clear()
        try:
            system.run_until_idle(max_events=max_events)
        except SimulationError:
            stalled = True

    # Probe: once faults stop, fresh commits must succeed on every partition.
    probe_submitted = 0
    probe_results: List[object] = []
    if not stalled:
        probe = system.create_client(
            "chaos-probe", commit_timeout_ms=plan.config.commit_timeout_ms
        )
        keys_by_partition = system.partitioner.group_keys(population)
        probe_writes: List[Dict[Key, Value]] = []
        for partition in sorted(keys_by_partition):
            keys = sorted(keys_by_partition[partition])[:2]
            for index, key in enumerate(keys):
                probe_writes.append(
                    {key: f"probe-p{partition}-{index}:{key}".encode("ascii").ljust(
                        plan.config.value_size, b"."
                    )}
                )
        probe_submitted = len(probe_writes)

        def probe_body():
            for writes in probe_writes:
                result = yield from probe.read_write_txn([], dict(writes))
                probe_results.append(result)
                if result.committed:
                    history.record_commit(result.txn_id, {}, dict(writes))

        processes.append(probe.spawn(probe_body(), name="chaos-probe"))
        try:
            system.run_until_idle(max_events=max_events)
        except SimulationError:
            stalled = True

    probe_committed = sum(1 for result in probe_results if result.committed)
    resolved = _resolve_unknown_outcomes(system, history, tracker)

    # Close the monitoring timeline's tail window before anything reads it
    # (flush only samples counters — it cannot perturb the quiesced system).
    if system.monitor is not None:
        system.monitor.flush(system.now)

    observation = RunObservation(
        system=system,
        history=history,
        co_written_groups=[set(group) for group in plan.groups],
        restarted_replicas=sorted(set(restart_log), key=str),
        unfinished_processes=sorted(
            process.name for process in processes if not process.finished
        ),
        simulation_stalled=stalled,
        probe_submitted=probe_submitted,
        probe_committed=probe_committed,
    )
    failures = run_suite(observation)

    obs = system.env.obs
    flight_recorder: List[Dict[str, object]] = []
    failing_traces: List[Dict[str, object]] = []
    if failures:
        flight_recorder = obs.recorder.as_dicts(last_n=200)
        # Any retained trace a failure names by id ships whole: the artifact
        # then shows the failing transaction's entire causal history.
        descriptions = " ".join(f.description for f in failures)
        failing_traces = [
            trace.to_dict()
            for trace in obs.tracer.traces()
            if trace.trace_id in descriptions
        ]

    counters = {
        name: int(value) for name, value in asdict(system.counters()).items()
    }
    # Transport counters exist only when the reliable channel is on, so
    # reports from reliability-disabled plans fingerprint exactly as before.
    transport = system.env.reliability
    if transport is not None:
        counters.update(
            {f"transport_{name}": int(value) for name, value in transport.counters.items()}
        )
    return ChaosReport(
        plan=plan,
        failures=failures,
        committed=tracker.committed,
        aborted=tracker.aborted,
        unknown_resolved_committed=resolved,
        read_only_recorded=tracker.read_only_recorded,
        read_only_unverified=tracker.read_only_unverified,
        probe_submitted=probe_submitted,
        probe_committed=probe_committed,
        fault_events=len(plan.faults),
        crashes=len(crash_log),
        restarts=len(restart_log),
        events_processed=system.env.simulator.events_processed,
        elapsed_sim_ms=system.now,
        counters=counters,
        history_digest=_history_digest(history),
        trace_digest=obs.tracer.digest(),
        flight_recorder=flight_recorder,
        failing_traces=failing_traces,
        fault_windows=list(fault_windows),
        health=system.monitor.health.summary() if system.monitor is not None else {},
        monitor=system.monitor,
        observation=observation,
    )
