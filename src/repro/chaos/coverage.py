"""Coverage signatures and plan mutation for the chaos fleet.

A finished chaos run is summarised into a *coverage signature*: the sorted
tuple of rare features it exhibited — rare counters that fired
(``catchup_recoveries``, ``snapshot_refused``,
``transport_retransmits_abandoned``, ...), non-healthy health states the
monitor recorded, oracles that failed, and performance near-misses (a
commit-latency ratio vs the fault-free twin in [1.2, 2.0): too small to trip
the phase-latency oracle, too large to be noise).  Signatures are pure
functions of report data already outside the fingerprint, so computing them
never perturbs a run.

A :class:`CoverageMap` counts how often each feature has been seen across
all runs of a fleet/corpus; :func:`signature_weight` turns a signature into
a selection weight that favours plans whose features are globally rare —
the AFL-style scheduling heuristic.  :func:`mutate_plan` then derives a new
plan from a chosen corpus entry by perturbing its ``ConfigPoint`` and fault
plan inside the planner's legality envelope (at most the planner's own
fault severities scaled up, never an unsurvivable scenario: no new crashes,
core drops only under reliability, refusing archives only when the archive
exists).  Several mutated dimensions are *unreachable* by the uniform
planner — a refusing archive (``snapshot_refused``), an armed client
staleness bound — which is exactly the point: mutation opens config
regions uniform seeds 0..N can never visit.

One early operator is deliberately retired (see ``MUTATION_OPS``):
``low-retransmit-cap``.  The reliable channel's default retransmission
budget is sized so links to *live* peers survive every legal loss window
(:mod:`repro.simnet.reliable`); caps of 2–4 abandon live links
mid-blackout, i.e. permanent message loss, which the core's fault model
never promises to survive — the failures it produced (wedged 2PC,
phantom reads) were artifacts of the illegal config, not protocol bugs.
``long-crash`` covers the same rare counters legally: one solitary
replica outage stretched far past the whole retransmission budget makes
its peers abandon the dead links by design, and the replica rejoins
through state transfer at restart.

The fleet's early sessions earned their keep before this module ever
shipped: mutants surfaced a client bug (positional leader refusals
recorded as authoritative aborts) and an elected-while-behind leader
stall (a view change can elect a replica that missed decisions while
crashed; it re-proposes an already-decided sequence and nothing in the
partition can tell it so).  Both are fixed — see
:mod:`repro.core.client`, :meth:`ViewProgressMonitor catch-up branches
<repro.core.replica.ViewProgressMonitor>` and
:meth:`~repro.core.leader.LeaderRole.on_recovery_complete` — and the
mutants that found them are pinned in ``tests/chaos/test_fleet.py``.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.chaos.plan import ChaosPlan, FaultEvent

#: Counters whose firing marks a rare protocol path worth biasing toward.
RARE_COUNTERS = (
    "catchup_recoveries",
    "snapshot_refused",
    "two_pc_unresumable",
    "transport_retransmits_abandoned",
    "transport_links_abandoned",
)

#: Perf near-miss band: below the phase-latency oracle's 2.0x threshold but
#: clearly above twin noise.
NEAR_MISS_LOW = 1.2
NEAR_MISS_HIGH = 2.0


def coverage_signature(
    counters: Mapping[str, int],
    health: Mapping[str, object],
    failure_oracles: Iterable[str] = (),
    perf_ratio: Optional[float] = None,
) -> Tuple[str, ...]:
    """The sorted rare-feature tuple of one finished run."""
    features = set()
    for name in RARE_COUNTERS:
        if int(counters.get(name, 0) or 0) > 0:
            features.add(f"counter:{name}")
    for transition in health.get("transitions") or []:
        state = transition.get("to") if isinstance(transition, dict) else None
        if state and state != "healthy":
            features.add(f"health:{state}")
    for oracle in failure_oracles:
        features.add(f"oracle:{oracle}")
    if perf_ratio is not None and NEAR_MISS_LOW <= perf_ratio < NEAR_MISS_HIGH:
        features.add("perf:near-miss")
    return tuple(sorted(features))


class CoverageMap:
    """Global feature counts across every run the fleet has seen."""

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    def observe(self, signature: Sequence[str]) -> List[str]:
        """Fold one signature in; returns the features seen for the first time."""
        fresh = [feature for feature in signature if feature not in self.counts]
        for feature in signature:
            self.counts[feature] = self.counts.get(feature, 0) + 1
        return fresh

    def novel_features(self, signature: Sequence[str]) -> List[str]:
        return [feature for feature in signature if feature not in self.counts]

    def to_dict(self) -> Dict[str, int]:
        return {feature: self.counts[feature] for feature in sorted(self.counts)}

    @classmethod
    def from_signatures(cls, signatures: Iterable[Sequence[str]]) -> "CoverageMap":
        coverage = cls()
        for signature in signatures:
            coverage.observe(signature)
        return coverage


def signature_weight(signature: Sequence[str], coverage: CoverageMap) -> float:
    """Selection weight of a corpus entry: the rarer its features, the higher.

    Every entry keeps a small floor so the corpus never starves; each
    feature contributes the inverse of its global count, so a plan that hit
    a once-seen counter outweighs one that only hit everyday degradations.
    """
    weight = 0.05
    for feature in signature:
        weight += 1.0 / max(1, coverage.counts.get(feature, 0))
    return weight


# ---------------------------------------------------------------------------
# Plan mutation
# ---------------------------------------------------------------------------

#: Mutation operator names, in the fixed order the mutator draws from
#: (stable order keeps sessions deterministic across processes).  The
#: retired ``low-retransmit-cap`` operator is documented in the module
#: docstring; do not re-add it without re-validating the envelope.
MUTATION_OPS = (
    "refusing-archive",
    "arm-staleness-bound",
    "tight-checkpoints",
    "harshen-drop",
    "add-core-blackout",
    "add-delay-storm",
    "extend-crash",
    "long-crash",
    "reroll-system-seed",
)


def _extendable_crash_indices(plan: ChaosPlan) -> List[int]:
    """Crash-kind faults safe to stretch: their partition's only outage.

    Extending one of two planned outages of the same partition could make
    the windows overlap — two concurrent crashes where the planner promised
    at most ``f = 1`` — so only solitary outages are candidates.
    """
    per_partition: Dict[int, int] = {}
    for fault in plan.faults:
        if fault.kind in ("crash", "leader-kill"):
            per_partition[fault.partition] = per_partition.get(fault.partition, 0) + 1
    return [
        index
        for index, fault in enumerate(plan.faults)
        if fault.kind in ("crash", "leader-kill")
        and per_partition[fault.partition] == 1
    ]


def _applicable_ops(plan: ChaosPlan) -> List[str]:
    ops = ["tight-checkpoints", "add-delay-storm", "reroll-system-seed"]
    if plan.config.archive_enabled:
        ops.append("refusing-archive")
    if plan.config.reliability_enabled:
        ops.append("add-core-blackout")
    if plan.config.edge_enabled:
        ops.append("arm-staleness-bound")
    if any(fault.kind == "drop" for fault in plan.faults):
        ops.append("harshen-drop")
    if _extendable_crash_indices(plan):
        ops.append("extend-crash")
        if plan.config.reliability_enabled:
            ops.append("long-crash")
    return sorted(ops, key=MUTATION_OPS.index)


def _apply_op(plan: ChaosPlan, op: str, rng: random.Random) -> ChaosPlan:
    config = plan.config
    if op == "refusing-archive":
        # A tiny archive that *refuses* instead of rebuilding: round-2
        # snapshot requests for batches past the window hit the
        # ``snapshot_refused`` path (reads fall back unverified — a
        # liveness-safe degradation the uniform planner can never draw).
        return replace(
            plan,
            config=replace(
                config,
                archive_max_batches=rng.choice((1, 2, 3)),
                snapshot_rebuild_fallback=False,
            ),
        )
    if op == "arm-staleness-bound":
        return replace(
            plan,
            config=replace(
                config, client_staleness_bound_ms=rng.choice((30.0, 60.0, 120.0))
            ),
        )
    if op == "tight-checkpoints":
        return replace(
            plan,
            config=replace(
                config,
                checkpoint_enabled=True,
                checkpoint_interval=rng.choice((3, 4)),
                retention_batches=rng.choice((2, 4)),
            ),
        )
    if op == "harshen-drop":
        index = rng.choice(
            [i for i, fault in enumerate(plan.faults) if fault.kind == "drop"]
        )
        fault = plan.faults[index]
        harsher = replace(
            fault,
            probability=round(min(0.9, fault.probability * rng.uniform(1.5, 3.0)), 3),
            duration_ms=round(min(150.0, fault.duration_ms * rng.uniform(1.5, 3.0)), 3),
        )
        faults = tuple(
            harsher if i == index else f for i, f in enumerate(plan.faults)
        )
        return replace(plan, faults=faults)
    if op == "add-core-blackout":
        # A near-total intra-cluster loss window; survivable because the
        # reliable channel retransmits, but long enough that a lowered
        # retransmission cap can abandon links mid-window.
        blackout = FaultEvent(
            at_ms=round(rng.uniform(5.0, 25.0), 3),
            kind="drop",
            target="core",
            partition=rng.randrange(config.num_partitions),
            probability=round(rng.uniform(0.7, 0.95), 3),
            duration_ms=round(rng.uniform(50.0, 140.0), 3),
        )
        faults = tuple(sorted(plan.faults + (blackout,), key=lambda f: f.at_ms))
        return replace(plan, faults=faults)
    if op == "add-delay-storm":
        storm = FaultEvent(
            at_ms=round(rng.uniform(3.0, 25.0), 3),
            kind="delay",
            probability=round(rng.uniform(0.3, 0.6), 3),
            extra_ms=round(rng.uniform(4.0, 12.0), 3),
            duration_ms=round(rng.uniform(30.0, 80.0), 3),
        )
        faults = tuple(sorted(plan.faults + (storm,), key=lambda f: f.at_ms))
        return replace(plan, faults=faults)
    if op == "extend-crash":
        index = rng.choice(_extendable_crash_indices(plan))
        fault = plan.faults[index]
        longer = replace(
            fault,
            duration_ms=round(min(90.0, fault.duration_ms * rng.uniform(1.3, 2.0)), 3),
        )
        faults = tuple(longer if i == index else f for i, f in enumerate(plan.faults))
        return replace(plan, faults=faults)
    if op == "long-crash":
        # One solitary outage stretched far past the reliable channel's
        # whole retransmission budget (12 retransmits with backoff,
        # roughly 1.3 s): the dead replica's peers legally abandon their
        # links to it (``transport_retransmits_abandoned``,
        # ``transport_links_abandoned``) — the cap's designed purpose —
        # and the replica rejoins through state transfer when the chaos
        # runner restarts it.  Quorum is intact throughout (f = 1, one
        # solitary outage), so every oracle still holds.
        index = rng.choice(_extendable_crash_indices(plan))
        fault = plan.faults[index]
        longer = replace(
            fault, duration_ms=round(rng.uniform(1500.0, 2500.0), 3)
        )
        faults = tuple(longer if i == index else f for i, f in enumerate(plan.faults))
        return replace(plan, faults=faults)
    if op == "reroll-system-seed":
        return replace(
            plan, config=replace(config, system_seed=rng.randrange(1, 1 << 16))
        )
    raise ValueError(f"unknown mutation op {op!r}")


def mutate_plan(base: ChaosPlan, rng: random.Random, new_seed: int) -> ChaosPlan:
    """Derive a new plan from ``base`` by 1–2 legality-preserving mutations.

    The mutant takes ``new_seed`` as its identity (artifact names, summary
    lines); determinism still rests on the *plan*, exactly as for shrunk
    plans — the seed field is provenance, not an input to the runner.
    """
    mutant = replace(base, seed=new_seed)
    for _ in range(rng.randint(1, 2)):
        ops = _applicable_ops(mutant)
        mutant = _apply_op(mutant, rng.choice(ops), rng)
    return mutant
