"""Intentionally injectable bugs — the chaos engine's self-test.

A fuzzer whose oracles never fire is indistinguishable from a fuzzer whose
oracles are broken.  Each entry here re-introduces one *historical or
hypothetical* defect behind a context manager, so tests (and the CLI's
``--inject-bug``) can verify that the oracle suite actually catches it and
that the shrinker reduces the failing schedule to a small reproduction.

The bugs are deliberately real ones from this codebase's lineage:

* ``no-dependency-repair`` — disable the round-2 dependency check entirely:
  clients accept their round-1 snapshots as-is, resurrecting the torn-read
  anomaly of the paper's Figure 1 (and the shape of the round-2 repair race
  PR 4 fixed).  Caught by the serializability / atomic-visibility oracles.
* ``skip-crash-restarts`` — the runner "forgets" to restart crashed
  replicas at quiescence, modelling an operator that never rejoins failed
  nodes.  Caught by the liveness and recovery-convergence oracles.
* ``drop-commit-replies`` — leaders silently drop every second commit
  reply.  State stays perfectly consistent, so only the causal-trace
  completeness oracle (repro.obs) can see the loss.
* ``ack-without-delivery`` — the reliable channel acknowledges every
  intra-cluster message but hands none of them to the protocol layer: the
  worst failure mode a transport can have, because senders believe the
  network is healthy while consensus is completely dark.  Caught by the
  quiescent-liveness oracle (no probe commit can succeed).
* ``leader-dies-after-certify`` — leaders crash the moment their cluster
  certifies a client-visible outcome, and the f+1 ``ReplicaCommitReply``
  acceptance path (the fix for exactly this crash window) is disabled;
  with restarts suppressed, caught by the quiescent-liveness oracle.
* ``stale-edge-reads`` — the edge cache's lag/TTL refresh wedges and the
  client's freshness clause regresses to a no-op while the config declares
  a 25ms staleness bound: every read stays authentic and consistent (all
  correctness oracles green) but arbitrarily old; only the
  ``edge-freshness-bound`` oracle sees the unenforced SLO.
* ``verify-cache-wedged`` — every signature-verify cache lookup misses and
  nothing is ever stored: verification still *succeeds* (the registry
  re-verifies from scratch), so every correctness oracle stays green, but
  each miss burns ``CostConfig.verify_cache_miss_penalty_ms`` of replica
  occupancy.  Only the phase-latency anomaly oracle — comparing commit
  latency and phase attribution against the fault-free twin outside fault
  windows — can see it.
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Dict


@dataclass(frozen=True)
class InjectedBug:
    """One injectable defect: a patch plus runner-behaviour flags."""

    name: str
    description: str
    #: Factory for the patch context manager (no-op for runner-level bugs).
    patch: Callable[[], ContextManager[None]] = field(
        default=lambda: contextlib.nullcontext()
    )
    #: Runner-level flag: skip restarting crashed replicas.
    skip_restarts: bool = False


@contextlib.contextmanager
def _no_dependency_repair():
    """Make every round-1 snapshot look dependency-free to the client."""
    import repro.core.client as client_module

    original = client_module.find_unsatisfied_dependencies
    client_module.find_unsatisfied_dependencies = lambda snapshots: {}
    try:
        yield
    finally:
        client_module.find_unsatisfied_dependencies = original


@contextlib.contextmanager
def _drop_commit_replies():
    """Leaders silently drop every second commit reply they would send.

    The classic lost-reply bug: the transaction commits (state is correct,
    so no serializability oracle can see it) but the client never hears
    back.  Only the causal-trace completeness oracle catches it — a trace
    whose ``CommitRequest`` reached a healthy leader must contain a
    ``CommitReply``.
    """
    from repro.core.leader import LeaderRole

    original = LeaderRole._send_commit_reply
    state = {"count": 0}

    def dropping(self, client, reply):
        state["count"] += 1
        if state["count"] % 2 == 0:
            return  # swallow the reply; the client waits forever
        original(self, client, reply)

    LeaderRole._send_commit_reply = dropping
    try:
        yield
    finally:
        LeaderRole._send_commit_reply = original


@contextlib.contextmanager
def _ack_without_delivery():
    """The reliable channel acks envelopes it never delivers.

    The receiver-side bookkeeping (watermarks, dedup state, ack timers) runs
    exactly as shipped — so cumulative acks flow back and the *sender*
    retires every message as successfully delivered — but the unwrapped
    payload is swallowed instead of being handed to the node.  Acks
    themselves still work, which is what makes the bug vicious: no
    retransmission cap is ever hit, no timer escalates, and the cluster
    simply never hears its own consensus traffic.
    """
    from repro.simnet.reliable import ReliableEnvelope, ReliableTransport

    original = ReliableTransport.on_receive

    def lying(self, node, src, message):
        result = original(self, node, src, message)
        if isinstance(message, ReliableEnvelope):
            return None  # acked above, never delivered
        return result

    ReliableTransport.on_receive = lying
    try:
        yield
    finally:
        ReliableTransport.on_receive = original


@contextlib.contextmanager
def _leader_dies_after_certify():
    """Leaders crash the instant their cluster certifies a client outcome.

    The historical single point of failure of the reply protocol: the batch
    is certified and applied by every follower, but the one node that
    answers clients dies before any :class:`CommitReply` leaves it.  The
    f+1 ``ReplicaCommitReply`` quorum path is disabled alongside — that fix
    is exactly what makes this crash survivable — so clients stall until
    their commit timeout.  Combined with ``skip_restarts`` the cluster
    bleeds leaders at every client-visible batch; the quiescent-liveness
    oracle sees still-crashed replicas and failed probe commits.
    """
    from repro.core.client import TransEdgeClient
    from repro.core.replica import PartitionReplica

    original_deliver = PartitionReplica.deliver
    original_handler = TransEdgeClient._on_replica_commit_reply

    def dying(self, seq, proposal, certificate):
        batch = proposal
        outcomes = bool(batch.local_txns) or any(
            record.coordinator == self.partition for record in batch.committed
        )
        if self.is_leader and outcomes and not self.crashed:
            self.crashed = True
            self.env.obs.event(
                str(self.node_id),
                "replica-crash",
                "error",
                {"partition": int(self.partition)},
            )
            return  # dies with the batch applied nowhere on this node
        original_deliver(self, seq, proposal, certificate)

    def deaf(self, message, src):
        return None  # pre-fix clients: replica outcome reports don't exist

    PartitionReplica.deliver = dying
    TransEdgeClient._on_replica_commit_reply = deaf
    try:
        yield
    finally:
        PartitionReplica.deliver = original_deliver
        TransEdgeClient._on_replica_commit_reply = original_handler


@contextlib.contextmanager
def _stale_edge_reads():
    """Edge refresh wedges and the client freshness clause regresses away.

    Three coordinated regressions that together unenforce a declared
    staleness SLO while staying correctness-green:

    * the scenario config *declares* a 25ms client staleness bound on every
      edge-enabled plan (the SLO the run is supposed to enforce);
    * the client's :func:`~repro.core.readonly.verify_snapshot` binding
      drops its clock argument, so the freshness clause never fires and
      arbitrarily old (but authentic) sections are accepted;
    * the edge cache's usability gate stops dropping contexts for header
      lag or TTL, so a proxy serves its first admitted context forever —
      header age grows with simulated time on every cache hit.

    Values, proofs and CD-vector repair are all untouched: stale snapshots
    are still *consistent* snapshots, so serializability, read-values and
    atomic visibility stay green.  Only the ``edge-freshness-bound`` oracle
    — re-checking each accepted section's recorded header age against the
    configured bound — can see the violation.
    """
    import repro.core.client as client_module
    from repro.chaos.plan import ConfigPoint
    from repro.edge.cache import EdgeCache

    original_verify = client_module.verify_snapshot
    original_usable = EdgeCache._usable_context
    original_expand = ConfigPoint.to_system_config

    def unbounded_verify(snapshot, registry, topology, config, now_ms=None):
        return original_verify(snapshot, registry, topology, config)

    def pinned_usable(self, partition, now_ms):
        return self._contexts.get(partition)

    def declaring_expand(self):
        if self.edge_enabled and self.client_staleness_bound_ms is None:
            self = dataclasses.replace(self, client_staleness_bound_ms=25.0)
        return original_expand(self)

    client_module.verify_snapshot = unbounded_verify
    EdgeCache._usable_context = pinned_usable
    ConfigPoint.to_system_config = declaring_expand
    try:
        yield
    finally:
        client_module.verify_snapshot = original_verify
        EdgeCache._usable_context = original_usable
        ConfigPoint.to_system_config = original_expand


@contextlib.contextmanager
def _verify_cache_wedged():
    """Every verify-cache lookup misses; stores are silently discarded.

    The performance-bug archetype: a cache whose eviction (or key
    derivation) regressed into pure overhead.  Verification results are
    still correct — the registry simply recomputes each one — so state,
    histories and fingerprinted counters other than the hit/miss tallies
    look healthy.  What gives it away is time: with
    ``CostConfig.verify_cache_miss_penalty_ms`` armed (chaos plans set it),
    every re-verification charges occupancy, inflating the verify phase and
    end-to-end commit latency that the phase-latency anomaly oracle compares
    against the fault-free twin.
    """
    from repro.crypto.signatures import VerifyCache

    original_lookup = VerifyCache.lookup
    original_store = VerifyCache.store

    def always_miss(self, key):
        self.misses += 1
        return None

    def never_store(self, key, value):
        return None

    VerifyCache.lookup = always_miss
    VerifyCache.store = never_store
    try:
        yield
    finally:
        VerifyCache.lookup = original_lookup
        VerifyCache.store = original_store


BUGS: Dict[str, InjectedBug] = {
    bug.name: bug
    for bug in (
        InjectedBug(
            name="no-dependency-repair",
            description=(
                "clients skip the CD-vector dependency check and accept torn "
                "round-1 snapshots (Figure 1 anomaly)"
            ),
            patch=_no_dependency_repair,
        ),
        InjectedBug(
            name="skip-crash-restarts",
            description="crashed replicas are never restarted at quiescence",
            skip_restarts=True,
        ),
        InjectedBug(
            name="drop-commit-replies",
            description=(
                "leaders silently drop every second commit reply (committed "
                "state is consistent; only trace completeness sees the loss)"
            ),
            patch=_drop_commit_replies,
        ),
        InjectedBug(
            name="leader-dies-after-certify",
            description=(
                "leaders crash right after certifying a client-visible batch "
                "and clients cannot accept f+1 replica outcome reports; with "
                "restarts suppressed the cluster bleeds leaders and liveness "
                "fails"
            ),
            patch=_leader_dies_after_certify,
            skip_restarts=True,
        ),
        InjectedBug(
            name="verify-cache-wedged",
            description=(
                "every signature-verify cache lookup misses and stores are "
                "discarded: correctness stays green while re-verification "
                "burns replica occupancy; only the phase-latency anomaly "
                "oracle (vs the fault-free twin) sees the slowdown"
            ),
            patch=_verify_cache_wedged,
        ),
        InjectedBug(
            name="stale-edge-reads",
            description=(
                "the edge cache stops refreshing for header lag or TTL and "
                "the client freshness clause goes dead while the config "
                "declares a 25ms staleness bound: stale-but-consistent edge "
                "reads keep every correctness oracle green; only the "
                "edge-freshness-bound oracle sees the unenforced SLO"
            ),
            patch=_stale_edge_reads,
        ),
        InjectedBug(
            name="ack-without-delivery",
            description=(
                "the reliable channel acknowledges intra-cluster messages it "
                "never delivers (senders see a healthy network; consensus "
                "goes dark and quiescent liveness fails)"
            ),
            patch=_ack_without_delivery,
        ),
    )
}


def get_bug(name: str) -> InjectedBug:
    try:
        return BUGS[name]
    except KeyError:
        known = ", ".join(sorted(BUGS))
        raise ValueError(f"unknown injected bug {name!r}; expected one of {known}")
