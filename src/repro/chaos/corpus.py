"""The persisted chaos corpus: interesting plans with determinism digests.

The corpus is a directory (``.chaos-corpus/`` by convention) of one JSON
file per entry — the full replayable plan, the coverage signature that
earned it admission, and the run's fingerprint and trace digest.  The
digests make every entry a standing *determinism oracle*: replaying the
plan on any machine must reproduce both byte-for-byte, so corpus replay
(the per-PR smoke job) catches cross-process nondeterminism the moment it
creeps in, exactly like the pinned-seed determinism tests but over the
fleet's accumulated rare-path scenarios.  The nightly coverage job grows
the corpus by admitting mutants that exhibit novel features; admission is
by plan identity (a digest of the canonical plan encoding), so re-running
a session never duplicates entries.

``metadata.json`` (not an entry) carries fleet bookkeeping: the global
coverage map, a log of coverage sessions, and the latest
``python -m repro.lint --json`` summary the nightly job folded in.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chaos.plan import ChaosPlan
from repro.crypto.hashing import sha256_hex, stable_encode

#: Bumped when an entry field is added/renamed.
ENTRY_VERSION = 1

_ENTRY_PREFIX = "entry-"
_METADATA_FILE = "metadata.json"


def plan_id(plan: ChaosPlan) -> str:
    """Stable identity of a plan: digest of its canonical encoding."""
    return sha256_hex(stable_encode(plan.to_dict()))[:16]


@dataclass
class CorpusEntry:
    """One admitted plan plus the evidence that justified keeping it."""

    entry_id: str
    plan: ChaosPlan
    signature: Tuple[str, ...]
    fingerprint: str
    trace_digest: str
    #: Provenance: ``"seed:<n>"`` for uniform-sweep admissions, a parent
    #: entry id for mutants.
    parent: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "version": ENTRY_VERSION,
            "entry_id": self.entry_id,
            "plan": self.plan.to_dict(),
            "signature": list(self.signature),
            "fingerprint": self.fingerprint,
            "trace_digest": self.trace_digest,
            "parent": self.parent,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            entry_id=str(data["entry_id"]),
            plan=ChaosPlan.from_dict(data["plan"]),
            signature=tuple(data.get("signature") or ()),
            fingerprint=str(data.get("fingerprint", "")),
            trace_digest=str(data.get("trace_digest", "")),
            parent=data.get("parent"),
        )


class Corpus:
    """Directory-backed entry store (load-all on open, write-through adds)."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.entries: Dict[str, CorpusEntry] = {}
        self._load()

    def _entry_path(self, entry_id: str) -> str:
        return os.path.join(self.directory, f"{_ENTRY_PREFIX}{entry_id}.json")

    def _load(self) -> None:
        if not os.path.isdir(self.directory):
            return
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith(_ENTRY_PREFIX) and name.endswith(".json")):
                continue
            with open(os.path.join(self.directory, name), "r", encoding="utf-8") as handle:
                entry = CorpusEntry.from_dict(json.load(handle))
            self.entries[entry.entry_id] = entry

    def __len__(self) -> int:
        return len(self.entries)

    def ordered(self) -> List[CorpusEntry]:
        """Entries in stable (id) order — the iteration order everywhere."""
        return [self.entries[entry_id] for entry_id in sorted(self.entries)]

    def add(self, entry: CorpusEntry) -> bool:
        """Admit ``entry`` (no-op on a duplicate id); True when admitted."""
        if entry.entry_id in self.entries:
            return False
        os.makedirs(self.directory, exist_ok=True)
        self.entries[entry.entry_id] = entry
        with open(self._entry_path(entry.entry_id), "w", encoding="utf-8") as handle:
            json.dump(entry.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return True

    # -- metadata ----------------------------------------------------------

    def read_metadata(self) -> dict:
        path = os.path.join(self.directory, _METADATA_FILE)
        if not os.path.isfile(path):
            return {}
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def write_metadata(self, metadata: dict) -> str:
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(self.directory, _METADATA_FILE)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(metadata, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
