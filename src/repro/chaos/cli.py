"""Command-line interface: ``python -m repro.chaos``.

Fuzzing loop, bug self-tests and artifact replay::

    python -m repro.chaos --seeds 25                   # seeds 0..24, serial
    python -m repro.chaos --fleet --workers 4 --seeds 25   # same sweep, pooled
    python -m repro.chaos --seed 7                     # one seed
    python -m repro.chaos --seeds 10 --inject-bug no-dependency-repair
    python -m repro.chaos --replay chaos-repro-7.json  # re-run an artifact
    python -m repro.chaos --list-bugs

Corpus modes (:mod:`repro.chaos.fleet`)::

    python -m repro.chaos --corpus-replay --workers 4      # determinism gate
    python -m repro.chaos --coverage-runs 16 --workers 4   # grow the corpus

``--corpus-replay`` re-runs every ``.chaos-corpus/`` entry and fails on any
fingerprint/trace-digest drift; ``--coverage-runs N`` runs a coverage-guided
mutation session (seeding the corpus from the uniform sweep first when it is
empty) and records the session — plus an optional ``--lint-metadata`` JSON
summary from ``python -m repro.lint --json`` — in the corpus metadata.

Exit code 0 when every requested run passed all oracles, 1 otherwise.  On a
failure the schedule is shrunk (disable with ``--no-shrink``) and written as
``chaos-repro-<seed>.json`` next to ``--artifact-dir``; the artifact records
the minimal plan, the oracle failures, the injected bug (if any), the exact
replay command, and the run's black box — the flight recorder's last events
plus the failing transactions' full causal traces (:mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.chaos.bugs import BUGS, get_bug
from repro.chaos.corpus import Corpus
from repro.chaos.fleet import (
    FleetResult,
    FleetSettings,
    coverage_session,
    replay_corpus,
    run_seed_fleet,
    seed_corpus,
)
from repro.chaos.plan import ChaosPlan, plan_from_seed
from repro.chaos.runner import ChaosReport, run_plan
from repro.chaos.shrink import shrink_plan

ARTIFACT_VERSION = 3  # v3: health summary + fault windows (v2 added black box)


def artifact_path(directory: str, seed: int) -> str:
    return os.path.join(directory, f"chaos-repro-{seed}.json")


def write_artifact(
    directory: str,
    plan: ChaosPlan,
    report: ChaosReport,
    bug_name: Optional[str],
    shrink_runs: int,
) -> str:
    os.makedirs(directory, exist_ok=True)
    path = artifact_path(directory, plan.seed)
    filename = os.path.basename(path)
    document = {
        "version": ARTIFACT_VERSION,
        "seed": plan.seed,
        "bug": bug_name,
        "failures": [
            {"oracle": failure.oracle, "description": failure.description}
            for failure in report.failures
        ],
        "fingerprint": report.fingerprint(),
        "shrink_runs": shrink_runs,
        "fault_events": len(plan.faults),
        "replay": f"python -m repro.chaos --replay {filename}",
        "plan": plan.to_dict(),
        # Black box (repro.obs): the flight recorder's tail and the failing
        # transactions' full causal traces, as captured at failure time.
        "flight_recorder": report.flight_recorder,
        "failing_traces": report.failing_traces,
        # Monitoring (repro.obs.monitor): terminal per-node health and the
        # sim-time fault windows the perf oracle excluded.
        "health": report.health,
        "fault_windows": [list(window) for window in report.fault_windows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if "plan" not in document:
        raise ValueError(f"{path} is not a chaos repro artifact (no plan)")
    return document


def _print_failures(report: ChaosReport) -> None:
    for failure in report.failures:
        print(f"  [{failure.oracle}] {failure.description}")


def _print_fleet_failures(result: FleetResult) -> None:
    for oracle, description in result.failures:
        print(f"  [{oracle}] {description}")
    if result.shrunk_faults is not None:
        print(
            f"  shrunk to {result.shrunk_faults} fault event(s), "
            f"{result.shrunk_segments} segment(s) in {result.shrink_runs} runs"
        )
    if result.artifact:
        print(f"  wrote {result.artifact}")
        print(f"  replay: python -m repro.chaos --replay {result.artifact}")


def _fleet_settings(args: argparse.Namespace) -> FleetSettings:
    return FleetSettings(
        bug_name=args.inject_bug,
        max_events=args.max_events,
        monitor=not args.no_monitor,
        perf_oracle=not args.no_monitor,
        shrink=not args.no_shrink,
        max_shrink_runs=args.max_shrink_runs,
        artifact_dir=args.artifact_dir,
    )


def _run_corpus_replay(args: argparse.Namespace) -> int:
    corpus = Corpus(args.corpus)
    if not corpus.entries:
        print(f"corpus {args.corpus} is empty: nothing to replay")
        return 0
    results, drift = replay_corpus(corpus, _fleet_settings(args), args.workers)
    failing = [result for result in results if not result.ok]
    for result in results:
        status = "ok  " if result.ok else "FAIL"
        print(f"{status} {result.summary}")
    for entry in drift:
        print(
            f"DRIFT {entry.entry_id}: {entry.field_name} "
            f"{entry.recorded[:16]}… -> {entry.observed[:16]}…"
        )
    print(
        f"corpus replay: {len(results)} entr"
        + ("y" if len(results) == 1 else "ies")
        + f", {len(failing)} failing, {len(drift)} digest drift(s)"
    )
    return 1 if failing or drift else 0


def _run_coverage(args: argparse.Namespace, seeds: List[int]) -> int:
    corpus = Corpus(args.corpus)
    settings = _fleet_settings(args)
    sweep_failures = 0
    if not corpus.entries:
        print(f"corpus {args.corpus} is empty: seeding from {len(seeds)} uniform seeds")
        results = run_seed_fleet(seeds, settings, args.workers)
        for result in results:
            if not result.ok:
                sweep_failures += 1
                print(f"FAIL {result.summary}")
                _print_fleet_failures(result)
        admitted = seed_corpus(corpus, results)
        print(f"  admitted {len(admitted)} of {len(results)} sweep runs")
    outcome = coverage_session(
        corpus,
        args.session_seed,
        args.coverage_runs,
        settings,
        workers=args.workers,
        log=print,
    )
    for result in outcome.failing:
        _print_fleet_failures(result)
    print(
        f"coverage session {args.session_seed}: {outcome.runs} mutant runs, "
        f"{len(outcome.admitted)} admitted, "
        f"{len(sorted(set(outcome.novel_features)))} novel feature(s), "
        f"{len(outcome.failing)} failing"
    )
    for feature in sorted(set(outcome.novel_features)):
        print(f"  novel: {feature}")
    metadata = corpus.read_metadata()
    coverage_counts: dict = {}
    for entry in corpus.ordered():
        for feature in entry.signature:
            coverage_counts[feature] = coverage_counts.get(feature, 0) + 1
    metadata["coverage"] = coverage_counts
    metadata.setdefault("sessions", []).append(outcome.to_dict())
    if args.lint_metadata:
        with open(args.lint_metadata, "r", encoding="utf-8") as handle:
            lint_document = json.load(handle)
        metadata["lint"] = {
            "version": lint_document.get("version"),
            "counts": lint_document.get("counts", {}),
        }
    corpus.write_metadata(metadata)
    return 1 if outcome.failing or sweep_failures else 0


def _run_fleet_sweep(args: argparse.Namespace, seeds: List[int]) -> int:
    settings = _fleet_settings(args)
    started = time.time()
    results = run_seed_fleet(seeds, settings, args.workers)
    elapsed = time.time() - started
    failures = 0
    for result in results:
        print(
            f"{result.summary}  "
            f"[fp {result.fingerprint[:16]} digest {result.trace_digest[:16]}]"
        )
        if not result.ok:
            failures += 1
            _print_fleet_failures(result)
    print(
        f"fleet: {len(results)} seed(s) on {args.workers} worker(s) "
        f"in {elapsed:.1f}s wall"
    )
    if failures:
        print(f"{failures}/{len(results)} seed(s) failed")
        return 1
    print(f"all {len(results)} seed(s) passed every oracle")
    return 0


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.chaos",
        description="Seeded chaos fuzzing with invariant oracles and shrinking.",
    )
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="fuzz seeds 0..N-1")
    parser.add_argument("--seed", type=int, action="append", default=None,
                        metavar="S", help="fuzz one specific seed (repeatable)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="re-run the plan stored in a chaos-repro artifact")
    parser.add_argument("--inject-bug", metavar="NAME", default=None,
                        help="run with an intentionally injected bug (self-test)")
    parser.add_argument("--list-bugs", action="store_true",
                        help="list injectable bugs and exit")
    parser.add_argument("--artifact-dir", metavar="DIR", default=".",
                        help="where to write chaos-repro-<seed>.json (default: .)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip schedule shrinking on failure")
    parser.add_argument("--no-monitor", action="store_true",
                        help="disable the monitoring layer and the "
                             "phase-latency oracle (neutrality check: "
                             "fingerprints must not change)")
    parser.add_argument("--max-events", type=int, default=4_000_000,
                        help="per-run simulator event budget")
    parser.add_argument("--max-shrink-runs", type=int, default=80,
                        help="re-run budget for the shrinker")
    parser.add_argument("--verbose", action="store_true",
                        help="print shrink progress")
    parser.add_argument("--fleet", action="store_true",
                        help="run the sweep through the worker-pool fleet "
                             "(fingerprints identical to the serial sweep)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fleet worker processes (default: 1)")
    parser.add_argument("--corpus", metavar="DIR", default=".chaos-corpus",
                        help="coverage corpus directory (default: .chaos-corpus)")
    parser.add_argument("--corpus-replay", action="store_true",
                        help="re-run every corpus entry and fail on "
                             "fingerprint/trace-digest drift")
    parser.add_argument("--coverage-runs", type=int, default=None, metavar="N",
                        help="run a coverage-guided session of N mutant runs "
                             "(seeds the corpus from the uniform sweep first "
                             "when it is empty)")
    parser.add_argument("--session-seed", type=int, default=0, metavar="S",
                        help="RNG seed of the coverage session (default: 0)")
    parser.add_argument("--lint-metadata", metavar="PATH", default=None,
                        help="repro.lint --json output to fold into the "
                             "corpus metadata after a coverage session")
    args = parser.parse_args(argv)

    if args.list_bugs:
        print("injectable bugs (--inject-bug NAME):")
        for name in sorted(BUGS):
            print(f"  {name}: {BUGS[name].description}")
        return 0

    bug = get_bug(args.inject_bug) if args.inject_bug else None

    if args.replay:
        document = load_artifact(args.replay)
        plan = ChaosPlan.from_dict(document["plan"])
        recorded_bug = document.get("bug")
        if args.inject_bug and recorded_bug and args.inject_bug != recorded_bug:
            parser.error(
                f"--inject-bug {args.inject_bug} conflicts with the bug recorded "
                f"in {args.replay} ({recorded_bug}); drop the flag to replay the "
                f"artifact as captured"
            )
        active_bug = recorded_bug or args.inject_bug
        replay_bug = get_bug(active_bug) if active_bug else None
        started = time.time()
        report = run_plan(
            plan,
            bug=replay_bug,
            max_events=args.max_events,
            monitor=not args.no_monitor,
            perf_oracle=not args.no_monitor,
        )
        elapsed = time.time() - started
        print(
            report.summary_line()
            + f"  [{elapsed:.1f}s wall, replay, bug: {active_bug or 'none'}]"
        )
        if report.failures:
            _print_failures(report)
            recorded = {entry["oracle"] for entry in document.get("failures", [])}
            live = {failure.oracle for failure in report.failures}
            if recorded and not (recorded & live):
                print("note: failure reproduced under different oracles than recorded")
            return 1
        print("replay passed all oracles (the recorded failure no longer reproduces)")
        return 0

    if args.corpus_replay:
        return _run_corpus_replay(args)

    seeds: List[int] = []
    if args.seed:
        seeds.extend(args.seed)
    if args.seeds is not None:
        seeds.extend(range(args.seeds))

    if args.coverage_runs is not None:
        # The seed list only matters when the corpus must be seeded first;
        # the uniform 25-seed sweep is the documented default base.
        return _run_coverage(args, seeds or list(range(25)))

    if not seeds:
        parser.error("nothing to do: pass --seeds N, --seed S or --replay PATH")

    if args.fleet or args.workers > 1:
        return _run_fleet_sweep(args, seeds)

    failures = 0
    for seed in seeds:
        plan = plan_from_seed(seed)
        started = time.time()
        report = run_plan(
            plan,
            bug=bug,
            max_events=args.max_events,
            monitor=not args.no_monitor,
            perf_oracle=not args.no_monitor,
        )
        elapsed = time.time() - started
        print(report.summary_line() + f"  [{elapsed:.1f}s wall]")
        if report.ok:
            continue
        failures += 1
        _print_failures(report)
        shrink_runs = 0
        if not args.no_shrink:
            log = print if args.verbose else None
            result = shrink_plan(
                plan,
                report,
                bug=bug,
                max_runs=args.max_shrink_runs,
                max_events=args.max_events,
                monitor=not args.no_monitor,
                perf_oracle=not args.no_monitor,
                log=log,
            )
            plan, report, shrink_runs = result.plan, result.report, result.runs
            print(
                f"  shrunk to {len(plan.faults)} fault event(s), "
                f"{len(plan.segments)} segment(s) in {result.runs} runs"
            )
        path = write_artifact(
            args.artifact_dir, plan, report, args.inject_bug, shrink_runs
        )
        print(f"  wrote {path}")
        print(f"  replay: python -m repro.chaos --replay {path}")

    if failures:
        print(f"{failures}/{len(seeds)} seed(s) failed")
        return 1
    print(f"all {len(seeds)} seed(s) passed every oracle")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
