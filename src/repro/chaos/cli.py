"""Command-line interface: ``python -m repro.chaos``.

Fuzzing loop, bug self-tests and artifact replay::

    python -m repro.chaos --seeds 25                   # seeds 0..24
    python -m repro.chaos --seed 7                     # one seed
    python -m repro.chaos --seeds 10 --inject-bug no-dependency-repair
    python -m repro.chaos --replay chaos-repro-7.json  # re-run an artifact
    python -m repro.chaos --list-bugs

Exit code 0 when every requested run passed all oracles, 1 otherwise.  On a
failure the schedule is shrunk (disable with ``--no-shrink``) and written as
``chaos-repro-<seed>.json`` next to ``--artifact-dir``; the artifact records
the minimal plan, the oracle failures, the injected bug (if any), the exact
replay command, and the run's black box — the flight recorder's last events
plus the failing transactions' full causal traces (:mod:`repro.obs`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.chaos.bugs import BUGS, get_bug
from repro.chaos.plan import ChaosPlan, plan_from_seed
from repro.chaos.runner import ChaosReport, run_plan
from repro.chaos.shrink import shrink_plan

ARTIFACT_VERSION = 3  # v3: health summary + fault windows (v2 added black box)


def artifact_path(directory: str, seed: int) -> str:
    return os.path.join(directory, f"chaos-repro-{seed}.json")


def write_artifact(
    directory: str,
    plan: ChaosPlan,
    report: ChaosReport,
    bug_name: Optional[str],
    shrink_runs: int,
) -> str:
    os.makedirs(directory, exist_ok=True)
    path = artifact_path(directory, plan.seed)
    filename = os.path.basename(path)
    document = {
        "version": ARTIFACT_VERSION,
        "seed": plan.seed,
        "bug": bug_name,
        "failures": [
            {"oracle": failure.oracle, "description": failure.description}
            for failure in report.failures
        ],
        "fingerprint": report.fingerprint(),
        "shrink_runs": shrink_runs,
        "fault_events": len(plan.faults),
        "replay": f"python -m repro.chaos --replay {filename}",
        "plan": plan.to_dict(),
        # Black box (repro.obs): the flight recorder's tail and the failing
        # transactions' full causal traces, as captured at failure time.
        "flight_recorder": report.flight_recorder,
        "failing_traces": report.failing_traces,
        # Monitoring (repro.obs.monitor): terminal per-node health and the
        # sim-time fault windows the perf oracle excluded.
        "health": report.health,
        "fault_windows": [list(window) for window in report.fault_windows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if "plan" not in document:
        raise ValueError(f"{path} is not a chaos repro artifact (no plan)")
    return document


def _print_failures(report: ChaosReport) -> None:
    for failure in report.failures:
        print(f"  [{failure.oracle}] {failure.description}")


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.chaos",
        description="Seeded chaos fuzzing with invariant oracles and shrinking.",
    )
    parser.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="fuzz seeds 0..N-1")
    parser.add_argument("--seed", type=int, action="append", default=None,
                        metavar="S", help="fuzz one specific seed (repeatable)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="re-run the plan stored in a chaos-repro artifact")
    parser.add_argument("--inject-bug", metavar="NAME", default=None,
                        help="run with an intentionally injected bug (self-test)")
    parser.add_argument("--list-bugs", action="store_true",
                        help="list injectable bugs and exit")
    parser.add_argument("--artifact-dir", metavar="DIR", default=".",
                        help="where to write chaos-repro-<seed>.json (default: .)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip schedule shrinking on failure")
    parser.add_argument("--no-monitor", action="store_true",
                        help="disable the monitoring layer and the "
                             "phase-latency oracle (neutrality check: "
                             "fingerprints must not change)")
    parser.add_argument("--max-events", type=int, default=4_000_000,
                        help="per-run simulator event budget")
    parser.add_argument("--max-shrink-runs", type=int, default=80,
                        help="re-run budget for the shrinker")
    parser.add_argument("--verbose", action="store_true",
                        help="print shrink progress")
    args = parser.parse_args(argv)

    if args.list_bugs:
        print("injectable bugs (--inject-bug NAME):")
        for name in sorted(BUGS):
            print(f"  {name}: {BUGS[name].description}")
        return 0

    bug = get_bug(args.inject_bug) if args.inject_bug else None

    if args.replay:
        document = load_artifact(args.replay)
        plan = ChaosPlan.from_dict(document["plan"])
        replay_bug = get_bug(document["bug"]) if document.get("bug") else bug
        started = time.time()
        report = run_plan(
            plan,
            bug=replay_bug,
            max_events=args.max_events,
            monitor=not args.no_monitor,
            perf_oracle=not args.no_monitor,
        )
        elapsed = time.time() - started
        print(report.summary_line() + f"  [{elapsed:.1f}s wall, replay]")
        if report.failures:
            _print_failures(report)
            recorded = {entry["oracle"] for entry in document.get("failures", [])}
            live = {failure.oracle for failure in report.failures}
            if recorded and not (recorded & live):
                print("note: failure reproduced under different oracles than recorded")
            return 1
        print("replay passed all oracles (the recorded failure no longer reproduces)")
        return 0

    seeds: List[int] = []
    if args.seed:
        seeds.extend(args.seed)
    if args.seeds is not None:
        seeds.extend(range(args.seeds))
    if not seeds:
        parser.error("nothing to do: pass --seeds N, --seed S or --replay PATH")

    failures = 0
    for seed in seeds:
        plan = plan_from_seed(seed)
        started = time.time()
        report = run_plan(
            plan,
            bug=bug,
            max_events=args.max_events,
            monitor=not args.no_monitor,
            perf_oracle=not args.no_monitor,
        )
        elapsed = time.time() - started
        print(report.summary_line() + f"  [{elapsed:.1f}s wall]")
        if report.ok:
            continue
        failures += 1
        _print_failures(report)
        shrink_runs = 0
        if not args.no_shrink:
            log = print if args.verbose else None
            result = shrink_plan(
                plan,
                report,
                bug=bug,
                max_runs=args.max_shrink_runs,
                max_events=args.max_events,
                log=log,
            )
            plan, report, shrink_runs = result.plan, result.report, result.runs
            print(
                f"  shrunk to {len(plan.faults)} fault event(s), "
                f"{len(plan.segments)} segment(s) in {result.runs} runs"
            )
        path = write_artifact(
            args.artifact_dir, plan, report, args.inject_bug, shrink_runs
        )
        print(f"  wrote {path}")
        print(f"  replay: python -m repro.chaos --replay {path}")

    if failures:
        print(f"{failures}/{len(seeds)} seed(s) failed")
        return 1
    print(f"all {len(seeds)} seed(s) passed every oracle")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
