"""Plain-text rendering of experiment results as tables and series.

The benchmark harness regenerates every figure and table of the paper as
text: a *series* is one line per x-value (a figure), a *table* is a grid
(Table 1).  Keeping the rendering here keeps the experiment code focused on
what to measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_number(value: Union[Number, str], precision: int = 2) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.{precision}f}"


@dataclass
class Series:
    """One plotted line: a name and y-values indexed by x-values."""

    name: str
    points: Dict[Number, Number] = field(default_factory=dict)

    def add(self, x: Number, y: Number) -> None:
        self.points[x] = y

    def xs(self) -> List[Number]:
        return sorted(self.points)

    def ys(self) -> List[Number]:
        return [self.points[x] for x in self.xs()]


@dataclass
class FigureResult:
    """A reproduced figure: several series over a shared x-axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(f"no series named {name!r} in {self.figure_id}")

    def add_series(self, name: str) -> Series:
        series = Series(name=name)
        self.series.append(series)
        return series

    def to_dict(self) -> dict:
        """JSON-serialisable form (``repro.bench.run --json``)."""
        return {
            "kind": "figure",
            "id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {"name": series.name, "points": [[x, series.points[x]] for x in series.xs()]}
                for series in self.series
            ],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Render the figure as an aligned text table (x column + one per series)."""
        xs: List[Number] = sorted({x for series in self.series for x in series.points})
        header = [self.x_label] + [series.name for series in self.series]
        rows: List[List[str]] = [header]
        for x in xs:
            row = [format_number(x)]
            for series in self.series:
                value = series.points.get(x)
                row.append("-" if value is None else format_number(value))
            rows.append(row)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [f"{self.figure_id}: {self.title}  (y = {self.y_label})"]
        for index, row in enumerate(rows):
            line = "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            lines.append(line)
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class TableResult:
    """A reproduced table: named rows over named columns."""

    table_id: str
    title: str
    columns: Sequence[Number]
    rows: Dict[str, Dict[Number, Number]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def set(self, row: str, column: Number, value: Number) -> None:
        self.rows.setdefault(row, {})[column] = value

    def get(self, row: str, column: Number) -> Optional[Number]:
        return self.rows.get(row, {}).get(column)

    def to_dict(self) -> dict:
        """JSON-serialisable form (``repro.bench.run --json``)."""
        return {
            "kind": "table",
            "id": self.table_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": {
                name: [[column, cells[column]] for column in self.columns if column in cells]
                for name, cells in self.rows.items()
            },
            "notes": list(self.notes),
        }

    def render(self) -> str:
        header = [""] + [format_number(column) for column in self.columns]
        grid: List[List[str]] = [header]
        for row_name, cells in self.rows.items():
            row = [row_name]
            for column in self.columns:
                value = cells.get(column)
                row.append("-" if value is None else format_number(value))
            grid.append(row)
        widths = [max(len(row[i]) for row in grid) for i in range(len(header))]
        lines = [f"{self.table_id}: {self.title}"]
        for index, row in enumerate(grid):
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def render_mapping(title: str, mapping: Mapping[str, Number]) -> str:
    """Small helper for ad-hoc key/value result blocks."""
    width = max((len(key) for key in mapping), default=0)
    lines = [title]
    for key, value in mapping.items():
        lines.append(f"  {key.ljust(width)}  {format_number(value)}")
    return "\n".join(lines)
