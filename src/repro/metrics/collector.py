"""Metrics collection: latency distributions, throughput, abort rates.

The benchmark harness records one sample per finished transaction into a
:class:`MetricsCollector`, then asks for summaries.  Summaries are plain
dataclasses, easy to print as the rows/series of the paper's figures and
tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a latency sample set (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    min_ms: float
    max_ms: float

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, min_ms=0.0, max_ms=0.0)


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if fraction <= 0:
        return ordered[0]
    if fraction >= 1:
        return ordered[-1]
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def summarize_latencies(samples) -> LatencySummary:
    if isinstance(samples, LatencyReservoir):
        return samples.summary()
    if not samples:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(samples),
        mean_ms=sum(samples) / len(samples),
        p50_ms=percentile(samples, 0.50),
        p95_ms=percentile(samples, 0.95),
        p99_ms=percentile(samples, 0.99),
        min_ms=min(samples),
        max_ms=max(samples),
    )


class LatencyReservoir:
    """Bounded latency sample store with exact counts and list-like access.

    Unbounded per-transaction sample lists were the collector's one
    open-ended memory cost (a long chaos or bench run appends forever).
    The reservoir keeps raw samples verbatim up to ``cap`` and then
    converts, once, to a log-bucketed histogram: bucket boundaries grow by
    ``GROWTH`` per bucket, so a percentile read off bucket midpoints is
    within ±``(GROWTH-1)/2`` relative error (~2.5% at the default 1.05) of
    the exact value — the documented accuracy bound of
    :class:`LatencySummary` past the cap.  ``count``, ``total_ms``,
    ``min_ms`` and ``max_ms`` stay exact forever.

    The type is deliberately list-like (append/extend/len/iter/bool): every
    existing call site that treated the field as ``List[float]`` keeps
    working, with iteration past conversion yielding bucket midpoints
    repeated by bucket count.
    """

    DEFAULT_CAP = 8192
    GROWTH = 1.05

    __slots__ = ("cap", "count", "total_ms", "min_ms", "max_ms", "_raw", "_buckets", "_zeros")

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        self.cap = max(1, cap)
        self.count = 0
        self.total_ms = 0.0
        self.min_ms: Optional[float] = None
        self.max_ms: Optional[float] = None
        self._raw: Optional[List[float]] = []
        self._buckets: Dict[int, int] = {}
        self._zeros = 0

    @property
    def converted(self) -> bool:
        """True once the raw samples have collapsed into the histogram."""
        return self._raw is None

    def append(self, value: float) -> None:
        self.count += 1
        self.total_ms += value
        if self.min_ms is None or value < self.min_ms:
            self.min_ms = value
        if self.max_ms is None or value > self.max_ms:
            self.max_ms = value
        if self._raw is not None:
            self._raw.append(value)
            if len(self._raw) > self.cap:
                self._convert()
        else:
            self._add_to_bucket(value)

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def __iter__(self):
        if self._raw is not None:
            return iter(list(self._raw))
        return iter(self._midpoint_samples())

    def summary(self) -> LatencySummary:
        if self.count == 0:
            return LatencySummary.empty()
        if self._raw is not None:
            exact = summarize_latencies(list(self._raw))
            return exact
        return LatencySummary(
            count=self.count,
            mean_ms=self.total_ms / self.count,
            p50_ms=self._histogram_percentile(0.50),
            p95_ms=self._histogram_percentile(0.95),
            p99_ms=self._histogram_percentile(0.99),
            min_ms=self.min_ms,
            max_ms=self.max_ms,
        )

    # -- internals ---------------------------------------------------------

    def _convert(self) -> None:
        raw, self._raw = self._raw, None
        for value in raw:
            self._add_to_bucket(value)

    def _add_to_bucket(self, value: float) -> None:
        if value <= 0.0:
            self._zeros += 1
            return
        index = math.floor(math.log(value) / math.log(self.GROWTH))
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def _midpoint(self, index: int) -> float:
        # Geometric midpoint of [GROWTH^i, GROWTH^(i+1)), clamped into the
        # exact observed range so no synthetic sample exceeds min/max.
        value = self.GROWTH ** (index + 0.5)
        return min(max(value, self.min_ms), self.max_ms)

    def _midpoint_samples(self) -> List[float]:
        samples = [0.0] * self._zeros
        for index in sorted(self._buckets):
            samples.extend([self._midpoint(index)] * self._buckets[index])
        return samples

    def _histogram_percentile(self, fraction: float) -> float:
        rank = max(1, min(self.count, math.ceil(fraction * self.count)))
        seen = self._zeros
        if rank <= seen:
            return 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank <= seen:
                return self._midpoint(index)
        return self.max_ms if self.max_ms is not None else 0.0


@dataclass
class OperationMetrics:
    """Samples for one operation class (e.g. "read-only", "distributed-rw").

    Sample stores are bounded :class:`LatencyReservoir`\\ s (exact counts and
    totals always; percentiles within the reservoir's documented error once
    past its cap) so a long run cannot grow collector memory without bound.
    """

    latencies_ms: LatencyReservoir = field(default_factory=LatencyReservoir)
    committed: int = 0
    aborted: int = 0
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    round2_latencies_ms: LatencyReservoir = field(default_factory=LatencyReservoir)
    second_rounds: int = 0
    #: Read-only latency split by serving tier (repro.edge): reads whose
    #: round 1 came from an edge proxy vs. directly from the core clusters.
    edge_latencies_ms: LatencyReservoir = field(default_factory=LatencyReservoir)
    core_latencies_ms: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def edge_served(self) -> int:
        return len(self.edge_latencies_ms)

    @property
    def total(self) -> int:
        return self.committed + self.aborted

    def abort_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.aborted / self.total

    def summary(self) -> LatencySummary:
        return summarize_latencies(self.latencies_ms)


class MetricsCollector:
    """Accumulates per-operation metrics and computes throughput."""

    def __init__(self) -> None:
        self._operations: Dict[str, OperationMetrics] = {}
        self._events: Dict[str, int] = {}
        self._verify_caches: Dict[str, "tuple[int, int]"] = {}
        self._edge_caches: Dict[str, "tuple[int, int]"] = {}
        self._transport: Dict[str, int] = {}
        self._phases: Dict[str, LatencyReservoir] = {}
        self._start_ms: Optional[float] = None
        self._end_ms: Optional[float] = None

    # -- recording ------------------------------------------------------------

    def operation(self, name: str) -> OperationMetrics:
        return self._operations.setdefault(name, OperationMetrics())

    def record_commit(self, name: str, latency_ms: float) -> None:
        metrics = self.operation(name)
        metrics.committed += 1
        metrics.latencies_ms.append(latency_ms)

    def record_abort(self, name: str, latency_ms: float, reason: str = "") -> None:
        metrics = self.operation(name)
        metrics.aborted += 1
        metrics.latencies_ms.append(latency_ms)
        label = reason or "unspecified"
        metrics.abort_reasons[label] = metrics.abort_reasons.get(label, 0) + 1

    def record_read_only(
        self,
        name: str,
        latency_ms: float,
        rounds: int,
        round2_latency_ms: float = 0.0,
        served_by_edge: bool = False,
    ) -> None:
        metrics = self.operation(name)
        metrics.committed += 1
        metrics.latencies_ms.append(latency_ms)
        if served_by_edge:
            metrics.edge_latencies_ms.append(latency_ms)
        else:
            metrics.core_latencies_ms.append(latency_ms)
        if rounds >= 2:
            metrics.second_rounds += 1
            metrics.round2_latencies_ms.append(round2_latency_ms)

    def record_event(self, name: str, count: int = 1) -> None:
        """Count a protocol event (checkpoint stabilised, replica recovered, ...).

        Events are plain named counters; the recovery experiment (Figure 16)
        accumulates checkpoint/recovery activity here and reports the totals
        in its result notes.
        """
        self._events[name] = self._events.get(name, 0) + count

    def event_count(self, name: str) -> int:
        return self._events.get(name, 0)

    def events(self) -> Dict[str, int]:
        return dict(self._events)

    def record_phase_sample(self, phase: str, latency_ms: float) -> None:
        """Record one transaction's attributed time in ``phase``.

        Fed from the causal tracer's per-trace phase breakdowns
        (:func:`repro.obs.attribution.phase_breakdown`); summaries become the
        phase-latency tables of traced bench runs.
        """
        self._phases.setdefault(phase, LatencyReservoir()).append(latency_ms)

    def phase_summaries(self) -> Dict[str, LatencySummary]:
        """Per-phase latency summaries, in recording order."""
        return {phase: reservoir.summary() for phase, reservoir in self._phases.items()}

    def record_cache_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Feed a :meth:`TransEdgeSystem.cache_snapshot` into the collector.

        One call replaces the per-node ``record_verify_cache`` /
        ``record_edge_cache`` loops the experiments used to carry — the
        snapshot is the single source for all cache accounting.
        """
        for section in ("verify_replicas", "verify_clients"):
            for node, entry in snapshot.get(section, {}).items():
                self.record_verify_cache(node, entry["hits"], entry["misses"])
        for proxy, entry in snapshot.get("edge", {}).items():
            self.record_edge_cache(proxy, entry["hits"], entry["misses"])
        for name, value in snapshot.get("transport", {}).items():
            self._transport[name] = int(value)

    def record_verify_cache(self, node: str, hits: int, misses: int) -> None:
        """Record one node's signature verify-cache counters.

        Caches are per node (``PerfConfig.verify_cache_size`` sizes each), so
        the collector keeps them per node too; re-recording a node overwrites
        its entry (counters are cumulative on the node).
        """
        self._verify_caches[node] = (hits, misses)

    def verify_cache_stats(self) -> Dict[str, "tuple[int, int]"]:
        """Per-node verify-cache ``(hits, misses)`` recorded so far."""
        return dict(self._verify_caches)

    def verify_cache_totals(self) -> "tuple[int, int]":
        """Deployment-wide ``(hits, misses)`` summed over recorded nodes."""
        hits = sum(h for h, _ in self._verify_caches.values())
        misses = sum(m for _, m in self._verify_caches.values())
        return hits, misses

    def transport_counters(self) -> Dict[str, int]:
        """Reliable-channel counters from the last recorded cache snapshot.

        Empty when the reliable channel is disabled (the snapshot's
        ``transport`` section is empty then), so callers can gate their
        bench notes on truthiness.
        """
        return dict(self._transport)

    def record_edge_cache(self, proxy: str, hits: int, misses: int) -> None:
        """Record one edge proxy's cache counters (cumulative; overwrites)."""
        self._edge_caches[proxy] = (hits, misses)

    def edge_cache_stats(self) -> Dict[str, "tuple[int, int]"]:
        """Per-proxy edge-cache ``(hits, misses)`` recorded so far."""
        return dict(self._edge_caches)

    def edge_cache_totals(self) -> "tuple[int, int]":
        """Deployment-wide edge-cache ``(hits, misses)``."""
        hits = sum(h for h, _ in self._edge_caches.values())
        misses = sum(m for _, m in self._edge_caches.values())
        return hits, misses

    def mark_start(self, now_ms: float) -> None:
        if self._start_ms is None or now_ms < self._start_ms:
            self._start_ms = now_ms

    def mark_end(self, now_ms: float) -> None:
        if self._end_ms is None or now_ms > self._end_ms:
            self._end_ms = now_ms

    # -- queries ----------------------------------------------------------------

    def operations(self) -> Dict[str, OperationMetrics]:
        return dict(self._operations)

    @property
    def elapsed_ms(self) -> float:
        if self._start_ms is None or self._end_ms is None:
            return 0.0
        return max(0.0, self._end_ms - self._start_ms)

    def throughput_tps(self, name: Optional[str] = None) -> float:
        """Committed operations per simulated second."""
        elapsed = self.elapsed_ms
        if elapsed <= 0:
            return 0.0
        if name is None:
            committed = sum(metrics.committed for metrics in self._operations.values())
        else:
            committed = self.operation(name).committed
        return committed / (elapsed / 1000.0)

    def second_round_fraction(self, name: str) -> float:
        metrics = self.operation(name)
        if metrics.committed == 0:
            return 0.0
        return metrics.second_rounds / metrics.committed

    def effective_round2_ms(self, name: str) -> float:
        """Average round-2 latency weighted by how often round 2 happens.

        This is the "effective latency of round-2 communication" reported in
        Figure 5 of the paper (mean extra latency multiplied by the fraction
        of read-only transactions needing a second round).
        """
        metrics = self.operation(name)
        if not metrics.round2_latencies_ms or metrics.committed == 0:
            return 0.0
        mean_round2 = metrics.round2_latencies_ms.total_ms / len(metrics.round2_latencies_ms)
        return mean_round2 * (metrics.second_rounds / metrics.committed)

    def edge_latency_split(self, name: str) -> "tuple[float, float, int, int]":
        """``(edge_mean_ms, core_mean_ms, edge_count, core_count)`` for ``name``.

        The per-tier means of read-only latency: reads served by an edge
        proxy's verified cache versus reads that went to the core clusters
        (the comparison the ``fig_edge`` experiment reports).
        """
        metrics = self.operation(name)
        edge = metrics.edge_latencies_ms
        core = metrics.core_latencies_ms
        edge_mean = edge.total_ms / len(edge) if edge else 0.0
        core_mean = core.total_ms / len(core) if core else 0.0
        return edge_mean, core_mean, len(edge), len(core)
