"""Latency/throughput/abort metrics and result rendering."""

from repro.metrics.collector import (
    LatencySummary,
    MetricsCollector,
    OperationMetrics,
    percentile,
    summarize_latencies,
)
from repro.metrics.tables import FigureResult, Series, TableResult, format_number, render_mapping

__all__ = [
    "FigureResult",
    "LatencySummary",
    "MetricsCollector",
    "OperationMetrics",
    "Series",
    "TableResult",
    "format_number",
    "percentile",
    "render_mapping",
    "summarize_latencies",
]
