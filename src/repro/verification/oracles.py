"""Pluggable invariant oracles over a finished system run.

The hand-written tests each check one guarantee of one scenario; the chaos
engine (:mod:`repro.chaos`) instead generates *arbitrary* scenarios and needs
the guarantees packaged as reusable oracles it can run after every one.  An
oracle inspects a :class:`RunObservation` — the quiesced system plus the
execution history the driver recorded — and returns the invariant violations
it found (empty list = invariant held).

The standard suite covers the reproduction's end-to-end promises:

* **quiescent liveness** — once faults stop, every submitted transaction
  terminates, no 2PC participant stays wedged in ``prepared``, and the
  post-quiescence probe commits succeed;
* **recovery convergence** — crashed-and-restarted replicas complete state
  transfer, and replicas at the same log position agree byte-for-byte on
  their Merkle roots (no forks);
* **read-value legitimacy** — no accepted (verified) read-only result
  contains a value that neither the initial database nor any committed
  transaction wrote;
* **atomic visibility** — co-written key groups are never observed torn;
* **serializability** — the conflict graph over committed transactions and
  read-only observations is acyclic against the authoritative version order
  (Theorems 3.4/4.5 of the paper);
* **checkpoint/archive coherence** — for every batch a round-2 snapshot
  request can still name, archive-served Merkle proofs are byte-identical to
  proofs from a from-scratch rebuild of that batch's tree (the PR-2
  fast-path contract, re-checked after arbitrary churn);
* **edge freshness bound** — when ``client_staleness_bound_ms`` is armed,
  every edge-served read's certified header was within the bound at
  acceptance time (checked against the flight recorder's
  ``edge-read-accepted`` evidence);
* **phase-latency anomaly** — a *performance* oracle: outside the injected
  fault windows, per-window commit latency and per-phase attribution
  (:mod:`repro.obs.monitor`) must track the same seed's fault-free twin.
  Catches bugs that stay correctness-green but make the system slow — a
  wedged verify cache commits every transaction and still lights this up.

Oracles never raise on a violation; they *describe* it, so a single run can
report every broken invariant and the shrinker can match failures by oracle
name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import VerificationError
from repro.common.types import Key
from repro.crypto.merkle import MerkleTree
from repro.verification.history import ExecutionHistory, version_order_from_system


@dataclass(frozen=True)
class OracleFailure:
    """One invariant violation, attributed to the oracle that found it."""

    oracle: str
    description: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.oracle}] {self.description}"


@dataclass
class RunObservation:
    """Everything the oracles need to know about one finished run.

    ``system`` is the quiesced :class:`~repro.core.system.TransEdgeSystem`;
    ``history`` holds what the driver recorded; the remaining fields carry
    driver-side bookkeeping the system itself cannot know (how many commits
    were submitted, which processes never finished, which replicas were
    crash/restarted along the way).
    """

    system: object
    history: ExecutionHistory
    co_written_groups: Sequence[Set[Key]] = ()
    restarted_replicas: Sequence[object] = ()
    unfinished_processes: Sequence[str] = ()
    simulation_stalled: bool = False
    probe_submitted: int = 0
    probe_committed: int = 0
    #: Live monitor of this run (:class:`repro.obs.monitor.Monitor`), when
    #: one was installed; performance oracles read its timeline.
    monitor: object = None
    #: Monitor of the same seed's *fault-free twin* run (same plan with the
    #: fault schedule stripped), when the driver produced one.
    twin_monitor: object = None
    #: ``(start_ms, end_ms)`` intervals during which faults were active;
    #: ``end_ms`` of ``None`` means active until the end of the run.
    fault_windows: Sequence[Tuple[float, Optional[float]]] = ()


class Oracle:
    """Base class: ``check`` returns the violations found (empty = held)."""

    name = "oracle"

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        raise NotImplementedError

    def _failure(self, description: str) -> OracleFailure:
        return OracleFailure(oracle=self.name, description=description)


class QuiescentLivenessOracle(Oracle):
    """Faults stopped — did everything that was admitted terminate?"""

    name = "quiescent-liveness"

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        failures: List[OracleFailure] = []
        if observation.simulation_stalled:
            failures.append(
                self._failure("simulation hit its event budget without quiescing")
            )
        for name in observation.unfinished_processes:
            failures.append(
                self._failure(f"driver process {name} never finished its workload")
            )
        system = observation.system
        stranded = system.stranded_prepared_transactions()
        if stranded:
            failures.append(
                self._failure(
                    f"{stranded} distributed transaction(s) still prepared-but-"
                    "undecided after quiescence"
                )
            )
        crashed = sorted(
            str(replica_id)
            for replica_id, replica in system.replicas.items()
            if replica.crashed
        )
        if crashed:
            failures.append(
                self._failure(f"replicas still crashed after quiescence: {crashed}")
            )
        if observation.probe_committed < observation.probe_submitted:
            failures.append(
                self._failure(
                    f"only {observation.probe_committed}/{observation.probe_submitted} "
                    "post-quiescence probe commits succeeded"
                )
            )
        return failures


class RecoveryConvergenceOracle(Oracle):
    """Restarted replicas rejoined; equal log positions mean equal state."""

    name = "recovery-convergence"

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        failures: List[OracleFailure] = []
        system = observation.system
        for replica_id in observation.restarted_replicas:
            replica = system.replicas[replica_id]
            if replica.crashed:
                continue  # reported by the liveness oracle
            if replica.counters.recoveries_completed < 1:
                failures.append(
                    self._failure(
                        f"restarted replica {replica_id} never completed recovery"
                    )
                )
            elif replica.recovery.in_progress:
                failures.append(
                    self._failure(
                        f"restarted replica {replica_id} still mid-recovery "
                        "after quiescence"
                    )
                )
        # Fork detection: replicas of one partition standing at the same log
        # position must agree on the Merkle root.  (A replica may lag the tip
        # if it rejoined between instances — that is staleness, not a fork.)
        for partition in system.topology.partitions():
            by_seq: Dict[int, Dict[bytes, List[str]]] = {}
            for replica in system.cluster_replicas(partition):
                if replica.crashed:
                    continue
                roots = by_seq.setdefault(replica.log.last_seq, {})
                roots.setdefault(replica.merkle.root, []).append(str(replica.node_id))
            for seq, roots in sorted(by_seq.items()):
                if len(roots) > 1:
                    failures.append(
                        self._failure(
                            f"partition {partition} forked at log position {seq}: "
                            f"{sorted(sorted(names) for names in roots.values())}"
                        )
                    )
            # The leader must hold the cluster's certified tip: a quorum can
            # only be ahead of it if consensus moved on without it.
            leader = system.leader_replica(partition)
            ahead = [
                str(replica.node_id)
                for replica in system.cluster_replicas(partition)
                if not replica.crashed and replica.log.last_seq > leader.log.last_seq
            ]
            if len(ahead) >= system.config.quorum_size:
                failures.append(
                    self._failure(
                        f"partition {partition}: a quorum {sorted(ahead)} is ahead "
                        f"of its leader {leader.node_id}"
                    )
                )
        return failures


class ReadValueLegitimacyOracle(Oracle):
    """No accepted read-only result may contain a value nobody wrote."""

    name = "read-values"

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        try:
            observation.history.check_read_only_values()
        except VerificationError as error:
            return [self._failure(str(error))]
        return []


class AtomicVisibilityOracle(Oracle):
    """Co-written key groups are observed all-or-nothing."""

    name = "atomic-visibility"

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        if not observation.co_written_groups:
            return []
        try:
            observation.history.check_atomic_visibility(observation.co_written_groups)
        except VerificationError as error:
            return [self._failure(str(error))]
        return []


class SerializabilityOracle(Oracle):
    """The serialization graph is acyclic against the real version order."""

    name = "serializability"

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        version_order = version_order_from_system(observation.system)
        try:
            observation.history.check_serializable(version_order)
        except VerificationError as error:
            return [self._failure(str(error))]
        return []


class CheckpointArchiveCoherenceOracle(Oracle):
    """Archive-served snapshot proofs are byte-identical to rebuilt ones.

    For each partition leader, every batch a round-2 request can still name
    (the retained, requestable headers) is resolved twice: through the
    Merkle-tree archive fast path and by rebuilding the historical tree from
    the multi-version store — roots and per-key proofs must match exactly.
    ``sample_per_partition``/``keys_per_batch`` bound the work.
    """

    name = "archive-coherence"

    def __init__(self, sample_per_partition: int = 3, keys_per_batch: int = 4) -> None:
        self._sample = sample_per_partition
        self._keys = keys_per_batch

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        failures: List[OracleFailure] = []
        system = observation.system
        if not system.config.perf.archive_enabled:
            return failures
        for partition in system.topology.partitions():
            replica = system.leader_replica(partition)
            candidates = sorted(
                number
                for number in replica.requestable_header_batches()
                if replica.merkle.archive_covers(number)
            )
            # Newest batches stress the most recent deltas; spread the rest.
            step = max(1, len(candidates) // max(1, self._sample))
            for number in candidates[::-step][: self._sample]:
                view = replica.merkle.tree_at(number)
                if view is None:
                    failures.append(
                        self._failure(
                            f"partition {partition}: archive refused batch {number} "
                            "it claims to cover"
                        )
                    )
                    continue
                reference = MerkleTree(replica.store.snapshot_as_of(number))
                if view.root != reference.root:
                    failures.append(
                        self._failure(
                            f"partition {partition}: archive root for batch "
                            f"{number} differs from rebuild"
                        )
                    )
                    continue
                for key in list(reference.keys())[:: max(1, len(reference.keys()) // self._keys)][
                    : self._keys
                ]:
                    if view.prove(key) != reference.prove(key):
                        failures.append(
                            self._failure(
                                f"partition {partition}: proof for {key!r} at batch "
                                f"{number} differs between archive and rebuild"
                            )
                        )
        return failures


class TraceCompletenessOracle(Oracle):
    """Every traced commit request that reached a healthy leader was answered.

    State-based oracles cannot see a *lost reply*: the transaction commits,
    every replica agrees, and only the client is left waiting.  The causal
    traces (:mod:`repro.obs`) can — a trace containing a
    ``net:CommitRequest`` span but no ``net:CommitReply`` span means some
    leader swallowed the outcome.  Runs with injected faults are not
    spuriously blamed: a transaction is excused when the flight recorder
    shows its messages were dropped/delayed by fault injection, when any
    targeted partition crashed or changed leader (the retry machinery may
    legitimately leave a timed-out client behind), or when the leader itself
    reported the coordination unresumable.  No-op unless tracing is on.
    """

    name = "trace-completeness"

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        system = observation.system
        obs = getattr(getattr(system, "env", None), "obs", None)
        if obs is None or not obs.tracing:
            return []
        if observation.simulation_stalled:
            return []  # liveness already failed; orphaned traces are a symptom

        faulted_traces: Set[str] = set()
        excused_partitions: Set[int] = set()
        for event in obs.recorder.timeline():
            detail = event.detail or {}
            if event.kind in ("message-dropped", "message-delayed"):
                trace_id = detail.get("trace_id")
                if trace_id:
                    faulted_traces.add(trace_id)
            elif event.kind in (
                "replica-crash",
                "replica-restart",
                "view-change",
                "leader-suspected",
            ):
                partition = detail.get("partition")
                if partition is not None:
                    excused_partitions.add(partition)
        unresumable: Set[str] = set()
        for replica in system.replicas.values():
            unresumable.update(replica.leader_role.unresumable)

        failures: List[OracleFailure] = []
        for trace in obs.tracer.traces():
            requests = [span for span in trace.spans if span.name == "net:CommitRequest"]
            if not requests:
                continue
            if any(span.name == "net:CommitReply" for span in trace.spans):
                continue
            if trace.trace_id in faulted_traces or trace.trace_id in unresumable:
                continue
            targets = {self._destination_partition(span) for span in requests}
            if targets & excused_partitions:
                continue
            failures.append(
                self._failure(
                    f"transaction {trace.trace_id}: commit request reached a "
                    f"healthy leader (partition(s) {sorted(targets)}) but no "
                    "commit reply was ever sent"
                )
            )
        return failures

    @staticmethod
    def _destination_partition(span) -> int:
        """Partition of a net span's destination ("client:c0->P1/R0" → 1)."""
        destination = span.node.split("->")[-1]
        if destination.startswith("P") and "/" in destination:
            try:
                return int(destination[1:].split("/", 1)[0])
            except ValueError:
                return -1
        return -1


class EdgeFreshnessBoundOracle(Oracle):
    """Edge-served reads must honour the client staleness bound.

    When ``FreshnessConfig.client_staleness_bound_ms`` is armed, an honest
    client rejects any verified section whose certified header is older than
    the bound at acceptance time (the freshness clause of
    :func:`repro.core.readonly.verify_snapshot`) — so the flight-recorder
    ``edge-read-accepted`` events, which record each accepted section's
    header age at that exact moment, must all sit within the bound.  One
    outside it means the declared staleness SLO is silently unenforced:
    the check regressed, or the edge tier pinned an aged context past the
    refresh machinery.  No-op when the bound is unset or events are off,
    and zero false positives by construction: the oracle re-applies the
    same strict-``>`` comparison the client's own acceptance path uses.
    """

    name = "edge-freshness-bound"

    #: At most this many individual violations are itemised; the rest fold
    #: into one aggregate line so a long run cannot flood the report.
    _MAX_ITEMISED = 5

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        system = observation.system
        bound = system.config.freshness.client_staleness_bound_ms
        obs = getattr(getattr(system, "env", None), "obs", None)
        if bound is None or obs is None or not obs.events:
            return []
        failures: List[OracleFailure] = []
        overflow = 0
        for event in obs.recorder.timeline():
            if event.kind != "edge-read-accepted":
                continue
            detail = event.detail or {}
            staleness_ms = detail.get("staleness_ms") or {}
            for partition, staleness in sorted(staleness_ms.items()):
                if staleness <= bound:
                    continue
                if len(failures) >= self._MAX_ITEMISED:
                    overflow += 1
                    continue
                failures.append(
                    self._failure(
                        f"transaction {detail.get('txn_id')}: edge-served read "
                        f"of partition {partition} accepted against a header "
                        f"{staleness:.2f}ms old, beyond the {bound:.0f}ms "
                        f"client staleness bound (proxy {detail.get('proxy')})"
                    )
                )
        if overflow:
            failures.append(
                self._failure(
                    f"{overflow} further edge-served read(s) exceeded the "
                    f"{bound:.0f}ms staleness bound"
                )
            )
        return failures


class PhaseLatencyAnomalyOracle(Oracle):
    """Commit latency outside fault windows must track the fault-free twin.

    Correctness oracles cannot see a run that commits everything *slowly*.
    This oracle can: the chaos driver replays the same plan with the fault
    schedule stripped (and without any injected bug), and both runs carry a
    monitoring timeline (:mod:`repro.obs.monitor`).  Windows overlapping an
    injected fault interval — padded by one window of lead (a fault can
    straddle the boundary it starts in) and ``grace_ms`` of tail (queues
    drain, views settle) — are excluded from the run; the twin had no faults
    at all, so its *entire* timeline is the baseline.  The surviving
    windows' commit latencies and per-phase attribution are pooled and
    compared.  A mean or p95 beyond ``ratio`` × twin (and ``floor_ms`` above
    it, so microsecond noise on tiny baselines never trips) is an anomaly;
    the failure names the worst-regressed phase so the report reads as a
    diagnosis ("verify went 6x") rather than a stopwatch.

    Deliberately conservative: it stays silent when either run yields fewer
    than ``min_commits`` commits outside fault windows, when monitors are
    missing, or when the run already failed liveness (stalls make latency
    meaningless).  Thresholds are loose enough that scheduling drift between
    a faulted run and its twin — retries landing in different batches —
    stays well below them; the CI chaos sweep runs 25 seeds with this oracle
    armed to keep that true.
    """

    name = "phase-latency-anomaly"

    def __init__(
        self,
        ratio: float = 2.0,
        floor_ms: float = 3.0,
        grace_ms: float = 150.0,
        min_commits: int = 8,
    ) -> None:
        self._ratio = ratio
        self._floor_ms = floor_ms
        self._grace_ms = grace_ms
        self._min_commits = min_commits

    def _pools(
        self, observation: RunObservation
    ) -> "Optional[Tuple[Dict[str, object], Dict[str, object]]]":
        """(run pool, twin pool) outside fault windows, or None if unjudgeable."""
        monitor = observation.monitor
        twin = observation.twin_monitor
        if monitor is None or twin is None or observation.simulation_stalled:
            return None
        lead_ms = monitor.config.window_ms
        excluded = [
            (start - lead_ms, (float("inf") if end is None else end + self._grace_ms))
            for start, end in observation.fault_windows
        ]
        run_pool = self._pool(monitor, excluded)
        twin_pool = self._pool(twin, [])
        if (
            run_pool["commits"] < self._min_commits
            or twin_pool["commits"] < self._min_commits
        ):
            return None
        return run_pool, twin_pool

    def measure(self, observation: RunObservation) -> Optional[float]:
        """Worst run/twin ratio over pooled commit mean and p95, or None.

        The chaos fleet records this on every report: a ratio below the
        failure threshold but above ~1.2 is an oracle *near-miss* — a
        coverage signal worth mutating toward even though nothing failed.
        """
        pools = self._pools(observation)
        if pools is None:
            return None
        run_pool, twin_pool = pools
        ratios = [
            run_pool[stat] / twin_pool[stat]
            for stat in ("mean", "p95")
            if twin_pool[stat] > 0
        ]
        return max(ratios) if ratios else None

    def check(self, observation: RunObservation) -> List[OracleFailure]:
        pools = self._pools(observation)
        if pools is None:
            return []
        run_pool, twin_pool = pools

        failures: List[OracleFailure] = []
        anomalies: List[str] = []
        for stat in ("mean", "p95"):
            run_value = run_pool[stat]
            twin_value = twin_pool[stat]
            if run_value > max(twin_value * self._ratio, twin_value + self._floor_ms):
                anomalies.append(
                    f"commit {stat} {run_value:.2f}ms vs twin {twin_value:.2f}ms"
                )
        if anomalies:
            failures.append(
                self._failure(
                    "latency regression outside fault windows: "
                    + ", ".join(anomalies)
                    + self._worst_phase_note(run_pool, twin_pool)
                )
            )
        return failures

    def _pool(self, monitor, excluded) -> Dict[str, object]:
        """Pooled latency/phase stats over a monitor's non-excluded windows.

        A window's reach extends back to the *start* of the earliest
        transaction that finished in it: a commit stuck behind a crashed
        leader ends long after the fault lifted but its latency was caused
        inside the fault window, so a window holding such a straggler is
        excluded wholesale (latencies and phase sums both carry its cost).
        """
        latencies: List[float] = []
        commits = 0
        phase_ms: Dict[str, float] = {}
        for window in monitor.timeline.samples():
            reach = window.start_ms
            if window.earliest_root_start_ms is not None:
                reach = min(reach, window.earliest_root_start_ms)
            if any(reach < hi and window.end_ms > lo for lo, hi in excluded):
                continue
            latencies.extend(window.latencies)
            commits += window.commits
            for phase in sorted(window.phase_ms):
                phase_ms[phase] = phase_ms.get(phase, 0.0) + window.phase_ms[phase]
        ordered = sorted(latencies)
        mean = sum(ordered) / len(ordered) if ordered else 0.0
        p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))] if ordered else 0.0
        return {
            "commits": commits,
            "mean": mean,
            "p95": p95,
            "phase_per_commit": {
                phase: total / commits for phase, total in phase_ms.items()
            }
            if commits
            else {},
        }

    def _worst_phase_note(self, run_pool, twin_pool) -> str:
        """Name the phase whose per-commit cost regressed the most."""
        worst: "Optional[Tuple[float, str, float, float]]" = None
        twin_phases = twin_pool["phase_per_commit"]
        for phase, run_cost in sorted(run_pool["phase_per_commit"].items()):
            twin_cost = twin_phases.get(phase, 0.0)
            excess = run_cost - twin_cost
            if worst is None or excess > worst[0]:
                worst = (excess, phase, run_cost, twin_cost)
        if worst is None or worst[0] <= 0:
            return ""
        _, phase, run_cost, twin_cost = worst
        return (
            f"; worst phase: {phase} {run_cost:.2f}ms/commit "
            f"vs twin {twin_cost:.2f}ms/commit"
        )


def standard_suite() -> List[Oracle]:
    """The default oracle suite, cheapest first."""
    return [
        QuiescentLivenessOracle(),
        TraceCompletenessOracle(),
        EdgeFreshnessBoundOracle(),
        RecoveryConvergenceOracle(),
        ReadValueLegitimacyOracle(),
        AtomicVisibilityOracle(),
        SerializabilityOracle(),
        CheckpointArchiveCoherenceOracle(),
    ]


def run_suite(
    observation: RunObservation, oracles: Sequence[Oracle] = ()
) -> List[OracleFailure]:
    """Run every oracle and collect all violations (never stops early)."""
    failures: List[OracleFailure] = []
    for oracle in oracles or standard_suite():
        failures.extend(oracle.check(observation))
    return failures
