"""Correctness verification: execution histories and serializability checks."""

from repro.verification.history import (
    CommittedTxn,
    ExecutionHistory,
    ReadOnlyObservation,
    version_order_from_system,
)

__all__ = [
    "CommittedTxn",
    "ExecutionHistory",
    "ReadOnlyObservation",
    "version_order_from_system",
]
