"""Execution-history recording and serializability checking.

The paper proves TransEdge serializable (Theorems 3.4 and 4.5).  To check
the reproduction actually delivers that guarantee, tests record every
committed read-write transaction and every read-only result into an
:class:`ExecutionHistory` and run two independent checks:

* a **serialization-graph test**: build the conflict graph over committed
  read-write transactions (using write→read value matching and the per-key
  version order) plus the read-only transactions, and assert it is acyclic
  (networkx does the cycle detection);
* a **snapshot-consistency check**: every read-only result must equal the
  database state produced by some prefix of the per-key version order it
  observed — i.e. for every key it returns the value written by the
  transaction whose version it claims, and versions across keys must not
  observe one transaction's write while missing an earlier conflicting one
  it depends on.

Write values are assumed unique per (key, transaction) — the workload
generator guarantees this — which makes wr-edges unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.common.ids import NO_BATCH, BatchNumber
from repro.common.types import Key, Value
from repro.common.errors import VerificationError


@dataclass(frozen=True)
class CommittedTxn:
    """A committed read-write transaction as observed by the driver."""

    txn_id: str
    reads: Mapping[Key, BatchNumber]
    writes: Mapping[Key, Value]
    commit_batches: Mapping[int, BatchNumber] = field(default_factory=dict)


@dataclass(frozen=True)
class ReadOnlyObservation:
    """A read-only transaction's result as observed by the driver."""

    txn_id: str
    values: Mapping[Key, Optional[Value]]
    versions: Mapping[Key, BatchNumber]


class ExecutionHistory:
    """Accumulates committed transactions and read-only observations."""

    def __init__(self, initial_data: Optional[Mapping[Key, Value]] = None) -> None:
        self.initial_data: Dict[Key, Value] = dict(initial_data or {})
        self.committed: List[CommittedTxn] = []
        self.read_only: List[ReadOnlyObservation] = []

    # -- recording ------------------------------------------------------------

    def record_commit(
        self,
        txn_id: str,
        reads: Mapping[Key, BatchNumber],
        writes: Mapping[Key, Value],
        commit_batches: Optional[Mapping[int, BatchNumber]] = None,
    ) -> None:
        self.committed.append(
            CommittedTxn(
                txn_id=txn_id,
                reads=dict(reads),
                writes=dict(writes),
                commit_batches=dict(commit_batches or {}),
            )
        )

    def record_read_only(
        self,
        txn_id: str,
        values: Mapping[Key, Optional[Value]],
        versions: Mapping[Key, BatchNumber],
    ) -> None:
        self.read_only.append(
            ReadOnlyObservation(txn_id=txn_id, values=dict(values), versions=dict(versions))
        )

    # -- derived structures ------------------------------------------------------

    def writer_of(self) -> Dict[Tuple[Key, Value], str]:
        """Map each (key, value) to the transaction that wrote it."""
        writers: Dict[Tuple[Key, Value], str] = {}
        for txn in self.committed:
            for key, value in txn.writes.items():
                writers[(key, value)] = txn.txn_id
        return writers

    def writers_by_key(self) -> Dict[Key, List[str]]:
        by_key: Dict[Key, List[str]] = {}
        for txn in self.committed:
            for key in txn.writes:
                by_key.setdefault(key, []).append(txn.txn_id)
        return by_key

    # -- checks -----------------------------------------------------------------

    def build_serialization_graph(
        self, version_order: Optional[Mapping[Key, Sequence[Value]]] = None
    ) -> nx.DiGraph:
        """Conflict graph over committed read-write + read-only transactions.

        Edges: ww (per-key order of writers), wr (writer → reader of its
        value), rw (reader → later writers of a key it read).

        ``version_order`` supplies the authoritative per-key order of values
        (e.g. extracted from a replica's multi-version store with
        :func:`version_order_from_system`); without it the recording order of
        commit acknowledgements is used as an approximation.
        """
        graph = nx.DiGraph()
        committed_by_id = {txn.txn_id: txn for txn in self.committed}
        graph.add_nodes_from(committed_by_id)

        writer_of_value = self.writer_of()

        writers_in_order: Dict[Key, List[str]] = {}
        if version_order is not None:
            for key, values in version_order.items():
                order: List[str] = []
                for value in values:
                    writer = writer_of_value.get((key, value))
                    if writer is not None and writer not in order:
                        order.append(writer)
                if order:
                    writers_in_order[key] = order
        else:
            for txn in self.committed:
                for key in txn.writes:
                    writers_in_order.setdefault(key, []).append(txn.txn_id)
        for key, writers in writers_in_order.items():
            for earlier, later in zip(writers, writers[1:]):
                if earlier != later:
                    graph.add_edge(earlier, later, kind="ww", key=key)

        # Read-only transactions: wr edge from the writer of each observed
        # value, rw edge to every later writer of the same key.
        for observation in self.read_only:
            node = f"ro:{observation.txn_id}"
            graph.add_node(node)
            for key, value in observation.values.items():
                if value is None or (key, value) not in writer_of_value:
                    # Value from the initial database state: rw edges to all
                    # writers of this key.
                    for writer in writers_in_order.get(key, []):
                        graph.add_edge(node, writer, kind="rw", key=key)
                    continue
                writer = writer_of_value[(key, value)]
                graph.add_edge(writer, node, kind="wr", key=key)
                order = writers_in_order.get(key, [])
                if writer in order:
                    for later in order[order.index(writer) + 1:]:
                        graph.add_edge(node, later, kind="rw", key=key)
        return graph

    def check_serializable(
        self, version_order: Optional[Mapping[Key, Sequence[Value]]] = None
    ) -> None:
        """Raise :class:`VerificationError` when the serialization graph has a cycle."""
        graph = self.build_serialization_graph(version_order)
        try:
            cycle = nx.find_cycle(graph, orientation="original")
        except nx.NetworkXNoCycle:
            return
        raise VerificationError(f"serialization graph contains a cycle: {cycle}")

    def check_read_only_values(self) -> None:
        """Every read-only value must be the initial value or a committed write."""
        writer_of_value = self.writer_of()
        for observation in self.read_only:
            for key, value in observation.values.items():
                if value is None:
                    continue
                if value == self.initial_data.get(key):
                    continue
                if (key, value) not in writer_of_value:
                    raise VerificationError(
                        f"read-only transaction {observation.txn_id} observed a value for "
                        f"{key!r} that no committed transaction wrote"
                    )

    def check_atomic_visibility(self, groups: Sequence[Set[Key]]) -> None:
        """Check all-or-nothing visibility of co-written key groups.

        ``groups`` lists sets of keys that are always written together by the
        workload (e.g. ``{x, y}`` in the paper's Figure 1 example).  For every
        read-only observation covering a whole group, the observed values
        must all come from the same writing transaction (or all be initial
        values) — exactly the anomaly Figure 1 shows naive Merkle reads would
        allow.
        """
        writer_of_value = self.writer_of()
        for observation in self.read_only:
            for group in groups:
                if not group <= set(observation.values):
                    continue
                writers: Set[Optional[str]] = set()
                for key in group:
                    value = observation.values[key]
                    if value is None or value == self.initial_data.get(key):
                        writers.add(None)
                    else:
                        writers.add(writer_of_value.get((key, value)))
                if len(writers) > 1:
                    raise VerificationError(
                        f"read-only transaction {observation.txn_id} observed a mixed "
                        f"snapshot across co-written keys {sorted(group)}: writers {writers}"
                    )

    def check_all(
        self,
        groups: Sequence[Set[Key]] = (),
        version_order: Optional[Mapping[Key, Sequence[Value]]] = None,
    ) -> None:
        """Run every check; raises on the first violation."""
        self.check_read_only_values()
        if groups:
            self.check_atomic_visibility(groups)
        self.check_serializable(version_order)


def version_order_from_system(system) -> Dict[Key, List[Value]]:
    """Extract the authoritative per-key value order from a running system.

    Reads the multi-version store of one (honest) replica per partition —
    the leader — and returns, for every key, its values in version order.
    Intended for tests and the benchmark harness after a run completes.
    """
    order: Dict[Key, List[Value]] = {}
    for partition in system.topology.partitions():
        replica = system.leader_replica(partition)
        for key in replica.store.keys():
            order[key] = [value for _, value in replica.store.history(key)]
    return order
