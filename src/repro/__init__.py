"""TransEdge reproduction library.

A simulation-backed reproduction of "TransEdge: Supporting Efficient Read
Queries Across Untrusted Edge Nodes" (EDBT 2023): hierarchical BFT
transaction processing for edge environments with commit-free,
non-interfering snapshot read-only transactions.

Quickstart::

    from repro import SystemConfig, TransEdgeSystem

    system = TransEdgeSystem(SystemConfig(num_partitions=3, fault_tolerance=1))
    client = system.create_client("app")
    keys = system.keys_of_partition(0)[:1] + system.keys_of_partition(1)[:1]

    def body():
        yield from client.read_write_txn([], {keys[0]: b"hello", keys[1]: b"edge"})
        snapshot = yield from client.read_only_txn(keys)
        print(snapshot.values)

    client.spawn(body())
    system.run_until_idle()

See ``examples/`` for complete scenarios and ``repro.bench`` for the
experiment harness that regenerates the paper's figures and tables.
"""

from repro.common.config import (
    BatchConfig,
    CheckpointConfig,
    CostConfig,
    EdgeConfig,
    FailoverConfig,
    FreshnessConfig,
    LatencyConfig,
    PerfConfig,
    SystemConfig,
    paper_scale_config,
    small_test_config,
)
from repro.common.types import CommitResult, ReadOnlyResult, TxnKind, TxnStatus
from repro.core.client import TransEdgeClient
from repro.core.system import TransEdgeSystem
from repro.baselines.protocols import protocol_by_name
from repro.workload.generator import WorkloadGenerator, WorkloadProfile

__version__ = "1.0.0"

__all__ = [
    "BatchConfig",
    "CheckpointConfig",
    "CommitResult",
    "CostConfig",
    "EdgeConfig",
    "FailoverConfig",
    "FreshnessConfig",
    "LatencyConfig",
    "PerfConfig",
    "ReadOnlyResult",
    "SystemConfig",
    "TransEdgeClient",
    "TransEdgeSystem",
    "TxnKind",
    "TxnStatus",
    "WorkloadGenerator",
    "WorkloadProfile",
    "__version__",
    "paper_scale_config",
    "protocol_by_name",
    "small_test_config",
]
