"""State transfer: how a restarted or lagging replica rejoins its cluster.

The recovering replica broadcasts a
:class:`~repro.recovery.messages.StateTransferRequest` to its peers and
installs the first verifiable reply:

1. if the reply carries a checkpoint image newer than anything the replica
   holds, the image digest is checked against the checkpoint certificate
   (``f + 1`` member signatures, like any cross-trust-domain proof in this
   codebase) and the certified header is checked against the restored Merkle
   root, then the image replaces the replica's state wholesale;
2. the log-suffix entries are replayed in order, each one's commit
   certificate verified against the batch digest and the Merkle root checked
   against the batch's certified read-only segment after application;
3. the consensus engine is fast-forwarded past the recovered prefix so the
   replica resumes voting on live instances.

Any verification failure discards the whole reply (and resets the replica to
empty if a partial install had begun), leaving recovery in progress for the
next peer's reply — so one honest responder is enough and byzantine
responders cannot poison the restored state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bft.log import LogEntry
from repro.common.errors import TransEdgeError
from repro.common.ids import NO_BATCH
from repro.core.batch import Batch
from repro.recovery.messages import StateTransferReply, StateTransferRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.core.replica import PartitionReplica


class StateTransferError(TransEdgeError):
    """A state-transfer reply failed verification and was discarded."""


class RecoveryCoordinator:
    """Drives state transfer for one replica."""

    #: Simulated milliseconds between request re-broadcasts while a recovery
    #: session has not completed (replies lost or all rejected).
    RETRY_INTERVAL_MS = 25.0

    def __init__(self, replica: "PartitionReplica") -> None:
        self._replica = replica
        self.in_progress = False

    def begin(self) -> None:
        """Ask every cluster peer for the state this replica is missing."""
        if self.in_progress:
            return
        self.in_progress = True
        self._replica.counters.recoveries_started += 1
        self._broadcast_request()

    def _broadcast_request(self) -> None:
        replica = self._replica
        # A re-crashed or re-reset replica owns a fresh coordinator; a stale
        # timer firing on the old one must not keep requesting on its behalf.
        if not self.in_progress or replica.recovery is not self or replica.crashed:
            return
        request = StateTransferRequest(
            partition=replica.partition, have_seq=replica.log.last_seq
        )
        peers = [m for m in replica.cluster_members if m != replica.node_id]
        replica.broadcast(peers, request)
        replica.schedule(self.RETRY_INTERVAL_MS, self._broadcast_request)

    def on_reply(self, message: StateTransferReply, src) -> None:
        replica = self._replica
        if message.partition != replica.partition:
            return
        if not self.in_progress and not self._extends(message):
            # Recovery already completed, but a late reply that verifiably
            # extends our log is still worth applying: the completing reply
            # may have come from a peer that was itself behind.
            return
        held_before = replica.log.last_seq
        try:
            self._install(message)
        except StateTransferError:
            replica.counters.state_transfers_rejected += 1
            return
        if self.in_progress and self._completes(message, held_before):
            self.in_progress = False
            replica.counters.recoveries_completed += 1
            replica.env.obs.event(
                str(replica.node_id),
                "recovery-complete",
                "info",
                {"partition": int(replica.partition), "log_tip": replica.log.last_seq},
            )
        if replica.log.last_seq > held_before:
            # An install that advanced the log may have fast-forwarded the
            # engine past a recovering *leader's* in-flight proposal; let it
            # re-arm sealing.  This runs for late extending replies too — a
            # peer that was itself behind can complete the session early, and
            # only a later reply brings the superseding decision.
            replica.leader_role.on_recovery_complete()

    def _completes(self, reply: StateTransferReply, held_before) -> bool:
        """Did this reply genuinely finish the recovery session?

        A reply from a peer that is itself *behind* the recoverer installs
        nothing, and must not count as completion — otherwise a lagging
        replica "recovers" to its own stale state the moment any stale peer
        answers.  Completion requires the install to have extended the log up
        to the responder's advertised certified tip, or — when nothing new
        was installed — the recoverer's tip to already match the responder's
        (an up-to-date peer confirming there is nothing to fetch).  Anything
        else leaves the session in progress for the retry broadcast.
        """
        tip = self._replica.log.last_seq
        if tip < reply.responder_tip:
            return False  # the responder certified more than it could send us
        extended = tip > held_before
        return extended or tip == reply.responder_tip

    def _extends(self, reply: StateTransferReply) -> bool:
        """Does this reply carry anything above what the replica already holds?"""
        tip = reply.image.seq if reply.image is not None else NO_BATCH
        if reply.entries:
            tip = max(tip, reply.entries[-1].seq)
        return tip > self._replica.log.last_seq

    # -- installation -------------------------------------------------------

    def _install(self, reply: StateTransferReply) -> None:
        replica = self._replica
        image = reply.image
        self._verify_view(reply)
        mutated = False
        # A freshly reset replica holds nothing at all — even the genesis
        # image (seq == last_seq == NO_BATCH) is news to it.
        needs_base = replica.log.next_seq == 0 and len(replica.store) == 0
        try:
            if image is not None and (image.seq > replica.log.last_seq or needs_base):
                self._verify_image(reply)
                replica.reset_for_recovery(preserve_recovery=True)
                mutated = True
                replica.install_snapshot(image, reply.certificate)
            for entry in reply.entries:
                if entry.seq < replica.log.next_seq:
                    continue  # already held (or covered by the image)
                if entry.seq > replica.log.next_seq:
                    break  # gap: the remainder of this reply is unusable
                self._verify_entry(entry)
                mutated = True
                replica.apply_recovered_entry(entry)
        except StateTransferError:
            if mutated:
                # A partially applied reply would leave the replica in a state
                # nobody can certify; wipe it and wait for an honest peer.
                replica.reset_for_recovery(preserve_recovery=True)
            raise
        if replica.log.last_seq < 0:
            raise StateTransferError("reply contained no usable state")
        replica.engine.install_checkpoint(replica.log.last_seq)
        if reply.view > replica.engine.view:
            # Verified in _verify_view: follow the cluster's live leader now,
            # so the very next PrePrepare of the current view is accepted.
            if replica.engine.adopt_view(reply.view, reply.view_certificate):
                replica.counters.views_adopted += 1

    def _verify_view(self, reply: StateTransferReply) -> None:
        """Check the advertised ``(view, certificate)`` before touching state.

        A byzantine responder must not be able to park the rejoiner in a
        bogus future view (it would ignore the real leader) — or smuggle a
        stale view past the session by pairing good entries with a bad
        certificate.  A reply claiming a newer view without a valid quorum
        certificate is discarded wholesale.
        """
        replica = self._replica
        if reply.view <= replica.engine.view:
            return  # nothing to adopt; an older/equal view needs no proof
        certificate = reply.view_certificate
        if certificate is None or certificate.view != reply.view:
            raise StateTransferError("advertised view without a matching certificate")
        if not certificate.verify(
            replica.verifier, replica.cluster_members, replica.engine.quorum
        ):
            raise StateTransferError("view certificate signatures invalid")

    def _verify_image(self, reply: StateTransferReply) -> None:
        replica = self._replica
        image = reply.image
        if image is None or image.partition != replica.partition:
            raise StateTransferError("image missing or for the wrong partition")
        if reply.certificate is None:
            # Only the pre-history genesis image may arrive uncertified; its
            # content is validated by replaying batch 0, whose certified
            # Merkle root covers exactly the preloaded data.
            if image.seq != NO_BATCH:
                raise StateTransferError("non-genesis image without a certificate")
            if image.prepared or image.header is not None:
                raise StateTransferError("genesis image carries non-genesis state")
            return
        certificate = reply.certificate
        if (
            certificate.partition != replica.partition
            or certificate.seq != image.seq
            or certificate.digest != image.digest()
        ):
            raise StateTransferError("checkpoint certificate does not cover the image")
        if not certificate.verify(
            replica.verifier,
            replica.cluster_members,
            replica.config.certificate_size,
        ):
            raise StateTransferError("checkpoint certificate signatures invalid")
        header = image.header
        if header is None or header.number != image.seq:
            raise StateTransferError("image header missing or at the wrong batch")
        if not header.verify(
            replica.verifier,
            replica.cluster_members,
            replica.config.certificate_size,
        ):
            raise StateTransferError("image header certificate invalid")

    def _verify_entry(self, entry: LogEntry) -> None:
        replica = self._replica
        batch = entry.value
        if not isinstance(batch, Batch):
            raise StateTransferError(f"log entry {entry.seq} does not carry a batch")
        if batch.partition != replica.partition or batch.number != entry.seq:
            raise StateTransferError(f"log entry {entry.seq} batch mismatch")
        certificate = entry.certificate
        if certificate.seq != entry.seq or certificate.digest != batch.digest():
            raise StateTransferError(f"certificate for entry {entry.seq} mismatched")
        if not certificate.verify(
            replica.verifier,
            replica.cluster_members,
            replica.config.certificate_size,
        ):
            raise StateTransferError(f"certificate for entry {entry.seq} invalid")
