"""Quorum-certified checkpoints and the garbage collection they unlock.

Every ``CheckpointConfig.interval_batches`` delivered batches a replica
captures a :class:`~repro.recovery.snapshot.SnapshotImage`, signs its digest
and broadcasts a :class:`~repro.bft.messages.CheckpointVote` to its cluster.
When ``2f + 1`` members vote for the same ``(seq, digest)`` the checkpoint is
*stable*: the collected signatures form a :class:`CheckpointCertificate`
(transferable proof that the image is the agreed partition state at ``seq``),
and the replica garbage-collects everything the checkpoint covers —

* SMR-log entries at or below ``seq`` (:meth:`ReplicatedLog.truncate_prefix`);
* store versions older than the retention window
  (:meth:`MultiVersionStore.prune`);
* certified headers and decided consensus instances below the window.

A replica that sees a quorum certify a checkpoint it never reached knows it
is lagging and asks :class:`~repro.recovery.transfer.RecoveryCoordinator` to
fetch the state instead of waiting for consensus traffic it already missed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

from repro.bft.messages import CheckpointVote
from repro.bft.quorum import VoteTracker, checkpoint_payload
from repro.common.ids import NO_BATCH, BatchNumber, PartitionId, ReplicaId
from repro.crypto.hashing import Digest
from repro.crypto.signatures import KeyRegistry, Signature
from repro.recovery.snapshot import SnapshotImage, SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.core.replica import PartitionReplica


#: How far behind the certified checkpoint a replica must be before vote
#: observation triggers state transfer.  Leaders pipeline one batch at a
#: time, so a healthy replica momentarily trails by a batch or two when
#: checkpoint votes overtake the final commit messages; only a larger gap
#: means the consensus traffic was truly missed.  A genuinely stuck replica
#: still self-heals: checkpoints keep advancing, so the gap eventually
#: exceeds any fixed margin.
LAG_TRIGGER_MARGIN = 2


@dataclass(frozen=True)
class CheckpointCertificate:
    """Proof that a cluster agreed its state at ``seq`` digests to ``digest``."""

    partition: PartitionId
    seq: BatchNumber
    digest: Digest
    signatures: Tuple[Signature, ...]

    def payload(self) -> object:
        return checkpoint_payload(self.seq, self.digest)

    def verify(
        self,
        registry: KeyRegistry,
        cluster_members: Iterable[ReplicaId],
        required: int,
    ) -> bool:
        """Check the certificate carries ``required`` valid member signatures."""
        allowed = {str(member) for member in cluster_members}
        return registry.verify_quorum(
            self.payload(), self.signatures, required=required, allowed_signers=allowed
        )


class CheckpointManager:
    """One replica's view of checkpoint agreement and log/store GC."""

    def __init__(self, replica: "PartitionReplica") -> None:
        self._replica = replica
        self.config = replica.config.checkpoint
        self.snapshots = SnapshotStore()
        self._votes: Dict[Tuple[BatchNumber, Digest], VoteTracker] = {}
        self.stable_seq: BatchNumber = NO_BATCH
        self.stable_certificate: Optional[CheckpointCertificate] = None

    # -- queries ------------------------------------------------------------

    @property
    def stable_image(self) -> Optional[SnapshotImage]:
        """The image of the latest stable checkpoint (None before the first)."""
        if self.stable_seq == NO_BATCH:
            return None
        return self.snapshots.get(self.stable_seq)

    @property
    def _quorum(self) -> int:
        return self._replica.engine.quorum

    # -- bootstrap / adoption ------------------------------------------------

    def bootstrap(self, initial_data) -> None:
        """Record the genesis image of the preloaded data (never certified)."""
        self.snapshots.set_genesis(
            SnapshotImage.genesis(self._replica.partition, dict(initial_data))
        )

    def adopt_genesis(self, genesis: Optional[SnapshotImage]) -> None:
        """Carry the genesis image across a crash (the dataset is durable)."""
        if genesis is not None:
            self.snapshots.set_genesis(genesis)

    def adopt(self, image: SnapshotImage, certificate: CheckpointCertificate) -> None:
        """Install a verified checkpoint received through state transfer."""
        self.snapshots.add(image)
        self.stable_seq = image.seq
        self.stable_certificate = certificate

    # -- taking checkpoints ---------------------------------------------------

    def on_batch_delivered(self, seq: BatchNumber) -> None:
        """Capture and vote for a checkpoint when ``seq`` hits the interval."""
        if not self.config.enabled:
            return
        if seq <= 0 or seq % self.config.interval_batches != 0:
            return
        replica = self._replica
        image = SnapshotImage.capture(replica, seq)
        self.snapshots.add(image)
        replica.counters.checkpoints_taken += 1
        vote = CheckpointVote(seq=seq, digest=image.digest())
        vote.signature = replica.signer.sign(vote.signing_payload())
        peers = [m for m in replica.cluster_members if m != replica.node_id]
        replica.broadcast(peers, vote)
        self._record_vote(seq, image.digest(), str(replica.node_id), vote.signature)

    def on_vote(self, message: CheckpointVote, src: ReplicaId) -> None:
        if not self.config.enabled:
            return
        if src not in self._replica.cluster_members or message.seq <= self.stable_seq:
            return
        if message.signature is None or message.signature.signer != str(src):
            return
        if not self._replica.verifier.verify(
            message.signing_payload(), message.signature
        ):
            return
        self._record_vote(message.seq, message.digest, str(src), message.signature)

    def _record_vote(
        self, seq: BatchNumber, digest: Digest, sender: str, signature: Signature
    ) -> None:
        tracker = self._votes.setdefault((seq, digest), VoteTracker())
        tracker.add(sender, signature)
        if seq <= self.stable_seq or not tracker.reached(self._quorum):
            return
        certificate = CheckpointCertificate(
            partition=self._replica.partition,
            seq=seq,
            digest=digest,
            signatures=tracker.signatures(),
        )
        image = self.snapshots.get(seq)
        if image is not None and image.digest() == digest:
            self._stabilise(image, certificate)
        elif seq > self._replica.log.last_seq + LAG_TRIGGER_MARGIN:
            # The cluster certified a state this replica never reached: it is
            # lagging (e.g. it missed consensus traffic around a restart).
            # Fetch the checkpoint from peers instead of waiting forever.
            self._replica.recovery.begin()

    # -- stabilisation and GC --------------------------------------------------

    def _stabilise(
        self, image: SnapshotImage, certificate: CheckpointCertificate
    ) -> None:
        replica = self._replica
        self.stable_seq = image.seq
        self.stable_certificate = certificate
        replica.counters.checkpoints_stable += 1
        replica.env.obs.event(
            str(replica.node_id),
            "checkpoint-stable",
            "info",
            {"partition": int(replica.partition), "seq": image.seq},
        )
        self.snapshots.retain_only(image.seq)
        self._votes = {
            (seq, digest): tracker
            for (seq, digest), tracker in self._votes.items()
            if seq > image.seq
        }

        # Everything the stable checkpoint covers can go: the log prefix, the
        # version chains, headers and archived Merkle trees below the
        # retention window, and decided consensus instances.  Store, header
        # list and tree archive are pruned to the same floor so every batch a
        # round-2 snapshot request can still name remains fully answerable.
        truncated = replica.log.truncate_prefix(image.seq + 1)
        replica.counters.log_entries_truncated += truncated
        retain_from = image.seq - self.config.retention_batches
        replica.counters.versions_pruned += replica.store.prune(retain_from)
        replica.prune_headers_below(retain_from)
        replica.prune_decisions_below(retain_from)
        replica.merkle.prune_archive(retain_from)
        if replica.config.perf.archive_compaction:
            # Merge archive deltas for batches no round-2 request can name:
            # only the earliest header of each LCE run is reachable through
            # ``_earliest_header_with_lce``, so the other batches' exact
            # trees are dead weight the compaction folds together.
            replica.counters.archive_records_compacted += (
                replica.merkle.compact_archive(replica.requestable_header_batches())
            )
        replica.engine.compact_below(image.seq + 1)
