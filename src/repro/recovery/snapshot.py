"""Restorable snapshot images of partition-replica state.

A :class:`SnapshotImage` is everything a replica needs to stand in for the
log prefix up to (and including) one batch: the store contents *with their
versions* (so OCC validation behaves identically after a restore), the
prepared-but-undecided distributed transactions in flight at that batch (so
later committed segments still validate), and the certified header of the
checkpoint batch (so CD vectors, LCE and the Merkle root carry over).

Images are digested with the canonical encoding from
:mod:`repro.crypto.hashing`; the digest is what checkpoint votes sign, which
makes a quorum-certified image transferable: a recovering replica can accept
an image from a single (possibly byzantine) peer and check it against the
checkpoint certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.ids import NO_BATCH, BatchNumber, PartitionId
from repro.common.types import Key, Value
from repro.core.batch import CertifiedHeader, CommitRecord, PreparedRecord
from repro.crypto.hashing import Digest, digest_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.core.replica import PartitionReplica


@dataclass(frozen=True)
class SnapshotImage:
    """A restorable image of one partition's state at batch ``seq``.

    ``items`` holds ``(key, version, value)`` triples sorted by key;
    ``prepared`` holds ``(batch_number, records)`` groups for every prepare
    group still undecided at the checkpoint.  ``decisions`` holds the
    ``(commit_batch, record)`` 2PC commit/abort records decided within the
    retention window below ``seq`` — these *are* replicated state (every
    replica applies the same committed segments), so they digest identically
    on honest replicas and survive a checkpoint-truncated log; a restored
    replica can keep answering ``DecisionQuery`` for them.  (What stays out
    of the image is the coordinator's *vote collection*, which really is
    leader-volatile; a new leader re-solicits votes instead.)  ``header`` is
    the certified header of batch ``seq`` and is bound to the image through
    its Merkle root rather than the digest, since it carries its own
    consensus certificate.  ``prepared_headers`` carries the certified
    headers of the prepare batches named in ``prepared``: a restored replica
    that is (or becomes) leader needs them to rebuild its coordinator vote
    and resume its predecessor's 2PC, and they are not otherwise
    reconstructible once checkpoint GC truncated the log below them.  Like
    ``header`` they are digest-excluded — each carries its own consensus
    certificate and is verified on install.
    """

    partition: PartitionId
    seq: BatchNumber
    items: Tuple[Tuple[Key, BatchNumber, Value], ...]
    prepared: Tuple[Tuple[BatchNumber, Tuple[PreparedRecord, ...]], ...] = ()
    header: Optional[CertifiedHeader] = None
    decisions: Tuple[Tuple[BatchNumber, CommitRecord], ...] = ()
    prepared_headers: Tuple[CertifiedHeader, ...] = ()

    @cached_property
    def _digest(self) -> Digest:
        return digest_of(
            {
                "partition": self.partition,
                "seq": int(self.seq),
                "items": [
                    [key, int(version), value] for key, version, value in self.items
                ],
                "prepared": [
                    [int(number), [record.payload() for record in records]]
                    for number, records in self.prepared
                ],
                "decisions": [
                    [int(number), record.payload()]
                    for number, record in self.decisions
                ],
            }
        )

    def digest(self) -> Digest:
        """Digest covered by checkpoint votes (header excluded, see class doc)."""
        return self._digest

    def values(self) -> Dict[Key, Value]:
        """The plain key/value map of the image (drops versions)."""
        return {key: value for key, _, value in self.items}

    def store_image(self) -> Dict[Key, Tuple[BatchNumber, Value]]:
        """The image in :meth:`MultiVersionStore.restore_image` form."""
        return {key: (version, value) for key, version, value in self.items}

    def __len__(self) -> int:
        return len(self.items)

    @classmethod
    def capture(cls, replica: "PartitionReplica", seq: BatchNumber) -> "SnapshotImage":
        """Snapshot ``replica``'s state right after it delivered batch ``seq``."""
        store_image = replica.store.snapshot_image(seq)
        items = tuple(
            (key, version, value)
            for key, (version, value) in sorted(store_image.items())
        )
        prepared: List[Tuple[BatchNumber, Tuple[PreparedRecord, ...]]] = []
        for number in replica.prepared_batches.group_numbers():
            group = replica.prepared_batches.group(number)
            records = tuple(group.records[txn_id] for txn_id in sorted(group.records))
            prepared.append((number, records))
        # Decisions within the retention window below the checkpoint.  The
        # filter is a pure function of ``seq`` (never of GC timing, which can
        # differ between replicas mid-agreement), so honest replicas' image
        # digests stay identical; GC prunes strictly below this floor.
        floor = seq - replica.config.checkpoint.retention_batches
        decisions = tuple(
            (commit_batch, record)
            for txn_id, (commit_batch, record) in sorted(replica.decided.items())
            if commit_batch > floor
        )
        header = replica.last_header
        if header is not None and header.number != seq:
            header = next((h for h in replica.headers if h.number == seq), header)
        # Certified headers of the still-undecided prepare batches: the
        # retention pin in ``prune_headers_below`` guarantees they are still
        # held, even when the prepare batch aged past the retention window.
        prepared_headers = tuple(
            h
            for h in (replica.header_at(number) for number, _ in prepared)
            if h is not None and h.number != seq
        )
        return cls(
            partition=replica.partition,
            seq=seq,
            items=items,
            prepared=tuple(prepared),
            header=header,
            decisions=decisions,
            prepared_headers=prepared_headers,
        )

    @classmethod
    def genesis(cls, partition: PartitionId, initial: Dict[Key, Value]) -> "SnapshotImage":
        """The pre-history image: the preloaded data at the reserved version.

        The genesis image has no certificate — its authenticity is checked by
        replaying the log from batch 0, whose certified Merkle root covers
        exactly the preloaded data.
        """
        items = tuple((key, NO_BATCH, initial[key]) for key in sorted(initial))
        return cls(partition=partition, seq=NO_BATCH, items=items)


class SnapshotStore:
    """Holds a replica's snapshot images: the genesis image, tentative images
    awaiting checkpoint agreement, and the latest stable one."""

    def __init__(self) -> None:
        self._images: Dict[BatchNumber, SnapshotImage] = {}
        self.genesis: Optional[SnapshotImage] = None

    def set_genesis(self, image: SnapshotImage) -> None:
        self.genesis = image

    def add(self, image: SnapshotImage) -> None:
        self._images[image.seq] = image

    def get(self, seq: BatchNumber) -> Optional[SnapshotImage]:
        return self._images.get(seq)

    def retain_only(self, seq: BatchNumber) -> None:
        """Keep only the image at ``seq`` (it became the stable checkpoint)."""
        self._images = {s: img for s, img in self._images.items() if s == seq}

    def seqs(self) -> List[BatchNumber]:
        return sorted(self._images)

    def __len__(self) -> int:
        return len(self._images)
