"""Messages of the state-transfer protocol.

A restarted (or lagging) replica broadcasts a :class:`StateTransferRequest`
to its cluster peers stating the highest sequence number it still holds.
Each peer answers with a :class:`StateTransferReply` carrying, when needed,
its latest stable checkpoint image plus certificate and the SMR-log suffix
above it.  Nothing in a reply is taken on trust: the requester verifies the
checkpoint certificate against the image digest, every log entry's commit
certificate, and the certified Merkle root after each replayed batch — so a
single honest responder suffices and a lying one is simply discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bft.log import LogEntry
from repro.bft.quorum import ViewChangeCertificate
from repro.common.ids import NO_BATCH, BatchNumber, PartitionId
from repro.recovery.checkpoint import CheckpointCertificate
from repro.recovery.snapshot import SnapshotImage
from repro.simnet.messages import Message


@dataclass
class StateTransferRequest(Message):
    """"I hold the log up to ``have_seq``; send me what I am missing."""

    partition: PartitionId = 0
    have_seq: BatchNumber = NO_BATCH


@dataclass
class StateTransferReply(Message):
    """A peer's answer: an optional checkpoint base plus the log suffix.

    ``image``/``certificate`` are present when the requester's ``have_seq``
    lies below the responder's stable checkpoint (or, before any checkpoint
    exists, the uncertified genesis image of the preloaded data).
    ``entries`` is the contiguous log suffix starting right above the image
    (or above ``have_seq`` when no image is needed).

    ``view``/``view_certificate`` advertise the responder's current view and
    the quorum certificate that elected it, so the rejoiner follows the live
    leader immediately (``PbftEngine.adopt_view``) instead of staying in a
    stale view until the next organic view change.  ``responder_tip`` is the
    highest sequence number the responder itself has certified: recovery only
    *completes* once the rejoiner's log has caught up to a responder's tip,
    so a reply from a peer that is itself behind cannot falsely complete it.
    """

    partition: PartitionId = 0
    image: Optional[SnapshotImage] = None
    certificate: Optional[CheckpointCertificate] = None
    entries: Tuple[LogEntry, ...] = ()
    view: int = 0
    view_certificate: Optional[ViewChangeCertificate] = None
    responder_tip: BatchNumber = NO_BATCH
