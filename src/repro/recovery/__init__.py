"""Checkpointing, log compaction and crash recovery.

Long-running TransEdge deployments cannot keep the full SMR log and every
version of every key in memory, and a crashed replica must be able to rejoin
without replaying history from the beginning.  This package adds the classic
BFT answer to both problems, layered on the existing building blocks:

* :class:`~repro.recovery.snapshot.SnapshotImage` /
  :class:`~repro.recovery.snapshot.SnapshotStore` — restorable images of a
  partition replica's state (store contents with versions, in-flight prepared
  transactions, the certified header at the checkpoint batch);
* :class:`~repro.recovery.checkpoint.CheckpointManager` — periodic
  PBFT-style checkpoint agreement: replicas exchange signed
  :class:`~repro.bft.messages.CheckpointVote` messages and a ``2f + 1``
  quorum of matching digests makes a checkpoint *stable*, which triggers
  garbage collection (log truncation, version pruning, engine compaction);
* :class:`~repro.recovery.transfer.RecoveryCoordinator` — the state-transfer
  protocol by which a restarted or lagging replica fetches the latest stable
  checkpoint plus the log suffix from its peers, verifies both (checkpoint
  certificate, per-entry commit certificates, Merkle roots) and rejoins —
  *in the cluster's current view*: replies advertise the responder's
  ``(view, view-change quorum certificate)`` and the rejoiner adopts it
  after verification, so it follows the live leader immediately.

Around this package, the recovery overhaul (PR 3) adds automatic
failure handling in the core layer: a per-replica progress monitor
(:class:`~repro.core.replica.ViewProgressMonitor`) votes out a dead leader
without operator action, 2PC decisions are durable replicated state served
to stranded participants on ``DecisionQuery``, and a newly elected leader
resumes its predecessor's unfinished vote collections from the replicated
prepare groups.

Crash faults themselves are injected at the transport level through
:meth:`repro.simnet.faults.FaultInjector.crash` and orchestrated by
:meth:`repro.core.system.TransEdgeSystem.crash_replica` /
:meth:`~repro.core.system.TransEdgeSystem.restart_replica`.
"""

from repro.recovery.checkpoint import CheckpointCertificate, CheckpointManager
from repro.recovery.messages import StateTransferReply, StateTransferRequest
from repro.recovery.snapshot import SnapshotImage, SnapshotStore
from repro.recovery.transfer import RecoveryCoordinator

__all__ = [
    "CheckpointCertificate",
    "CheckpointManager",
    "RecoveryCoordinator",
    "SnapshotImage",
    "SnapshotStore",
    "StateTransferReply",
    "StateTransferRequest",
]
