"""Conflict-Dependency (CD) vectors.

The CD vector is the heart of TransEdge's dependency-tracking scheme
(Section 4.3 of the paper).  Every batch written by partition ``X`` carries a
vector with one entry per partition: entry ``Y`` is the number of the batch
*at partition Y* in which the distributed transactions that ``X`` just
committed had **prepared** (not where they committed — tracking the prepare
batch is what lets partitions keep committing local batches without waiting
for each other, challenge 2 in Section 4.3.2).  The entry for ``X`` itself is
always the batch's own number, and ``-1`` means "no dependency".

Vectors are combined with a pairwise maximum (Algorithm 1), which folds in
both the direct dependency introduced by a commit record and all transitive
dependencies reported by the participants' own CD vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.common.errors import InvalidTransactionError
from repro.common.ids import NO_BATCH, BatchNumber, PartitionId


@dataclass(frozen=True)
class CDVector:
    """An immutable dependency vector with one entry per partition."""

    entries: Tuple[BatchNumber, ...]

    @classmethod
    def initial(cls, num_partitions: int) -> "CDVector":
        """Vector with no dependencies (every entry is ``-1``)."""
        return cls(entries=tuple([NO_BATCH] * num_partitions))

    @classmethod
    def from_entries(cls, entries: Sequence[BatchNumber]) -> "CDVector":
        return cls(entries=tuple(int(entry) for entry in entries))

    def __post_init__(self) -> None:
        if not self.entries:
            raise InvalidTransactionError("a CD vector needs at least one entry")

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, partition: PartitionId) -> BatchNumber:
        return self.entries[partition]

    def with_entry(self, partition: PartitionId, batch: BatchNumber) -> "CDVector":
        """Return a copy with the entry for ``partition`` replaced."""
        entries: List[BatchNumber] = list(self.entries)
        entries[partition] = batch
        return CDVector(entries=tuple(entries))

    def pairwise_max(self, other: "CDVector") -> "CDVector":
        """Entry-wise maximum — the combine step of Algorithm 1."""
        if len(other) != len(self):
            raise InvalidTransactionError(
                f"cannot combine CD vectors of lengths {len(self)} and {len(other)}"
            )
        return CDVector(
            entries=tuple(max(a, b) for a, b in zip(self.entries, other.entries))
        )

    def dominates(self, other: "CDVector") -> bool:
        """True when every entry of ``self`` is >= the matching entry of ``other``."""
        if len(other) != len(self):
            return False
        return all(a >= b for a, b in zip(self.entries, other.entries))

    def dependencies(self) -> Tuple[Tuple[PartitionId, BatchNumber], ...]:
        """Non-empty entries as ``(partition, batch)`` pairs."""
        return tuple(
            (partition, batch)
            for partition, batch in enumerate(self.entries)
            if batch != NO_BATCH
        )

    def payload(self) -> List[int]:
        """Encodable form used inside signed batch headers."""
        return [int(entry) for entry in self.entries]


def combine_all(base: CDVector, reported: Iterable[CDVector]) -> CDVector:
    """Fold ``reported`` vectors into ``base`` with pairwise maxima (Algorithm 1)."""
    combined = base
    for vector in reported:
        combined = combined.pairwise_max(vector)
    return combined
