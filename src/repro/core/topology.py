"""Deployment topology: clusters, their members and current leaders.

The topology is the (trusted, setup-time) directory of the deployment: which
replicas form each partition's cluster and which replica is currently acting
as that cluster's leader.  Clients consult it to route requests; it is
updated when a cluster goes through a view change.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ConfigurationError
from repro.common.ids import PartitionId, ReplicaId

#: Callback invoked when a cluster's leader changes: ``(partition, leader)``.
LeaderChangeListener = Callable[[PartitionId, ReplicaId], None]


class ClusterTopology:
    """Static membership plus the dynamic leader of every cluster."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self._config = config
        self._members: Dict[PartitionId, Tuple[ReplicaId, ...]] = {}
        self._leaders: Dict[PartitionId, ReplicaId] = {}
        self._leader_listeners: List[LeaderChangeListener] = []
        for partition in range(config.num_partitions):
            members = tuple(
                ReplicaId(partition, index) for index in range(config.cluster_size)
            )
            self._members[partition] = members
            self._leaders[partition] = members[0]

    @property
    def num_partitions(self) -> int:
        return self._config.num_partitions

    def partitions(self) -> List[PartitionId]:
        return list(range(self._config.num_partitions))

    def members(self, partition: PartitionId) -> Tuple[ReplicaId, ...]:
        self._check_partition(partition)
        return self._members[partition]

    def leader(self, partition: PartitionId) -> ReplicaId:
        self._check_partition(partition)
        return self._leaders[partition]

    def set_leader(self, partition: PartitionId, leader: ReplicaId) -> None:
        """Record a leader change (driven by a cluster's view change)."""
        self._check_partition(partition)
        if leader not in self._members[partition]:
            raise ConfigurationError(f"{leader} is not a member of partition {partition}")
        if self._leaders[partition] == leader:
            return
        self._leaders[partition] = leader
        for listener in list(self._leader_listeners):
            listener(partition, leader)

    def subscribe_leader_changes(self, listener: LeaderChangeListener) -> None:
        """Register a callback for leader changes (clients fail over with it).

        The topology is the deployment's trusted directory, so this models a
        directory-push: a client learns of the rotation as soon as the
        cluster records it instead of discovering it by timeout.
        """
        self._leader_listeners.append(listener)

    def followers(self, partition: PartitionId) -> Tuple[ReplicaId, ...]:
        """Cluster members other than the current leader."""
        leader = self.leader(partition)
        return tuple(member for member in self.members(partition) if member != leader)

    def all_replicas(self) -> List[ReplicaId]:
        return [member for members in self._members.values() for member in members]

    def _check_partition(self, partition: PartitionId) -> None:
        if partition not in self._members:
            raise ConfigurationError(f"unknown partition {partition}")
