"""Batches and their segments — the unit written to the SMR log.

A TransEdge batch (Figure 2 of the paper) has four segments:

* ``local`` — local transactions, committed as soon as the batch is written;
* ``prepared`` — distributed transactions 2PC-prepared as of this batch;
* ``committed`` — commit/abort records of distributed transactions whose
  prepare group became ready (all votes collected), added per the ordering
  constraint of Definition 4.1;
* the **read-only segment**: the Conflict-Dependency vector, the Last
  Committed Epoch and the Merkle root of the partition state after this
  batch, plus a leader timestamp for the freshness mechanism of §4.4.2.

The batch digest (header payload + content digest) is what intra-cluster
consensus agrees on, so the certificate produced by the BFT layer
simultaneously certifies the read-only segment — this is how a single node
can later prove the authenticity of its read-only responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Optional, Tuple

from repro.bft.quorum import CommitCertificate
from repro.common.ids import NO_BATCH, BatchNumber, PartitionId
from repro.common.types import Key, Value
from repro.crypto.hashing import Digest, digest_of
from repro.crypto.signatures import KeyRegistry, Signature
from repro.core.cdvector import CDVector
from repro.core.transaction import TxnPayload
from repro.storage.partitioner import HashPartitioner


@dataclass(frozen=True)
class PreparedRecord:
    """A distributed transaction prepared in this batch at this partition."""

    txn: TxnPayload
    coordinator: PartitionId

    def payload(self) -> dict:
        return {"txn": self.txn.payload(), "coordinator": self.coordinator}


@dataclass(frozen=True)
class PreparedVote:
    """One partition's 2PC vote for a distributed transaction.

    A positive vote carries the batch number in which the transaction
    prepared at the voting partition, that batch's CD vector and the commit
    certificate of that batch — the pieces a remote cluster needs to verify
    the vote and to derive its own dependencies (Section 4.3.3c).

    A negative vote has no certified header to prove its provenance, so the
    voting partition's leader *signs* it (``signature`` over
    :meth:`abort_signing_payload`): validators of an abort commit record
    check the signature against the voting cluster's membership, which stops
    a byzantine coordinator from forging a "participant voted no" and
    unilaterally aborting a fully-prepared transaction.  Like a positive
    vote's header, the signature proves itself and stays out of
    :meth:`payload` (and therefore out of batch and image digests).
    """

    txn_id: str
    partition: PartitionId
    vote: bool
    prepare_batch: BatchNumber = NO_BATCH
    cd_vector: Optional[CDVector] = None
    header: Optional["CertifiedHeader"] = None
    signature: Optional["Signature"] = None

    def payload(self) -> dict:
        return {
            "txn_id": self.txn_id,
            "partition": self.partition,
            "vote": self.vote,
            "prepare_batch": int(self.prepare_batch),
            "cd_vector": self.cd_vector.payload() if self.cd_vector else None,
        }

    def abort_signing_payload(self) -> list:
        """Canonical payload a negative vote's signature covers."""
        return ["abort-vote", self.txn_id, int(self.partition)]


@dataclass(frozen=True)
class CommitRecord:
    """The decision for a distributed transaction, with the collected votes."""

    txn: TxnPayload
    coordinator: PartitionId
    decision: bool
    prepare_batch: BatchNumber
    votes: Mapping[PartitionId, PreparedVote] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.decision

    def payload(self) -> dict:
        return {
            "txn": self.txn.payload(),
            "coordinator": self.coordinator,
            "decision": self.decision,
            "prepare_batch": int(self.prepare_batch),
            "votes": {str(p): vote.payload() for p, vote in sorted(self.votes.items())},
        }

    def reported_vectors(self) -> Tuple[CDVector, ...]:
        """CD vectors reported by positive votes (input to Algorithm 1)."""
        return tuple(
            vote.cd_vector
            for _, vote in sorted(self.votes.items())
            if vote.vote and vote.cd_vector is not None
        )


@dataclass(frozen=True)
class ReadOnlySegment:
    """Read-only metadata of a batch: CD vector, LCE, Merkle root, timestamp."""

    cd_vector: CDVector
    lce: BatchNumber
    merkle_root: Digest
    timestamp_ms: float

    def payload(self) -> dict:
        return {
            "cd_vector": self.cd_vector.payload(),
            "lce": int(self.lce),
            "merkle_root": self.merkle_root,
            "timestamp_ms": float(self.timestamp_ms),
        }


@dataclass(frozen=True)
class Batch:
    """One entry of a partition's SMR log."""

    partition: PartitionId
    number: BatchNumber
    local_txns: Tuple[TxnPayload, ...] = ()
    prepared: Tuple[PreparedRecord, ...] = ()
    committed: Tuple[CommitRecord, ...] = ()
    read_only: ReadOnlySegment = None  # type: ignore[assignment]

    # -- digests --------------------------------------------------------------
    #
    # Digests are cached: batches are immutable and the digest of a large
    # batch is recomputed many times (consensus, validation, delivery).

    @cached_property
    def _content_digest(self) -> Digest:
        return digest_of(
            {
                "local": [txn.payload() for txn in self.local_txns],
                "prepared": [record.payload() for record in self.prepared],
                "committed": [record.payload() for record in self.committed],
            }
        )

    def content_digest(self) -> Digest:
        """Digest binding all transactions carried by this batch."""
        return self._content_digest

    def header_payload(self) -> dict:
        return {
            "partition": self.partition,
            "number": int(self.number),
            "read_only": self.read_only.payload(),
        }

    @cached_property
    def _digest(self) -> Digest:
        return digest_of({"header": self.header_payload(), "content": self.content_digest()})

    def digest(self) -> Digest:
        """The digest agreed on by intra-cluster consensus."""
        return self._digest

    # -- derived views ----------------------------------------------------------

    def size(self) -> int:
        """Number of transactions carried by the batch (all segments)."""
        return len(self.local_txns) + len(self.prepared) + len(self.committed)

    def visible_writes(self, partitioner: HashPartitioner) -> Dict[Key, Value]:
        """Write-sets made visible by this batch on this partition.

        Local transactions become visible in their own batch; distributed
        transactions become visible in the batch carrying their (positive)
        commit record.  Prepared-but-undecided writes are *not* visible — see
        DESIGN.md for why this interpretation keeps the certified Merkle root
        consistent with the values served to read-only clients.
        """
        updates: Dict[Key, Value] = {}
        for txn in self.local_txns:
            updates.update(txn.writes_in(self.partition, partitioner))
        for record in self.committed:
            if record.decision:
                updates.update(record.txn.writes_in(self.partition, partitioner))
        return updates

    def certified_header(self, certificate: CommitCertificate) -> "CertifiedHeader":
        """Bundle the read-only segment with its consensus certificate."""
        return CertifiedHeader(
            partition=self.partition,
            number=self.number,
            read_only=self.read_only,
            content_digest=self.content_digest(),
            certificate=certificate,
        )


@dataclass(frozen=True)
class CertifiedHeader:
    """A batch header plus the consensus certificate proving agreement on it.

    This is what leaders attach to read-only responses and to 2PC messages:
    the receiving side recomputes the batch digest from the header fields and
    the content digest, then checks the certificate's signatures cover it.
    """

    partition: PartitionId
    number: BatchNumber
    read_only: ReadOnlySegment
    content_digest: Digest
    certificate: CommitCertificate

    @property
    def cd_vector(self) -> CDVector:
        return self.read_only.cd_vector

    @property
    def lce(self) -> BatchNumber:
        return self.read_only.lce

    @property
    def merkle_root(self) -> Digest:
        return self.read_only.merkle_root

    @property
    def timestamp_ms(self) -> float:
        return self.read_only.timestamp_ms

    @cached_property
    def _digest(self) -> Digest:
        header_payload = {
            "partition": self.partition,
            "number": int(self.number),
            "read_only": self.read_only.payload(),
        }
        return digest_of({"header": header_payload, "content": self.content_digest})

    def digest(self) -> Digest:
        # Cached: headers are immutable and re-verified many times (2PC vote
        # validation, read-only responses, state transfer).
        return self._digest

    def verify(
        self,
        registry: KeyRegistry,
        cluster_members,
        required: int,
    ) -> bool:
        """Check the certificate matches this header and carries enough signatures."""
        if self.certificate.digest != self.digest():
            return False
        if self.certificate.partition != self.partition:
            return False
        return self.certificate.verify(registry, cluster_members, required)
