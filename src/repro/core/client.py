"""TransEdge client.

The client implements the interface of Section 2 of the paper: it builds a
transaction by reading from the accessed partitions and buffering writes,
then submits the whole object for commitment to a coordinator cluster; and it
runs the snapshot read-only protocol of Section 4 — one round against a
single node per partition, with an optional second round to satisfy missing
dependencies.

Workflows are written as generators (see :mod:`repro.simnet.proc`): a driver
process composes them with ``yield from``::

    def body():
        result = yield from client.read_write_txn(["a"], {"b": b"1"})
        snapshot = yield from client.read_only_txn(["a", "b"])

Besides the TransEdge protocols, the client also implements the two
baselines used in the paper's evaluation: running a read-only transaction as
a regular (2PC/BFT) transaction, and the Augustus-style quorum read with
shared locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.ids import NO_BATCH, BatchNumber, ClientId, PartitionId, ReplicaId, TxnIdGenerator
from repro.common.types import CommitResult, Key, ReadOnlyResult, TxnStatus, Value
from repro.core.messages import (
    CommitReply,
    CommitRequest,
    LeaderComplaint,
    LockReadReply,
    LockReadRequest,
    LockReleaseMessage,
    ReadOnlyReply,
    ReadOnlyRequest,
    ReadReply,
    ReadRequest,
    SnapshotReply,
    SnapshotRequest,
)
from repro.core.readonly import (
    PartitionSnapshot,
    assemble_result,
    find_unsatisfied_dependencies,
    verify_snapshot,
)
from repro.core.topology import ClusterTopology
from repro.core.transaction import TxnPayload
from repro.simnet.latency import client_home_partition
from repro.simnet.node import SimEnvironment
from repro.simnet.proc import Call, Gather, ProcessNode, Sleep
from repro.storage.partitioner import HashPartitioner


@dataclass
class ClientStats:
    """Per-client counters, aggregated by the benchmark harness."""

    committed: int = 0
    aborted: int = 0
    timeouts: int = 0
    read_only_completed: int = 0
    read_only_second_rounds: int = 0
    read_only_verification_failures: int = 0


class TransEdgeClient(ProcessNode):
    """A client process attached to the simulated edge network."""

    def __init__(
        self,
        name: str,
        env: SimEnvironment,
        topology: ClusterTopology,
        partitioner: HashPartitioner,
        request_timeout_ms: float = 60_000.0,
        commit_timeout_ms: float = 120_000.0,
    ) -> None:
        super().__init__(ClientId(name), env)
        self.name = name
        self.config: SystemConfig = env.config
        self.topology = topology
        self.partitioner = partitioner
        self.stats = ClientStats()
        self.home_partition: PartitionId = client_home_partition(
            ClientId(name), env.config.num_partitions
        )
        self._txn_ids = TxnIdGenerator(name)
        self._request_timeout_ms = request_timeout_ms
        self._commit_timeout_ms = commit_timeout_ms

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------

    def _leader_of(self, partition: PartitionId) -> ReplicaId:
        return self.topology.leader(partition)

    def _coordinator_for(self, partitions: Iterable[PartitionId]) -> PartitionId:
        """Pick the coordinator cluster: the home partition when accessed, else the smallest."""
        accessed = sorted(partitions)
        if self.home_partition in accessed:
            return self.home_partition
        return accessed[0]

    def next_txn_id(self) -> str:
        return self._txn_ids.next()

    # ------------------------------------------------------------------
    # read-write transactions
    # ------------------------------------------------------------------

    def read_write_txn(
        self,
        read_keys: Sequence[Key],
        writes: Mapping[Key, Value],
    ) -> Generator[object, object, CommitResult]:
        """Run one read-write transaction and return its :class:`CommitResult`."""
        txn_id = self.next_txn_id()
        start = self.now

        reads: Dict[Key, BatchNumber] = {}
        if read_keys:
            grouped = self.partitioner.group_keys(read_keys)
            calls = [
                Call(
                    self._leader_of(partition),
                    ReadRequest(keys=tuple(sorted(keys))),
                )
                for partition, keys in sorted(grouped.items())
            ]
            replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)
            for reply in replies:
                if reply is None:
                    self.stats.timeouts += 1
                    return CommitResult(
                        txn_id=txn_id,
                        status=TxnStatus.ABORTED,
                        abort_reason="read phase timed out",
                        latency_ms=self.now - start,
                    )
                assert isinstance(reply, ReadReply)
                reads.update(reply.versions)
            for key in read_keys:
                reads.setdefault(key, NO_BATCH)

        txn = TxnPayload(txn_id=txn_id, reads=reads, writes=dict(writes), client=self.name)
        coordinator = self._coordinator_for(txn.partitions(self.partitioner))
        reply = yield Call(
            self._leader_of(coordinator),
            CommitRequest(txn=txn),
            timeout_ms=self._commit_timeout_ms,
        )
        latency = self.now - start
        if reply is None:
            self.stats.timeouts += 1
            # The leader went silent on us: tell the whole cluster (classic
            # PBFT client behaviour).  Followers treat the complaint as
            # progress-monitor evidence, so a leader that crashed while idle
            # is still suspected and replaced automatically.
            for member in self.topology.members(coordinator):
                self.send(member, LeaderComplaint(partition=coordinator))
            return CommitResult(
                txn_id=txn_id,
                status=TxnStatus.ABORTED,
                abort_reason="commit reply timed out",
                latency_ms=latency,
            )
        assert isinstance(reply, CommitReply)
        if reply.status is TxnStatus.COMMITTED:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        return CommitResult(
            txn_id=txn_id,
            status=reply.status,
            commit_batch=reply.commit_batch,
            latency_ms=latency,
            abort_reason=reply.abort_reason,
        )

    # ------------------------------------------------------------------
    # TransEdge snapshot read-only transactions (Section 4)
    # ------------------------------------------------------------------

    def read_only_txn(
        self, keys: Sequence[Key]
    ) -> Generator[object, object, ReadOnlyResult]:
        """Run one snapshot read-only transaction (at most two rounds)."""
        txn_id = self.next_txn_id()
        start = self.now
        grouped = self.partitioner.group_keys(keys)
        ordered_partitions = sorted(grouped)

        # Round 1: one request to a single node of each accessed partition.
        calls = [
            Call(
                self._leader_of(partition),
                ReadOnlyRequest(keys=tuple(sorted(grouped[partition]))),
            )
            for partition in ordered_partitions
        ]
        replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)

        snapshots: Dict[PartitionId, PartitionSnapshot] = {}
        verified = True
        for partition, reply in zip(ordered_partitions, replies):
            snapshot = yield from self._verified_snapshot(
                partition, tuple(sorted(grouped[partition])), reply, is_round_two=False
            )
            if snapshot is None:
                verified = False
                snapshot = PartitionSnapshot(
                    partition=partition, keys=tuple(sorted(grouped[partition]))
                )
            snapshots[partition] = snapshot

        round1_end = self.now
        rounds = 1
        required = find_unsatisfied_dependencies(snapshots)
        if required:
            rounds = 2
            round2_calls = []
            round2_partitions = sorted(required)
            for partition in round2_partitions:
                round2_calls.append(
                    Call(
                        self._leader_of(partition),
                        SnapshotRequest(
                            keys=tuple(sorted(grouped[partition])),
                            required_prepare_batch=required[partition],
                        ),
                    )
                )
            round2_replies = yield Gather(round2_calls, timeout_ms=self._request_timeout_ms)
            for partition, reply in zip(round2_partitions, round2_replies):
                snapshot = yield from self._verified_snapshot(
                    partition,
                    tuple(sorted(grouped[partition])),
                    reply,
                    is_round_two=True,
                    required=required[partition],
                )
                if snapshot is None:
                    verified = False
                else:
                    snapshots[partition] = snapshot
            self.stats.read_only_second_rounds += 1

        end = self.now
        values, versions = assemble_result(snapshots, list(keys))
        self.stats.read_only_completed += 1
        return ReadOnlyResult(
            txn_id=txn_id,
            values=values,
            versions=versions,
            rounds=rounds,
            latency_ms=end - start,
            round2_latency_ms=(end - round1_end) if rounds == 2 else 0.0,
            verified=verified,
        )

    def _verified_snapshot(
        self,
        partition: PartitionId,
        keys: Tuple[Key, ...],
        reply: object,
        is_round_two: bool,
        required: BatchNumber = NO_BATCH,
    ) -> Generator[object, object, Optional[PartitionSnapshot]]:
        """Turn a reply into a verified snapshot, retrying other replicas on failure.

        Commit-freedom means a single node answers; if that node is byzantine
        (bad proof, forged header) the client simply asks another member of
        the same cluster.
        """
        reply_type = SnapshotReply if is_round_two else ReadOnlyReply
        candidates = [
            member
            for member in self.topology.members(partition)
            if member != self._leader_of(partition)
        ]
        attempt = 0
        while True:
            snapshot: Optional[PartitionSnapshot] = None
            if reply is not None and isinstance(reply, reply_type):
                snapshot = PartitionSnapshot(
                    partition=partition,
                    keys=keys,
                    values=dict(reply.values),
                    versions=dict(reply.versions),
                    proofs=dict(reply.proofs),
                    header=reply.header,
                )
                if verify_snapshot(
                    snapshot, self.verifier, self.topology, self.config, now_ms=self.now
                ):
                    return snapshot
                self.stats.read_only_verification_failures += 1
            if attempt >= len(candidates):
                return None
            replica = candidates[attempt]
            attempt += 1
            if is_round_two:
                request = SnapshotRequest(keys=keys, required_prepare_batch=required)
            else:
                request = ReadOnlyRequest(keys=keys)
            reply = yield Call(replica, request, timeout_ms=self._request_timeout_ms)

    # ------------------------------------------------------------------
    # Baseline 1: read-only transactions as regular 2PC/BFT transactions
    # ------------------------------------------------------------------

    def read_only_as_regular_txn(
        self, keys: Sequence[Key]
    ) -> Generator[object, object, ReadOnlyResult]:
        """Run a read-only transaction through the full read-write commit path.

        This is how the paper's 2PC/BFT baseline executes read-only
        transactions: the read set is validated and committed with BFT
        consensus in every accessed cluster plus 2PC coordination between
        them (Section 3.5).
        """
        txn_id = self.next_txn_id()
        start = self.now
        grouped = self.partitioner.group_keys(keys)
        calls = [
            Call(self._leader_of(partition), ReadRequest(keys=tuple(sorted(partition_keys))))
            for partition, partition_keys in sorted(grouped.items())
        ]
        replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)
        values: Dict[Key, Optional[Value]] = {key: None for key in keys}
        versions: Dict[Key, BatchNumber] = {key: NO_BATCH for key in keys}
        for reply in replies:
            if reply is None:
                continue
            assert isinstance(reply, ReadReply)
            values.update(reply.values)
            versions.update(reply.versions)

        txn = TxnPayload(
            txn_id=txn_id,
            reads=dict(versions),
            writes={},
            client=self.name,
        )
        coordinator = self._coordinator_for(txn.partitions(self.partitioner))
        reply = yield Call(
            self._leader_of(coordinator),
            CommitRequest(txn=txn),
            timeout_ms=self._commit_timeout_ms,
        )
        end = self.now
        committed = reply is not None and reply.status is TxnStatus.COMMITTED
        if committed:
            self.stats.read_only_completed += 1
        else:
            self.stats.aborted += 1
        return ReadOnlyResult(
            txn_id=txn_id,
            values=values,
            versions=versions,
            rounds=1,
            latency_ms=end - start,
            verified=committed,
        )

    # ------------------------------------------------------------------
    # Baseline 2: Augustus-style quorum reads with shared locks
    # ------------------------------------------------------------------

    def augustus_read_only_txn(
        self,
        keys: Sequence[Key],
        max_attempts: int = 12,
        backoff_ms: float = 2.0,
    ) -> Generator[object, object, ReadOnlyResult]:
        """Run a read-only transaction the way Augustus does.

        The client contacts a ``2f + 1`` quorum of every accessed partition;
        each contacted replica takes shared locks on the read keys before
        answering.  A replica whose keys are write-locked by an in-flight
        read-write transaction denies the shared lock, in which case the
        client releases everything, backs off and retries — which is why
        Augustus read-only latency degrades under write load and with large
        read sets (Figures 5-7), and why its shared locks abort conflicting
        writers while held (Table 1).
        """
        txn_id = self.next_txn_id()
        start = self.now
        grouped = self.partitioner.group_keys(keys)
        quorum = self.config.quorum_size

        values: Dict[Key, Optional[Value]] = {key: None for key in keys}
        versions: Dict[Key, BatchNumber] = {key: NO_BATCH for key in keys}
        rounds = 0
        complete = False

        while rounds < max_attempts and not complete:
            rounds += 1
            attempt_id = f"{txn_id}/a{rounds}"
            calls: List[Call] = []
            call_partitions: List[PartitionId] = []
            contacted: List[ReplicaId] = []
            for partition, partition_keys in sorted(grouped.items()):
                members = self.topology.members(partition)[:quorum]
                for member in members:
                    calls.append(
                        Call(
                            member,
                            LockReadRequest(txn_id=attempt_id, keys=tuple(sorted(partition_keys))),
                        )
                    )
                    call_partitions.append(partition)
                    contacted.append(member)

            replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)

            granted_counts: Dict[PartitionId, int] = {}
            for partition, reply in zip(call_partitions, replies):
                if reply is None or not isinstance(reply, LockReadReply):
                    continue
                if reply.granted:
                    granted_counts[partition] = granted_counts.get(partition, 0) + 1
                    values.update(reply.values)
                    versions.update(reply.versions)
            complete = all(granted_counts.get(partition, 0) >= quorum for partition in grouped)

            # Release the shared locks everywhere (fire and forget).
            for member in contacted:
                self.send(member, LockReleaseMessage(txn_id=attempt_id))
            if not complete and rounds < max_attempts:
                yield Sleep(backoff_ms * rounds)

        end = self.now
        self.stats.read_only_completed += 1
        return ReadOnlyResult(
            txn_id=txn_id,
            values=values,
            versions=versions,
            rounds=rounds,
            latency_ms=end - start,
            verified=complete,
        )
