"""TransEdge client.

The client implements the interface of Section 2 of the paper: it builds a
transaction by reading from the accessed partitions and buffering writes,
then submits the whole object for commitment to a coordinator cluster; and it
runs the snapshot read-only protocol of Section 4 — one round against a
single node per partition, with an optional second round to satisfy missing
dependencies.

Workflows are written as generators (see :mod:`repro.simnet.proc`): a driver
process composes them with ``yield from``::

    def body():
        result = yield from client.read_write_txn(["a"], {"b": b"1"})
        snapshot = yield from client.read_only_txn(["a", "b"])

Besides the TransEdge protocols, the client also implements the two
baselines used in the paper's evaluation: running a read-only transaction as
a regular (2PC/BFT) transaction, and the Augustus-style quorum read with
shared locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.ids import (
    NO_BATCH,
    BatchNumber,
    ClientId,
    EdgeProxyId,
    PartitionId,
    ReplicaId,
    TxnIdGenerator,
)
from repro.common.types import CommitResult, Key, ReadOnlyResult, TxnStatus, Value
from repro.core.messages import (
    CommitReply,
    CommitRequest,
    LeaderComplaint,
    LockReadReply,
    LockReadRequest,
    LockReleaseMessage,
    ReadOnlyReply,
    ReadOnlyRequest,
    ReadReply,
    ReadRequest,
    ReplicaCommitReply,
    SnapshotReply,
    SnapshotRequest,
)
from repro.core.readonly import (
    PartitionSnapshot,
    assemble_result,
    find_unsatisfied_dependencies,
    verify_snapshot,
)
from repro.core.topology import ClusterTopology
from repro.core.transaction import TxnPayload
from repro.edge.messages import EdgeReadReply, EdgeReadRequest
from repro.edge.routing import EdgeRouter
from repro.simnet.latency import client_home_partition
from repro.simnet.messages import RequestMessage
from repro.simnet.node import SimEnvironment
from repro.simnet.proc import Call, Gather, ProcessNode, Sleep
from repro.storage.partitioner import HashPartitioner

#: Abort reasons that *place* a commit request (wrong node, node
#: mid-recovery) rather than decide the transaction.  They carry no
#: information about the outcome: an earlier attempt — or the failover
#: re-send of this very request — may already sit admitted at the real
#: leader, so treating one as a final abort can contradict a commit the
#: cluster goes on to certify.
POSITIONAL_REFUSALS = frozenset(
    {
        "not the current leader of this partition",
        "replica is recovering, retry later",
    }
)


@dataclass
class ClientStats:
    """Per-client counters, aggregated by the benchmark harness."""

    committed: int = 0
    aborted: int = 0
    timeouts: int = 0
    read_only_completed: int = 0
    read_only_second_rounds: int = 0
    read_only_extra_repair_rounds: int = 0
    read_only_verification_failures: int = 0
    edge_reads_attempted: int = 0
    edge_reads_served: int = 0
    edge_relays: int = 0
    edge_fallbacks: int = 0
    edge_verification_failures: int = 0
    proxies_blacklisted: int = 0
    leader_failovers: int = 0
    commit_retries: int = 0
    #: Positional refusals (not-leader / mid-recovery) retried instead of
    #: being surfaced as authoritative aborts.
    commit_leader_refusals: int = 0
    #: Commits accepted from f+1 matching ReplicaCommitReply messages
    #: (instead of, or before, the leader's own CommitReply).
    replica_quorum_commits: int = 0


class TransEdgeClient(ProcessNode):
    """A client process attached to the simulated edge network."""

    #: Bound on snapshot dependency-repair rounds per read-only transaction.
    #: One round suffices except when a repair snapshot races a distributed
    #: commit whose other-partition half landed in a later batch; see
    #: ``read_only_txn``.
    MAX_REPAIR_ROUNDS = 3

    def __init__(
        self,
        name: str,
        env: SimEnvironment,
        topology: ClusterTopology,
        partitioner: HashPartitioner,
        request_timeout_ms: float = 60_000.0,
        commit_timeout_ms: float = 120_000.0,
        edge_proxies: Sequence[EdgeProxyId] = (),
    ) -> None:
        super().__init__(ClientId(name), env)
        self.name = name
        self.config: SystemConfig = env.config
        self.topology = topology
        self.partitioner = partitioner
        self.stats = ClientStats()
        self.home_partition: PartitionId = client_home_partition(
            ClientId(name), env.config.num_partitions
        )
        self._txn_ids = TxnIdGenerator(name)
        self._request_timeout_ms = request_timeout_ms
        self._commit_timeout_ms = commit_timeout_ms
        #: Edge read-proxy routing (None when the edge tier is disabled).
        self.edge_router: Optional[EdgeRouter] = None
        if edge_proxies and self.config.edge.enabled:
            self.edge_router = EdgeRouter(
                edge_proxies,
                home_partition=self.home_partition,
                num_partitions=self.config.num_partitions,
                policy=self.config.edge.routing,
            )
        # Proactive leader failover: requests in flight towards a partition's
        # leader, re-sent to the successor the moment a view change lands in
        # the topology (instead of waiting out the request timeout).
        self._pending_leader_requests: Dict[str, Tuple[PartitionId, RequestMessage]] = {}
        if self.config.failover.enabled:
            topology.subscribe_leader_changes(self._on_leader_change)
        # f+1 replica commit-reply quorum (classic PBFT client acceptance):
        # per in-flight transaction, the coordinator partition and the
        # current attempt's request id; per-outcome voter sets; and outcomes
        # whose quorum completed (kept until the commit loop consumes them).
        self._commit_quorum_waits: Dict[str, Tuple[PartitionId, str]] = {}
        self._commit_quorum_votes: Dict[
            str, Dict[Tuple[TxnStatus, BatchNumber, str], set]
        ] = {}
        self._commit_quorum_outcomes: Dict[str, Tuple[TxnStatus, BatchNumber, str]] = {}
        if self.config.failover.replica_commit_replies:
            self.register_handler(ReplicaCommitReply, self._on_replica_commit_reply)

    # ------------------------------------------------------------------
    # routing helpers
    # ------------------------------------------------------------------

    def _leader_of(self, partition: PartitionId) -> ReplicaId:
        return self.topology.leader(partition)

    def _leader_call(
        self,
        partition: PartitionId,
        request: RequestMessage,
        timeout_ms: Optional[float] = None,
    ) -> Call:
        """A :class:`Call` to ``partition``'s leader, tracked for failover."""
        if self.config.failover.enabled:
            if len(self._pending_leader_requests) > 64:
                # Lazy GC: answered requests leave no wait behind.
                self._pending_leader_requests = {
                    request_id: entry
                    for request_id, entry in self._pending_leader_requests.items()
                    if request_id in self._waits_by_request
                }
            self._pending_leader_requests[request.request_id] = (partition, request)
        return Call(self._leader_of(partition), request, timeout_ms=timeout_ms)

    def _on_leader_change(self, partition: PartitionId, leader: ReplicaId) -> None:
        """The cluster rotated: re-send pending requests to the new leader.

        Replies correlate by request id, so the first answer — old leader or
        new — resumes the waiting workflow and later duplicates are ignored.
        The new leader answers re-sent commit requests from its replicated
        decision records (see ``LeaderRole._answer_duplicate_commit_request``)
        rather than re-admitting them.
        """
        finished = [
            request_id
            for request_id in self._pending_leader_requests
            if request_id not in self._waits_by_request
        ]
        for request_id in finished:
            del self._pending_leader_requests[request_id]
        for request_id, (target, request) in list(self._pending_leader_requests.items()):
            if target == partition:
                self.stats.leader_failovers += 1
                self.send(leader, request)

    def _on_replica_commit_reply(self, message: ReplicaCommitReply, src: object) -> None:
        """Tally per-replica outcome reports; accept at f+1 matching votes.

        Votes only count from distinct replicas of the transaction's
        coordinator cluster (at most ``f`` of which are faulty, so ``f + 1``
        matching reports contain at least one honest one).  When the quorum
        completes while the commit workflow is still waiting, a synthesized
        :class:`CommitReply` resumes it immediately; otherwise the outcome
        is stashed and ``_commit_with_retry`` consumes it before its next
        attempt.  Reports for transactions this client is not waiting on
        (late duplicates, answered retries) are dropped.
        """
        entry = self._commit_quorum_waits.get(message.txn_id)
        if entry is None or message.txn_id in self._commit_quorum_outcomes:
            return
        coordinator, request_id = entry
        if message.partition != coordinator:
            return
        if src not in self.topology.members(coordinator):
            return
        outcome = (message.status, message.commit_batch, message.abort_reason)
        voters = self._commit_quorum_votes.setdefault(message.txn_id, {}).setdefault(
            outcome, set()
        )
        voters.add(src)
        if len(voters) < self.config.certificate_size:
            return
        self._commit_quorum_outcomes[message.txn_id] = outcome
        self.stats.replica_quorum_commits += 1
        if request_id in self._waits_by_request:
            self._on_reply(self._quorum_commit_reply(message.txn_id, request_id), src)

    def _quorum_commit_reply(self, txn_id: str, request_id: str) -> CommitReply:
        """The request-correlated reply a completed f+1 quorum stands for."""
        status, commit_batch, abort_reason = self._commit_quorum_outcomes[txn_id]
        return CommitReply(
            request_id=request_id,
            txn_id=txn_id,
            status=status,
            commit_batch=commit_batch,
            abort_reason=abort_reason,
        )

    def _coordinator_for(self, partitions: Iterable[PartitionId]) -> PartitionId:
        """Pick the coordinator cluster: the home partition when accessed, else the smallest."""
        accessed = sorted(partitions)
        if self.home_partition in accessed:
            return self.home_partition
        return accessed[0]

    def next_txn_id(self) -> str:
        return self._txn_ids.next()

    # ------------------------------------------------------------------
    # causal tracing (repro.obs)
    # ------------------------------------------------------------------

    def _trace_begin(self, kind: str, txn_id: str):
        """Open a transaction's root span and make it the process's context.

        The transaction id is the trace id, so a chaos failure naming a
        transaction can be joined directly against the trace store.  Returns
        ``None`` (and does nothing) when tracing is disabled.
        """
        obs = self.env.obs
        if not obs.tracing:
            return None
        span = obs.tracer.begin_trace(txn_id, kind, str(self.node_id))
        process = self._active_process
        if process is not None:
            process.span = span
        self._current_span = span
        return span

    def _trace_end(self, span, status: str = "ok") -> None:
        """Close a transaction's root span and drop it from the process."""
        if span is None:
            return
        self.env.obs.tracer.finish(span, status=status)
        process = self._active_process
        if process is not None and process.span is span:
            process.span = None
        if self._current_span is span:
            self._current_span = None

    # ------------------------------------------------------------------
    # read-write transactions
    # ------------------------------------------------------------------

    def read_write_txn(
        self,
        read_keys: Sequence[Key],
        writes: Mapping[Key, Value],
    ) -> Generator[object, object, CommitResult]:
        """Run one read-write transaction and return its :class:`CommitResult`."""
        txn_id = self.next_txn_id()
        span = self._trace_begin("txn:rw", txn_id)
        result = yield from self._read_write_txn(txn_id, read_keys, writes)
        self._trace_end(
            span, "ok" if result.status is TxnStatus.COMMITTED else "abort"
        )
        return result

    def _read_write_txn(
        self,
        txn_id: str,
        read_keys: Sequence[Key],
        writes: Mapping[Key, Value],
    ) -> Generator[object, object, CommitResult]:
        start = self.now

        reads: Dict[Key, BatchNumber] = {}
        if read_keys:
            grouped = self.partitioner.group_keys(read_keys)
            calls = [
                self._leader_call(partition, ReadRequest(keys=tuple(sorted(keys))))
                for partition, keys in sorted(grouped.items())
            ]
            replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)
            for reply in replies:
                if reply is None:
                    self.stats.timeouts += 1
                    return CommitResult(
                        txn_id=txn_id,
                        status=TxnStatus.ABORTED,
                        abort_reason="read phase timed out",
                        latency_ms=self.now - start,
                    )
                assert isinstance(reply, ReadReply)
                reads.update(reply.versions)
            for key in read_keys:
                reads.setdefault(key, NO_BATCH)

        txn = TxnPayload(txn_id=txn_id, reads=reads, writes=dict(writes), client=self.name)
        coordinator = self._coordinator_for(txn.partitions(self.partitioner))
        reply = yield from self._commit_with_retry(coordinator, txn, complain=True)
        latency = self.now - start
        if reply is None:
            return CommitResult(
                txn_id=txn_id,
                status=TxnStatus.ABORTED,
                abort_reason="commit reply timed out",
                latency_ms=latency,
            )
        assert isinstance(reply, CommitReply)
        if reply.status is TxnStatus.COMMITTED:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        return CommitResult(
            txn_id=txn_id,
            status=reply.status,
            commit_batch=reply.commit_batch,
            latency_ms=latency,
            abort_reason=reply.abort_reason,
        )

    def _commit_with_retry(
        self,
        coordinator: PartitionId,
        txn: TxnPayload,
        complain: bool,
    ) -> Generator[object, object, Optional[CommitReply]]:
        """Submit ``txn`` for commitment, retrying timed-out attempts.

        With the reliable channel enabled the flat commit timeout degrades
        gracefully: each timed-out attempt backs off and resubmits a fresh
        :class:`CommitRequest` (request ids are single-use at the process
        layer).  Resubmission is duplicate-safe — the coordinator's leader
        answers repeats of an already-decided transaction from its replicated
        ``decided``/``local_decided`` records instead of re-admitting them.
        With reliability disabled this is exactly the old single attempt.

        Positional refusals (``POSITIONAL_REFUSALS``: not-leader,
        mid-recovery) are retried like timeouts rather than surfaced as
        aborts — the refusing node never admitted the transaction, but a
        failover re-send or an earlier unanswered attempt may have, so the
        refusal is not an outcome.  When no retry can settle it, the
        attempt ends *unanswered* ("commit reply timed out"), landing in
        the chaos runner's unknown-outcome resolution instead of being
        recorded as an abort that a later read could contradict.

        ``complain`` sends a :class:`LeaderComplaint` to the whole coordinator
        cluster after each timeout (classic PBFT client behaviour): followers
        treat the complaint as progress-monitor evidence, so a leader that
        crashed while idle is still suspected and replaced automatically.
        The complaint carries the unanswered transaction as evidence —
        followers corroborate it by forwarding the request to the leader and
        only sustain suspicion while that probe goes unanswered.

        Independently of the leader's reply, ``f + 1`` matching
        :class:`ReplicaCommitReply` reports from the coordinator cluster
        decide the attempt (see :meth:`_on_replica_commit_reply`): a leader
        that dies right after its cluster certifies the outcome cannot
        strand this client until the timeout.
        """
        reliability = self.config.reliability
        attempts = max(1, reliability.commit_retry_attempts) if reliability.enabled else 1
        quorum = self.config.failover.replica_commit_replies
        reply: Optional[CommitReply] = None
        unanswered = False  # a timed-out attempt may sit admitted somewhere
        try:
            for attempt in range(attempts):
                if attempt:
                    self.stats.commit_retries += 1
                    yield Sleep(reliability.commit_retry_backoff_ms * attempt)
                request = CommitRequest(txn=txn)
                if quorum:
                    self._commit_quorum_waits[txn.txn_id] = (
                        coordinator,
                        request.request_id,
                    )
                    if txn.txn_id in self._commit_quorum_outcomes:
                        # The quorum completed while no attempt was waiting
                        # (e.g. during backoff): consume it, skip the send.
                        reply = self._quorum_commit_reply(
                            txn.txn_id, request.request_id
                        )
                        break
                reply = yield self._leader_call(
                    coordinator, request, timeout_ms=self._commit_timeout_ms
                )
                if (
                    reply is not None
                    and reply.status is not TxnStatus.COMMITTED
                    and reply.abort_reason in POSITIONAL_REFUSALS
                ):
                    # A positional refusal decides nothing (see
                    # POSITIONAL_REFUSALS): only surface it as the final
                    # abort when nothing could have been admitted — no
                    # failover re-sends, no unanswered earlier attempt, no
                    # retries left to learn the real outcome.
                    self.stats.commit_leader_refusals += 1
                    if (
                        self.config.failover.enabled
                        or unanswered
                        or attempt + 1 < attempts
                    ):
                        # Retry without complaining: a live replica answered,
                        # so this is routing staleness, not a silent leader.
                        reply = None
                        continue
                if reply is not None:
                    break
                unanswered = True
                if quorum and txn.txn_id in self._commit_quorum_outcomes:
                    reply = self._quorum_commit_reply(txn.txn_id, request.request_id)
                    break
                if complain:
                    self.stats.timeouts += 1
                    for member in self.topology.members(coordinator):
                        self.send(member, LeaderComplaint(partition=coordinator, txn=txn))
        finally:
            if quorum:
                self._commit_quorum_waits.pop(txn.txn_id, None)
                self._commit_quorum_votes.pop(txn.txn_id, None)
                self._commit_quorum_outcomes.pop(txn.txn_id, None)
        return reply

    # ------------------------------------------------------------------
    # TransEdge snapshot read-only transactions (Section 4)
    # ------------------------------------------------------------------

    def read_only_txn(
        self, keys: Sequence[Key]
    ) -> Generator[object, object, ReadOnlyResult]:
        """Run one snapshot read-only transaction (at most two rounds).

        With an edge tier configured, round 1 is tried against a nearby edge
        proxy first; the proxy's sections are verified exactly like core
        replies (proofs, certified headers, freshness), so a byzantine or
        stale proxy is caught, blacklisted and transparently replaced by a
        direct core round 1.  Dependency-repair rounds always go to the core
        (only core replicas hold the archived historical trees).
        """
        txn_id = self.next_txn_id()
        span = self._trace_begin("txn:ro", txn_id)
        result = yield from self._read_only_txn(txn_id, keys)
        self._trace_end(span, "ok" if result.verified else "unverified")
        return result

    def _read_only_txn(
        self, txn_id: str, keys: Sequence[Key]
    ) -> Generator[object, object, ReadOnlyResult]:
        start = self.now
        grouped = self.partitioner.group_keys(keys)

        snapshots: Optional[Dict[PartitionId, PartitionSnapshot]] = None
        served_by_edge = False
        verified = True
        stale_suspicion: Optional[Tuple[EdgeProxyId, PartitionId, BatchNumber]] = None
        if self.edge_router is not None:
            proxy = self.edge_router.pick()
            if proxy is not None:
                self.stats.edge_reads_attempted += 1
                edge_outcome, stale_suspicion = yield from self._edge_round1(
                    proxy, grouped
                )
                if edge_outcome is None:
                    self.stats.edge_fallbacks += 1
                else:
                    snapshots, served_by_edge = edge_outcome
                    # "Served by edge" means the proxy answered from its own
                    # verified cache; a proxy that had to fetch from the core
                    # merely relayed a core-served read.
                    if served_by_edge:
                        self.stats.edge_reads_served += 1
                    else:
                        self.stats.edge_relays += 1
                    # Flight-recorder evidence for the edge-freshness oracle:
                    # header age of every accepted section, measured at the
                    # moment of acceptance (events never alter fingerprints).
                    self.env.obs.event(
                        str(self.node_id),
                        "edge-read-accepted",
                        "info",
                        {
                            "txn_id": txn_id,
                            "proxy": str(proxy),
                            "cache_served": bool(served_by_edge),
                            "staleness_ms": {
                                int(partition): self.now - snapshot.header.timestamp_ms
                                for partition, snapshot in sorted(snapshots.items())
                                if snapshot.header is not None
                            },
                        },
                    )
        if snapshots is None:
            snapshots, verified = yield from self._direct_round1(grouped)
            if stale_suspicion is not None:
                self._judge_stale_suspicion(stale_suspicion, snapshots)

        round1_end = self.now
        rounds = 1
        # Dependency repair runs to a fixpoint: a repair snapshot (the
        # earliest with LCE >= the dependency) can itself carry commits whose
        # counterpart on another partition landed in a *later* batch there,
        # creating a fresh unsatisfied dependency the first check could not
        # see.  Re-checking after each repair closes that race; LCEs only
        # move forward, so the loop converges (almost always in one round —
        # the cap guards the degenerate case and fails safe as unverified).
        required = find_unsatisfied_dependencies(snapshots)
        while required and rounds <= self.MAX_REPAIR_ROUNDS:
            rounds += 1
            if rounds == 2:
                self.stats.read_only_second_rounds += 1
            else:
                self.stats.read_only_extra_repair_rounds += 1
            repaired = yield from self._dependency_repair_round(
                grouped, snapshots, required
            )
            verified = verified and repaired
            if not repaired:
                break
            required = find_unsatisfied_dependencies(snapshots)
        if required:
            verified = False

        end = self.now
        values, versions = assemble_result(snapshots, list(keys))
        self.stats.read_only_completed += 1
        return ReadOnlyResult(
            txn_id=txn_id,
            values=values,
            versions=versions,
            rounds=rounds,
            latency_ms=end - start,
            round2_latency_ms=(end - round1_end) if rounds == 2 else 0.0,
            verified=verified,
            served_by_edge=served_by_edge,
        )

    def _direct_round1(
        self, grouped: Mapping[PartitionId, Sequence[Key]]
    ) -> Generator[object, object, Tuple[Dict[PartitionId, PartitionSnapshot], bool]]:
        """Round 1 against the core: one request per accessed partition."""
        ordered_partitions = sorted(grouped)
        calls = [
            self._leader_call(
                partition, ReadOnlyRequest(keys=tuple(sorted(grouped[partition])))
            )
            for partition in ordered_partitions
        ]
        replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)

        snapshots: Dict[PartitionId, PartitionSnapshot] = {}
        verified = True
        for partition, reply in zip(ordered_partitions, replies):
            snapshot = yield from self._verified_snapshot(
                partition, tuple(sorted(grouped[partition])), reply, is_round_two=False
            )
            if snapshot is None:
                verified = False
                snapshot = PartitionSnapshot(
                    partition=partition, keys=tuple(sorted(grouped[partition]))
                )
            snapshots[partition] = snapshot
        return snapshots, verified

    def _edge_round1(
        self, proxy: EdgeProxyId, grouped: Mapping[PartitionId, Sequence[Key]]
    ) -> Generator[
        object,
        object,
        Tuple[
            Optional[Tuple[Dict[PartitionId, PartitionSnapshot], bool]],
            Optional[Tuple[EdgeProxyId, PartitionId, BatchNumber]],
        ],
    ]:
        """Round 1 against an edge proxy.

        Returns ``(outcome, stale_suspicion)``.  ``outcome`` is None to fall
        back to the core, else the verified snapshots plus whether every
        partition came from the proxy's cache (a cache-served read) rather
        than being relayed.  Every section is re-verified here — the proxy is
        untrusted, so a bad proof or forged header blacklists it, and a
        section omitting a *requested* key is never believed (values carry
        membership proofs; absence carries none, so a withheld key falls
        back to the core for the authoritative answer).  A section that is
        authentic but fails only the freshness bound is not immediate proof
        of misbehaviour — an idle partition's newest header ages past any
        bound — so it is returned as a *suspicion* the caller settles against
        the direct read's header (see :meth:`_judge_stale_suspicion`).
        """
        all_keys = tuple(sorted(key for keys in grouped.values() for key in keys))
        reply = yield Call(
            proxy,
            EdgeReadRequest(keys=all_keys),
            timeout_ms=self.config.edge.read_timeout_ms,
        )
        if reply is None or not isinstance(reply, EdgeReadReply):
            return None, None
        snapshots: Dict[PartitionId, PartitionSnapshot] = {}
        for partition in sorted(grouped):
            keys = tuple(sorted(grouped[partition]))
            section = reply.sections.get(partition)
            if section is None or any(key not in section.values for key in keys):
                # Incomplete: a fabricated absence cannot be proven wrong
                # (there are no non-membership proofs), so it is simply
                # never accepted — the direct read answers instead.
                return None, None
            snapshot = PartitionSnapshot(
                partition=partition,
                keys=keys,
                values=dict(section.values),
                versions=dict(section.versions),
                proofs=dict(section.proofs),
                header=section.header,
            )
            if not verify_snapshot(
                snapshot, self.verifier, self.topology, self.config, now_ms=self.now
            ):
                self.stats.edge_verification_failures += 1
                if verify_snapshot(
                    snapshot, self.verifier, self.topology, self.config
                ):
                    # Authentic but stale: withhold judgement until the
                    # direct read reveals whether fresher state existed.
                    return None, (proxy, partition, snapshot.batch_number)
                self._blacklist_proxy(proxy)
                return None, None
            snapshots[partition] = snapshot
        from_cache = set(grouped) <= set(reply.from_cache)
        return (snapshots, from_cache), None

    def _blacklist_proxy(self, proxy: EdgeProxyId) -> None:
        self.edge_router.blacklist(proxy)
        self.stats.proxies_blacklisted = len(self.edge_router.blacklisted())

    def _judge_stale_suspicion(
        self,
        suspicion: Tuple[EdgeProxyId, PartitionId, BatchNumber],
        snapshots: Mapping[PartitionId, PartitionSnapshot],
    ) -> None:
        """Settle a freshness-bound failure: byzantine replay or idle cluster?

        The proxy is obliged to track the core within
        ``EdgeConfig.max_header_lag_batches``; if the direct read shows the
        core's snapshot materially ahead of what the proxy served, the proxy
        was hiding fresh state (the stale-replay attack) and is blacklisted.
        If the core serves (about) the same batch, the staleness was the
        cluster's own idleness and the proxy stays in rotation.
        """
        proxy, partition, served_batch = suspicion
        direct = snapshots.get(partition)
        if direct is None or direct.header is None:
            return  # no authoritative comparison; leave the proxy alone
        if direct.batch_number > served_batch + self.config.edge.max_header_lag_batches:
            self._blacklist_proxy(proxy)

    def _dependency_repair_round(
        self,
        grouped: Mapping[PartitionId, Sequence[Key]],
        snapshots: Dict[PartitionId, PartitionSnapshot],
        required: Mapping[PartitionId, BatchNumber],
    ) -> Generator[object, object, bool]:
        """Round 2: ask lagging partitions for the dependency-naming snapshot."""
        round2_calls = []
        round2_partitions = sorted(required)
        for partition in round2_partitions:
            round2_calls.append(
                self._leader_call(
                    partition,
                    SnapshotRequest(
                        keys=tuple(sorted(grouped[partition])),
                        required_prepare_batch=required[partition],
                    ),
                )
            )
        round2_replies = yield Gather(round2_calls, timeout_ms=self._request_timeout_ms)
        verified = True
        for partition, reply in zip(round2_partitions, round2_replies):
            snapshot = yield from self._verified_snapshot(
                partition,
                tuple(sorted(grouped[partition])),
                reply,
                is_round_two=True,
                required=required[partition],
            )
            if snapshot is None:
                verified = False
            else:
                snapshots[partition] = snapshot
        return verified

    def _verified_snapshot(
        self,
        partition: PartitionId,
        keys: Tuple[Key, ...],
        reply: object,
        is_round_two: bool,
        required: BatchNumber = NO_BATCH,
    ) -> Generator[object, object, Optional[PartitionSnapshot]]:
        """Turn a reply into a verified snapshot, retrying other replicas on failure.

        Commit-freedom means a single node answers; if that node is byzantine
        (bad proof, forged header) the client simply asks another member of
        the same cluster.
        """
        reply_type = SnapshotReply if is_round_two else ReadOnlyReply
        candidates = [
            member
            for member in self.topology.members(partition)
            if member != self._leader_of(partition)
        ]
        attempt = 0
        while True:
            snapshot: Optional[PartitionSnapshot] = None
            if reply is not None and isinstance(reply, reply_type):
                snapshot = PartitionSnapshot(
                    partition=partition,
                    keys=keys,
                    values=dict(reply.values),
                    versions=dict(reply.versions),
                    proofs=dict(reply.proofs),
                    header=reply.header,
                )
                if verify_snapshot(
                    snapshot, self.verifier, self.topology, self.config, now_ms=self.now
                ):
                    return snapshot
                self.stats.read_only_verification_failures += 1
            if attempt >= len(candidates):
                return None
            replica = candidates[attempt]
            attempt += 1
            if is_round_two:
                request = SnapshotRequest(keys=keys, required_prepare_batch=required)
            else:
                request = ReadOnlyRequest(keys=keys)
            reply = yield Call(replica, request, timeout_ms=self._request_timeout_ms)

    # ------------------------------------------------------------------
    # Baseline 1: read-only transactions as regular 2PC/BFT transactions
    # ------------------------------------------------------------------

    def read_only_as_regular_txn(
        self, keys: Sequence[Key]
    ) -> Generator[object, object, ReadOnlyResult]:
        """Run a read-only transaction through the full read-write commit path.

        This is how the paper's 2PC/BFT baseline executes read-only
        transactions: the read set is validated and committed with BFT
        consensus in every accessed cluster plus 2PC coordination between
        them (Section 3.5).
        """
        txn_id = self.next_txn_id()
        start = self.now
        grouped = self.partitioner.group_keys(keys)
        calls = [
            self._leader_call(partition, ReadRequest(keys=tuple(sorted(partition_keys))))
            for partition, partition_keys in sorted(grouped.items())
        ]
        replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)
        values: Dict[Key, Optional[Value]] = {key: None for key in keys}
        versions: Dict[Key, BatchNumber] = {key: NO_BATCH for key in keys}
        for reply in replies:
            if reply is None:
                continue
            assert isinstance(reply, ReadReply)
            values.update(reply.values)
            versions.update(reply.versions)

        txn = TxnPayload(
            txn_id=txn_id,
            reads=dict(versions),
            writes={},
            client=self.name,
        )
        coordinator = self._coordinator_for(txn.partitions(self.partitioner))
        reply = yield from self._commit_with_retry(coordinator, txn, complain=False)
        end = self.now
        committed = reply is not None and reply.status is TxnStatus.COMMITTED
        if committed:
            self.stats.read_only_completed += 1
        else:
            self.stats.aborted += 1
        return ReadOnlyResult(
            txn_id=txn_id,
            values=values,
            versions=versions,
            rounds=1,
            latency_ms=end - start,
            verified=committed,
        )

    # ------------------------------------------------------------------
    # Baseline 2: Augustus-style quorum reads with shared locks
    # ------------------------------------------------------------------

    def augustus_read_only_txn(
        self,
        keys: Sequence[Key],
        max_attempts: int = 12,
        backoff_ms: float = 2.0,
    ) -> Generator[object, object, ReadOnlyResult]:
        """Run a read-only transaction the way Augustus does.

        The client contacts a ``2f + 1`` quorum of every accessed partition;
        each contacted replica takes shared locks on the read keys before
        answering.  A replica whose keys are write-locked by an in-flight
        read-write transaction denies the shared lock, in which case the
        client releases everything, backs off and retries — which is why
        Augustus read-only latency degrades under write load and with large
        read sets (Figures 5-7), and why its shared locks abort conflicting
        writers while held (Table 1).
        """
        txn_id = self.next_txn_id()
        start = self.now
        grouped = self.partitioner.group_keys(keys)
        quorum = self.config.quorum_size

        values: Dict[Key, Optional[Value]] = {key: None for key in keys}
        versions: Dict[Key, BatchNumber] = {key: NO_BATCH for key in keys}
        rounds = 0
        complete = False

        while rounds < max_attempts and not complete:
            rounds += 1
            attempt_id = f"{txn_id}/a{rounds}"
            calls: List[Call] = []
            call_partitions: List[PartitionId] = []
            contacted: List[ReplicaId] = []
            for partition, partition_keys in sorted(grouped.items()):
                members = self.topology.members(partition)[:quorum]
                for member in members:
                    calls.append(
                        Call(
                            member,
                            LockReadRequest(txn_id=attempt_id, keys=tuple(sorted(partition_keys))),
                        )
                    )
                    call_partitions.append(partition)
                    contacted.append(member)

            replies = yield Gather(calls, timeout_ms=self._request_timeout_ms)

            granted_counts: Dict[PartitionId, int] = {}
            for partition, reply in zip(call_partitions, replies):
                if reply is None or not isinstance(reply, LockReadReply):
                    continue
                if reply.granted:
                    granted_counts[partition] = granted_counts.get(partition, 0) + 1
                    values.update(reply.values)
                    versions.update(reply.versions)
            complete = all(granted_counts.get(partition, 0) >= quorum for partition in grouped)

            # Release the shared locks everywhere (fire and forget).
            for member in contacted:
                self.send(member, LockReleaseMessage(txn_id=attempt_id))
            if not complete and rounds < max_attempts:
                yield Sleep(backoff_ms * rounds)

        end = self.now
        self.stats.read_only_completed += 1
        return ReadOnlyResult(
            txn_id=txn_id,
            values=values,
            versions=versions,
            rounds=rounds,
            latency_ms=end - start,
            verified=complete,
        )
