"""Leader role: batch construction and 2PC-over-BFT coordination.

The replica currently acting as its cluster's leader runs this role.  It
owns the in-progress batch (Figure 2), admits transactions with the conflict
rules of Definition 3.1, seals batches (deriving the committed segment, the
CD vector, the LCE and the new Merkle root) and proposes them to the
cluster's consensus, and drives the Two-Phase-Commit protocol with the
leaders of other clusters — every 2PC step is only communicated after the
batch recording it has been written to the SMR log, so a byzantine leader
cannot lie about a step it never persisted (Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.common.ids import NO_BATCH, BatchNumber, NodeId, PartitionId, ReplicaId
from repro.common.types import TxnStatus
from repro.core.batch import (
    Batch,
    CertifiedHeader,
    CommitRecord,
    PreparedRecord,
    PreparedVote,
    ReadOnlySegment,
)
from repro.core.cdvector import combine_all
from repro.core.messages import (
    CommitReply,
    CommitRequest,
    CoordinatorPrepare,
    DecisionMessage,
    ParticipantPrepared,
)
from repro.core.occ import KeyConflictIndex
from repro.core.transaction import TxnPayload
from repro.storage.locks import LockMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.core.replica import PartitionReplica


@dataclass
class _WaitingClient:
    """A client waiting for the outcome of a transaction it submitted here."""

    client: NodeId
    request_id: str


@dataclass
class _CoordinatorState:
    """Coordinator-side 2PC bookkeeping for one distributed transaction."""

    txn: TxnPayload
    participants: FrozenSet[PartitionId]
    votes: Dict[PartitionId, PreparedVote] = field(default_factory=dict)
    own_vote: Optional[PreparedVote] = None
    prepare_batch: BatchNumber = NO_BATCH
    decided: bool = False


@dataclass
class _ParticipantState:
    """Participant-side 2PC bookkeeping for one distributed transaction."""

    txn: TxnPayload
    coordinator: PartitionId
    prepare_batch: BatchNumber = NO_BATCH


class LeaderRole:
    """Batch building and 2PC coordination for one partition's leader."""

    def __init__(self, replica: "PartitionReplica") -> None:
        self._replica = replica
        self._in_progress_local: List[TxnPayload] = []
        self._in_progress_prepared: List[PreparedRecord] = []
        self._in_progress_index = KeyConflictIndex(replica.partition, replica.partitioner)
        self._waiting_clients: Dict[str, _WaitingClient] = {}
        self._coordinator_states: Dict[str, _CoordinatorState] = {}
        self._participant_states: Dict[str, _ParticipantState] = {}
        self._consensus_in_flight = False
        self._seal_timer = None
        self.sealed_batches = 0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def _partition(self) -> PartitionId:
        return self._replica.partition

    @property
    def _partitioner(self):
        return self._replica.partitioner

    def _leader_of(self, partition: PartitionId) -> ReplicaId:
        return self._replica.topology.leader(partition)

    def in_progress_size(self) -> int:
        return len(self._in_progress_local) + len(self._in_progress_prepared)

    def _admission_indexes(self) -> Tuple[KeyConflictIndex, KeyConflictIndex]:
        """Indexes for rules 2 and 3: the in-progress batch and prepared txns."""
        return (self._in_progress_index, self._replica.prepared_index)

    def _lock_interference(self, txn: TxnPayload) -> bool:
        """Augustus-baseline interference: writes hitting shared read locks."""
        locks = self._replica.locks
        for key in txn.write_keys_in(self._partition, self._partitioner):
            if locks.is_share_locked(key):
                return True
        return False

    def _acquire_write_locks(self, txn: TxnPayload) -> None:
        """Mark the transaction's local write keys as write-locked.

        TransEdge itself never consults these locks — its read-only protocol
        is lock-free — but the Augustus baseline's quorum reads do: a shared
        lock cannot be granted while an in-flight transaction holds the key,
        which is the interference the paper measures (Figure 7, Table 1).
        """
        keys = txn.write_keys_in(self._partition, self._partitioner)
        if keys:
            self._replica.locks.try_acquire(txn.txn_id, keys, LockMode.EXCLUSIVE)

    def _release_write_locks(self, txn_id: str) -> None:
        self._replica.locks.release_all(txn_id)

    def _reply_abort(self, txn: TxnPayload, waiting: _WaitingClient, reason: str) -> None:
        if "read-lock" in reason:
            self._replica.counters.lock_interference_aborts += 1
        else:
            self._replica.counters.conflict_aborts += 1
        self._replica.send(
            waiting.client,
            CommitReply(
                request_id=waiting.request_id,
                txn_id=txn.txn_id,
                status=TxnStatus.ABORTED,
                abort_reason=reason,
            ),
        )

    # ------------------------------------------------------------------
    # client commit requests
    # ------------------------------------------------------------------

    def on_commit_request(self, message: CommitRequest, src: NodeId) -> None:
        txn = message.txn
        waiting = _WaitingClient(client=src, request_id=message.request_id)
        if txn is None:
            return
        if not self._replica.is_leader:
            self._reply_abort(txn, waiting, "not the current leader of this partition")
            return
        accessed = txn.partitions(self._partitioner)
        if self._partition not in accessed:
            self._reply_abort(txn, waiting, "coordinator partition not accessed by transaction")
            return

        report = self._replica.conflict_checker().check(txn, self._admission_indexes())
        if not report.ok:
            self._reply_abort(txn, waiting, report.reason)
            return
        if self._lock_interference(txn):
            self._reply_abort(txn, waiting, "read-lock interference with a read-only transaction")
            return

        self._waiting_clients[txn.txn_id] = waiting
        self._in_progress_index.add(txn)
        self._acquire_write_locks(txn)
        if len(accessed) == 1:
            self._in_progress_local.append(txn)
        else:
            participants = frozenset(accessed - {self._partition})
            self._coordinator_states[txn.txn_id] = _CoordinatorState(
                txn=txn, participants=participants
            )
            self._in_progress_prepared.append(
                PreparedRecord(txn=txn, coordinator=self._partition)
            )
        self._ensure_seal_scheduled()

    # ------------------------------------------------------------------
    # 2PC: participant side
    # ------------------------------------------------------------------

    def on_coordinator_prepare(self, message: CoordinatorPrepare, src: NodeId) -> None:
        txn = message.txn
        if txn is None or not self._replica.is_leader:
            return
        if txn.txn_id in self._participant_states:
            return  # duplicate
        # Verify the prepare really went through the coordinator cluster's consensus.
        if message.header is None or not message.header.verify(
            self._replica.env.registry,
            self._replica.topology.members(message.coordinator),
            self._replica.config.certificate_size,
        ):
            return

        report = self._replica.conflict_checker().check(txn, self._admission_indexes())
        interference = self._lock_interference(txn)
        if not report.ok or interference:
            if interference:
                self._replica.counters.lock_interference_aborts += 1
            else:
                self._replica.counters.conflict_aborts += 1
            vote = PreparedVote(
                txn_id=txn.txn_id, partition=self._partition, vote=False
            )
            self._replica.send(
                self._leader_of(message.coordinator), ParticipantPrepared(vote=vote)
            )
            return

        self._participant_states[txn.txn_id] = _ParticipantState(
            txn=txn, coordinator=message.coordinator
        )
        self._in_progress_index.add(txn)
        self._acquire_write_locks(txn)
        self._in_progress_prepared.append(
            PreparedRecord(txn=txn, coordinator=message.coordinator)
        )
        self._ensure_seal_scheduled()

    # ------------------------------------------------------------------
    # 2PC: coordinator side
    # ------------------------------------------------------------------

    def on_participant_prepared(self, message: ParticipantPrepared, src: NodeId) -> None:
        vote = message.vote
        if vote is None:
            return
        state = self._coordinator_states.get(vote.txn_id)
        if state is None or state.decided:
            return
        if vote.vote:
            # A positive vote must prove the prepare went through the
            # participant cluster's consensus; otherwise treat it as negative.
            valid = vote.header is not None and vote.header.verify(
                self._replica.env.registry,
                self._replica.topology.members(vote.partition),
                self._replica.config.certificate_size,
            )
            if not valid:
                vote = PreparedVote(
                    txn_id=vote.txn_id, partition=vote.partition, vote=False
                )
        state.votes[vote.partition] = vote
        self._maybe_decide(state)

    def _maybe_decide(self, state: _CoordinatorState) -> None:
        if state.decided or state.own_vote is None:
            return
        if not state.participants <= set(state.votes):
            return
        decision = all(vote.vote for vote in state.votes.values())
        all_votes = dict(state.votes)
        all_votes[self._partition] = state.own_vote
        record = CommitRecord(
            txn=state.txn,
            coordinator=self._partition,
            decision=decision,
            prepare_batch=state.prepare_batch,
            votes=all_votes,
        )
        state.decided = True
        self._replica.prepared_batches.record_decision(record)
        self._ensure_seal_scheduled()

    def on_decision(self, message: DecisionMessage, src: NodeId) -> None:
        record = message.record
        if record is None or not self._replica.is_leader:
            return
        group = self._replica.prepared_batches.group_of_txn(record.txn.txn_id)
        if group is None:
            return  # we never prepared it (e.g. we voted no), nothing to do
        if record.txn.txn_id in group.decisions:
            return  # duplicate decision
        self._replica.prepared_batches.record_decision(record)
        self._participant_states.pop(record.txn.txn_id, None)
        self._ensure_seal_scheduled()

    # ------------------------------------------------------------------
    # batch sealing
    # ------------------------------------------------------------------

    def propose_genesis(self) -> None:
        """Write the bootstrap batch (number 0) certifying the preloaded state.

        The genesis batch carries no transactions — only the read-only
        segment with the Merkle root of the initial data, an empty CD vector
        and LCE = -1 — so that read-only clients have a certified header to
        verify against from the very first request.
        """
        replica = self._replica
        if not replica.is_leader or self._consensus_in_flight or replica.log.next_seq != 0:
            return
        batch = Batch(
            partition=self._partition,
            number=0,
            read_only=ReadOnlySegment(
                cd_vector=replica.current_cd_vector().with_entry(self._partition, 0),
                lce=replica.current_lce(),
                merkle_root=replica.merkle.root,
                timestamp_ms=replica.now,
            ),
        )
        self._consensus_in_flight = True
        self.sealed_batches += 1
        replica.engine.propose(batch)

    def has_sealable_work(self) -> bool:
        if self.in_progress_size() > 0:
            return True
        return bool(self._replica.prepared_batches.ready_prefix())

    def _ensure_seal_scheduled(self) -> None:
        if not self._replica.is_leader:
            return
        batch_config = self._replica.config.batch
        if not self._consensus_in_flight and self.in_progress_size() >= batch_config.max_size:
            self._seal_batch()
            return
        if self._seal_timer is None and self.has_sealable_work():
            self._seal_timer = self._replica.schedule(batch_config.timeout_ms, self._on_seal_timer)

    def _on_seal_timer(self) -> None:
        self._seal_timer = None
        if not self._replica.is_leader:
            return
        if self._consensus_in_flight:
            # Delivery of the in-flight batch re-arms sealing.
            return
        if self.has_sealable_work():
            self._seal_batch()

    def _seal_batch(self) -> None:
        replica = self._replica
        if self._consensus_in_flight or not replica.is_leader:
            return
        batch_number = replica.log.next_seq

        # Re-validate admitted transactions against the current state: batches
        # delivered since admission may have introduced conflicts.
        local_txns: List[TxnPayload] = []
        prepared_records: List[PreparedRecord] = []
        accepted_index = KeyConflictIndex(self._partition, self._partitioner)
        seal_indexes = (accepted_index, replica.prepared_index)

        checker = replica.conflict_checker()
        for txn in self._in_progress_local:
            report = checker.check(txn, seal_indexes)
            if report.ok and not self._lock_interference(txn):
                local_txns.append(txn)
                accepted_index.add(txn)
            else:
                self._release_write_locks(txn.txn_id)
                waiting = self._waiting_clients.pop(txn.txn_id, None)
                if waiting is not None:
                    reason = report.reason or "read-lock interference with a read-only transaction"
                    self._reply_abort(txn, waiting, reason)
        for record in self._in_progress_prepared:
            report = checker.check(record.txn, seal_indexes)
            if report.ok and not self._lock_interference(record.txn):
                prepared_records.append(record)
                accepted_index.add(record.txn)
            else:
                self._drop_prepared_record(record, report.reason)
        self._in_progress_local = []
        self._in_progress_prepared = []
        self._in_progress_index.clear()

        # Committed segment: the ready prefix of prepare groups (Definition 4.1).
        ready_groups = replica.prepared_batches.ready_prefix()
        committed_records: List[CommitRecord] = []
        for group in ready_groups:
            committed_records.extend(group.ordered_decisions())

        # Read-only segment: LCE, CD vector (Algorithm 1) and Merkle root.
        lce = replica.current_lce()
        if ready_groups:
            lce = max(lce, max(group.batch_number for group in ready_groups))
        cd = replica.current_cd_vector().with_entry(self._partition, batch_number)
        for record in committed_records:
            if record.decision:
                cd = combine_all(cd, record.reported_vectors())
        cd = cd.with_entry(self._partition, batch_number)

        updates = {}
        for txn in local_txns:
            updates.update(txn.writes_in(self._partition, self._partitioner))
        for record in committed_records:
            if record.decision:
                updates.update(record.txn.writes_in(self._partition, self._partitioner))

        batch = Batch(
            partition=self._partition,
            number=batch_number,
            local_txns=tuple(local_txns),
            prepared=tuple(prepared_records),
            committed=tuple(committed_records),
            read_only=ReadOnlySegment(
                cd_vector=cd,
                lce=lce,
                merkle_root=replica._preview_root(updates),
                timestamp_ms=replica.now,
            ),
        )
        if batch.size() == 0:
            return

        # Sealing occupies the leader for a cost proportional to the batch.
        costs = replica.config.costs
        replica.occupy(costs.batch_base_ms + batch.size() * (costs.hash_ms + costs.conflict_check_ms))

        self._consensus_in_flight = True
        self.sealed_batches += 1
        replica.engine.propose(batch)

    def _drop_prepared_record(self, record: PreparedRecord, reason: str) -> None:
        """A prepared record turned invalid at seal time; undo its bookkeeping."""
        txn_id = record.txn.txn_id
        reason = reason or "conflict discovered while sealing the batch"
        self._release_write_locks(txn_id)
        if record.coordinator == self._partition:
            self._coordinator_states.pop(txn_id, None)
            waiting = self._waiting_clients.pop(txn_id, None)
            if waiting is not None:
                self._reply_abort(record.txn, waiting, reason)
        else:
            self._participant_states.pop(txn_id, None)
            vote = PreparedVote(txn_id=txn_id, partition=self._partition, vote=False)
            self._replica.send(
                self._leader_of(record.coordinator), ParticipantPrepared(vote=vote)
            )
            self._replica.counters.conflict_aborts += 1

    # ------------------------------------------------------------------
    # post-delivery actions
    # ------------------------------------------------------------------

    def on_batch_delivered(self, seq: BatchNumber, batch: Batch, header: CertifiedHeader) -> None:
        self._consensus_in_flight = False
        if not self._replica.is_leader:
            return

        # Local transactions are now committed: tell their clients.
        for txn in batch.local_txns:
            self._release_write_locks(txn.txn_id)
            waiting = self._waiting_clients.pop(txn.txn_id, None)
            if waiting is not None:
                self._replica.send(
                    waiting.client,
                    CommitReply(
                        request_id=waiting.request_id,
                        txn_id=txn.txn_id,
                        status=TxnStatus.COMMITTED,
                        commit_batch=seq,
                    ),
                )

        # Newly prepared distributed transactions: drive the next 2PC step.
        for record in batch.prepared:
            if record.coordinator == self._partition:
                self._after_coordinator_prepare_written(record, seq, header)
            else:
                self._after_participant_prepare_written(record, seq, header)

        # Commit records written in this batch: inform participants and clients.
        for record in batch.committed:
            self._release_write_locks(record.txn.txn_id)
            if record.coordinator == self._partition:
                self._after_decision_written(record, seq, header)

        self._ensure_seal_scheduled()

    def _after_coordinator_prepare_written(
        self, record: PreparedRecord, seq: BatchNumber, header: CertifiedHeader
    ) -> None:
        state = self._coordinator_states.get(record.txn.txn_id)
        if state is None:
            return
        state.prepare_batch = seq
        state.own_vote = PreparedVote(
            txn_id=record.txn.txn_id,
            partition=self._partition,
            vote=True,
            prepare_batch=seq,
            cd_vector=header.cd_vector,
            header=header,
        )
        for participant in state.participants:
            self._replica.send(
                self._leader_of(participant),
                CoordinatorPrepare(
                    txn=record.txn,
                    coordinator=self._partition,
                    prepare_batch=seq,
                    header=header,
                ),
            )
        self._maybe_decide(state)

    def _after_participant_prepare_written(
        self, record: PreparedRecord, seq: BatchNumber, header: CertifiedHeader
    ) -> None:
        state = self._participant_states.get(record.txn.txn_id)
        if state is None:
            return
        state.prepare_batch = seq
        vote = PreparedVote(
            txn_id=record.txn.txn_id,
            partition=self._partition,
            vote=True,
            prepare_batch=seq,
            cd_vector=header.cd_vector,
            header=header,
        )
        self._replica.send(
            self._leader_of(record.coordinator),
            ParticipantPrepared(vote=vote, header=header),
        )

    def _after_decision_written(
        self, record: CommitRecord, seq: BatchNumber, header: CertifiedHeader
    ) -> None:
        state = self._coordinator_states.pop(record.txn.txn_id, None)
        participants = (
            state.participants
            if state is not None
            else frozenset(record.txn.partitions(self._partitioner) - {self._partition})
        )
        for participant in participants:
            self._replica.send(
                self._leader_of(participant),
                DecisionMessage(record=record, commit_batch=seq, header=header),
            )
        waiting = self._waiting_clients.pop(record.txn.txn_id, None)
        if waiting is not None:
            status = TxnStatus.COMMITTED if record.decision else TxnStatus.ABORTED
            reason = "" if record.decision else "a participant voted to abort"
            self._replica.send(
                waiting.client,
                CommitReply(
                    request_id=waiting.request_id,
                    txn_id=record.txn.txn_id,
                    status=status,
                    commit_batch=seq if record.decision else NO_BATCH,
                    abort_reason=reason,
                ),
            )

    # ------------------------------------------------------------------
    # view changes
    # ------------------------------------------------------------------

    def on_view_change(self, new_view: int, new_leader: ReplicaId) -> None:
        """React to a leader change in this cluster.

        The in-progress batch of a deposed leader is dropped (its clients will
        time out and retry); a newly elected leader starts with an empty
        in-progress batch and resumes sealing from its delivered prefix.
        In-flight 2PC coordination owned by the deposed leader is abandoned —
        see DESIGN.md for the scope of this simplification.
        """
        self._consensus_in_flight = False
        if self._seal_timer is not None:
            self._seal_timer.cancel()
            self._seal_timer = None
        if self._replica.node_id != new_leader:
            self._in_progress_local = []
            self._in_progress_prepared = []
            self._in_progress_index.clear()
        else:
            self._ensure_seal_scheduled()
