"""Leader role: batch construction and 2PC-over-BFT coordination.

The replica currently acting as its cluster's leader runs this role.  It
owns the in-progress batch (Figure 2), admits transactions with the conflict
rules of Definition 3.1, seals batches (deriving the committed segment, the
CD vector, the LCE and the new Merkle root) and proposes them to the
cluster's consensus, and drives the Two-Phase-Commit protocol with the
leaders of other clusters — every 2PC step is only communicated after the
batch recording it has been written to the SMR log, so a byzantine leader
cannot lie about a step it never persisted (Section 3.3).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Tuple

from repro.common.ids import NO_BATCH, BatchNumber, NodeId, PartitionId, ReplicaId
from repro.common.types import TxnStatus
from repro.core.batch import (
    Batch,
    CertifiedHeader,
    CommitRecord,
    PreparedRecord,
    PreparedVote,
    ReadOnlySegment,
)
from repro.core.cdvector import combine_all
from repro.core.messages import (
    CommitReply,
    CommitRequest,
    CoordinatorPrepare,
    DecisionMessage,
    DecisionQuery,
    ParticipantPrepared,
)
from repro.core.occ import KeyConflictIndex
from repro.core.transaction import TxnPayload
from repro.obs.trace import Span, TraceContext
from repro.simnet.messages import Message
from repro.storage.locks import LockMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.core.replica import PartitionReplica


@dataclass
class _WaitingClient:
    """A client waiting for the outcome of a transaction it submitted here."""

    client: NodeId
    request_id: str


@dataclass
class _CoordinatorState:
    """Coordinator-side 2PC bookkeeping for one distributed transaction."""

    txn: TxnPayload
    participants: FrozenSet[PartitionId]
    votes: Dict[PartitionId, PreparedVote] = field(default_factory=dict)
    own_vote: Optional[PreparedVote] = None
    prepare_batch: BatchNumber = NO_BATCH
    decided: bool = False


@dataclass
class _ParticipantState:
    """Participant-side 2PC bookkeeping for one distributed transaction."""

    txn: TxnPayload
    coordinator: PartitionId
    prepare_batch: BatchNumber = NO_BATCH


class LeaderRole:
    """Batch building and 2PC coordination for one partition's leader."""

    def __init__(self, replica: "PartitionReplica") -> None:
        self._replica = replica
        self._in_progress_local: List[TxnPayload] = []
        self._in_progress_prepared: List[PreparedRecord] = []
        self._in_progress_index = KeyConflictIndex(replica.partition, replica.partitioner)
        self._waiting_clients: Dict[str, _WaitingClient] = {}
        self._coordinator_states: Dict[str, _CoordinatorState] = {}
        self._participant_states: Dict[str, _ParticipantState] = {}
        self._consensus_in_flight = False
        self._seal_timer = None
        self._twopc_timer = None
        self._twopc_attempts: Dict[str, int] = {}
        #: Coordinations this leader had to give up on, txn id → diagnostic.
        #: Resuming a predecessor's 2PC needs the certified header of the
        #: prepare batch; checkpoint GC pins those headers past the retention
        #: window and ``SnapshotImage`` carries them across restores, so on
        #: honest replicas this stays empty.  It remains reachable when the
        #: header is genuinely absent (e.g. state planted by a byzantine
        #: image source) and is reported here (and counted in
        #: ``two_pc_unresumable``) so the condition surfaces as a diagnostic
        #: instead of a silent stall.
        self.unresumable: Dict[str, str] = {}
        self.sealed_batches = 0
        #: Causal tracing (repro.obs): the open leader-side span of each
        #: traced transaction, and the commit request's context — needed
        #: because replies and 2PC messages are sent from batch-delivery
        #: handlers where no traced dispatch is current.
        self._obs_spans: Dict[str, Span] = {}
        self._obs_ctx: Dict[str, TraceContext] = {}

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def _partition(self) -> PartitionId:
        return self._replica.partition

    @property
    def _partitioner(self):
        return self._replica.partitioner

    def _leader_of(self, partition: PartitionId) -> ReplicaId:
        return self._replica.topology.leader(partition)

    def in_progress_size(self) -> int:
        return len(self._in_progress_local) + len(self._in_progress_prepared)

    def _admission_indexes(self) -> Tuple[KeyConflictIndex, KeyConflictIndex]:
        """Indexes for rules 2 and 3: the in-progress batch and prepared txns."""
        return (self._in_progress_index, self._replica.prepared_index)

    def _lock_interference(self, txn: TxnPayload) -> bool:
        """Augustus-baseline interference: writes hitting shared read locks."""
        locks = self._replica.locks
        for key in txn.write_keys_in(self._partition, self._partitioner):
            if locks.is_share_locked(key):
                return True
        return False

    def _acquire_write_locks(self, txn: TxnPayload) -> None:
        """Mark the transaction's local write keys as write-locked.

        TransEdge itself never consults these locks — its read-only protocol
        is lock-free — but the Augustus baseline's quorum reads do: a shared
        lock cannot be granted while an in-flight transaction holds the key,
        which is the interference the paper measures (Figure 7, Table 1).
        """
        keys = txn.write_keys_in(self._partition, self._partitioner)
        if keys:
            self._replica.locks.try_acquire(txn.txn_id, keys, LockMode.EXCLUSIVE)

    def _release_write_locks(self, txn_id: str) -> None:
        self._replica.locks.release_all(txn_id)

    def _abort_vote(self, txn_id: str) -> PreparedVote:
        """Build this partition's negative 2PC vote, signed by this leader.

        The signature is what lets remote validators attribute the abort to
        a member of the voting cluster (see :class:`PreparedVote`).
        """
        vote = PreparedVote(txn_id=txn_id, partition=self._partition, vote=False)
        return dataclasses.replace(
            vote, signature=self._replica.signer.sign(vote.abort_signing_payload())
        )

    def _reply_abort(self, txn: TxnPayload, waiting: _WaitingClient, reason: str) -> None:
        if "read-lock" in reason:
            self._replica.counters.lock_interference_aborts += 1
        else:
            self._replica.counters.conflict_aborts += 1
        self._send_commit_reply(
            waiting.client,
            CommitReply(
                request_id=waiting.request_id,
                txn_id=txn.txn_id,
                status=TxnStatus.ABORTED,
                abort_reason=reason,
            ),
        )

    # ------------------------------------------------------------------
    # causal tracing (repro.obs)
    # ------------------------------------------------------------------

    def _obs_admit(self, txn_id: str, message: CommitRequest) -> None:
        """Open the leader-side span of a freshly admitted transaction.

        ``leader:batch-wait`` (phase ``queue``) covers admission until the
        batch seals, when :meth:`_obs_seal` replaces it with
        ``leader:consensus``.  Consensus votes and 2PC bookkeeping are
        untraced protocol traffic, so these two spans are what attribute
        batching and ordering/2PC time to the transaction.
        """
        obs = self._replica.env.obs
        if not obs.tracing or message.trace is None:
            return
        parent = self._replica._current_span
        span = obs.tracer.span(
            message.trace.trace_id,
            parent.span_id if parent is not None else message.trace.span_id,
            "leader:batch-wait",
            str(self._replica.node_id),
            "queue",
        )
        self._obs_spans[txn_id] = span
        self._obs_ctx[txn_id] = message.trace

    def _obs_participant_admit(self, txn_id: str, message: CoordinatorPrepare) -> None:
        """Remember a traced prepare's context, to stamp our vote with it."""
        if self._replica.env.obs.tracing and message.trace is not None:
            self._obs_ctx[txn_id] = message.trace

    def _obs_seal(self, txn_id: str) -> None:
        """The transaction entered a sealed batch: batch-wait → consensus."""
        span = self._obs_spans.get(txn_id)
        if span is None:
            return
        tracer = self._replica.env.obs.tracer
        tracer.finish(span)
        self._obs_spans[txn_id] = tracer.span(
            span.trace_id,
            span.span_id,
            "leader:consensus",
            str(self._replica.node_id),
            "consensus",
        )

    def _obs_stamp(self, txn_id: str, message: Message) -> None:
        """Stamp a 2PC message sent from outside any traced dispatch."""
        if message.trace is not None:
            return
        span = self._obs_spans.get(txn_id)
        if span is not None:
            message.trace = span.context()
            return
        ctx = self._obs_ctx.get(txn_id)
        if ctx is not None:
            message.trace = ctx

    def _send_commit_reply(self, client: NodeId, reply: CommitReply) -> None:
        """Single exit point for every commit reply this leader sends.

        Closes the transaction's leader-side span (status mirrors the
        outcome) and stamps the reply so the client-side trace completes.
        The chaos bug ``drop-commit-replies`` patches this method.
        """
        span = self._obs_spans.pop(reply.txn_id, None)
        self._obs_ctx.pop(reply.txn_id, None)
        if span is not None:
            status = "ok" if reply.status is TxnStatus.COMMITTED else "abort"
            self._replica.env.obs.tracer.finish(span, status=status)
            if reply.trace is None:
                reply.trace = span.context()
        self._replica.env.obs.event(
            str(self._replica.node_id),
            "commit-reply",
            "debug",
            {
                "txn": reply.txn_id,
                "client": str(client),
                "status": reply.status.name.lower(),
            },
        )
        self._replica.send(client, reply)

    # ------------------------------------------------------------------
    # client commit requests
    # ------------------------------------------------------------------

    def on_commit_request(self, message: CommitRequest, src: NodeId) -> None:
        txn = message.txn
        waiting = _WaitingClient(client=src, request_id=message.request_id)
        if txn is None:
            return
        if not self._replica.is_leader:
            self._reply_abort(txn, waiting, "not the current leader of this partition")
            return
        if self._replica.recovery.in_progress and self._replica.config.failover.enabled:
            # Mid-state-transfer this replica's state is not authoritative;
            # admitting work now could propose against a stale prefix.  Only
            # refused when failover is on — with it off there is no retry
            # machinery, and refusing would regress the PR-1 behaviour the
            # flag exists to restore.
            self._reply_abort(txn, waiting, "replica is recovering, retry later")
            return
        if self._answer_duplicate_commit_request(txn, waiting):
            return
        accessed = txn.partitions(self._partitioner)
        if self._partition not in accessed:
            self._reply_abort(txn, waiting, "coordinator partition not accessed by transaction")
            return

        report = self._replica.conflict_checker().check(txn, self._admission_indexes())
        if not report.ok:
            self._reply_abort(txn, waiting, report.reason)
            return
        if self._lock_interference(txn):
            self._reply_abort(txn, waiting, "read-lock interference with a read-only transaction")
            return

        self._waiting_clients[txn.txn_id] = waiting
        self._obs_admit(txn.txn_id, message)
        self._in_progress_index.add(txn)
        self._acquire_write_locks(txn)
        if len(accessed) == 1:
            self._in_progress_local.append(txn)
        else:
            participants = frozenset(accessed - {self._partition})
            self._coordinator_states[txn.txn_id] = _CoordinatorState(
                txn=txn, participants=participants
            )
            self._in_progress_prepared.append(
                PreparedRecord(txn=txn, coordinator=self._partition)
            )
        self._ensure_seal_scheduled()

    def _answer_duplicate_commit_request(
        self, txn: TxnPayload, waiting: _WaitingClient
    ) -> bool:
        """Handle a commit request for a transaction this cluster already knows.

        Clients proactively re-send their pending requests to a freshly
        elected leader when they observe a view change (instead of waiting
        out the commit timeout), so a leader must expect duplicates: of
        transactions already decided (answer from the replicated record), of
        transactions in flight here (just re-point the reply), and of
        transactions the deposed leader prepared but never finished (adopt
        the waiting client and let the 2PC resumption machinery answer when
        the decision lands).  Returns True when the request was absorbed.
        """
        replica = self._replica
        txn_id = txn.txn_id
        decided = replica.decided.get(txn_id)
        if decided is not None:
            commit_batch, record = decided
            status = TxnStatus.COMMITTED if record.decision else TxnStatus.ABORTED
            self._send_commit_reply(
                waiting.client,
                CommitReply(
                    request_id=waiting.request_id,
                    txn_id=txn_id,
                    status=status,
                    commit_batch=commit_batch if record.decision else NO_BATCH,
                    abort_reason="" if record.decision else "a participant voted to abort",
                ),
            )
            return True
        local_batch = replica.local_decided.get(txn_id)
        if local_batch is not None:
            self._send_commit_reply(
                waiting.client,
                CommitReply(
                    request_id=waiting.request_id,
                    txn_id=txn_id,
                    status=TxnStatus.COMMITTED,
                    commit_batch=local_batch,
                ),
            )
            return True
        if txn_id in self._waiting_clients:
            # Already admitted here and still in flight: answer the newest
            # request id when the outcome is known.
            self._waiting_clients[txn_id] = waiting
            return True
        group = replica.prepared_batches.group_of_txn(txn_id)
        if group is not None and group.records[txn_id].coordinator == self._partition:
            # Prepared by a predecessor leader of this same cluster and still
            # undecided: adopt the client and re-drive the vote collection.
            self._waiting_clients[txn_id] = waiting
            self.nudge_two_pc()
            return True
        return False

    # ------------------------------------------------------------------
    # 2PC: participant side
    # ------------------------------------------------------------------

    def on_coordinator_prepare(self, message: CoordinatorPrepare, src: NodeId) -> None:
        txn = message.txn
        if txn is None or not self._replica.is_leader:
            return
        if self._replica.recovery.in_progress and self._replica.config.failover.enabled:
            # State not authoritative yet; the coordinator's 2PC retry timer
            # re-sends the prepare.  (Without failover there are no retries,
            # so dropping here would strand the transaction — fall through
            # to the PR-1 behaviour instead.)
            return
        if txn.txn_id in self._participant_states:
            # Duplicate from a retrying (or freshly elected) coordinator
            # leader whose predecessor lost our vote: re-send it once the
            # prepare has been written, instead of staying silent forever.
            self._resend_participant_vote(txn.txn_id)
            return
        decided = self._replica.decided.get(txn.txn_id)
        if decided is not None:
            # Already decided and delivered here; the coordinator (or its
            # successor) evidently missed it — hand the record straight back.
            commit_batch, record = decided
            self._replica.send(
                self._leader_of(message.coordinator),
                DecisionMessage(record=record, commit_batch=commit_batch),
            )
            return
        group = self._replica.prepared_batches.group_of_txn(txn.txn_id)
        if group is not None:
            # Prepared under a previous leader of *this* cluster (the group
            # is replicated state); rebuild the vote rather than re-admit.
            self._resend_recovered_vote(txn.txn_id, group.batch_number, message.coordinator)
            return
        # Verify the prepare really went through the coordinator cluster's consensus.
        if message.header is None or not message.header.verify(
            self._replica.verifier,
            self._replica.topology.members(message.coordinator),
            self._replica.config.certificate_size,
        ):
            return

        report = self._replica.conflict_checker().check(txn, self._admission_indexes())
        interference = self._lock_interference(txn)
        if not report.ok or interference:
            if interference:
                self._replica.counters.lock_interference_aborts += 1
            else:
                self._replica.counters.conflict_aborts += 1
            self._replica.send(
                self._leader_of(message.coordinator),
                ParticipantPrepared(vote=self._abort_vote(txn.txn_id)),
            )
            return

        self._participant_states[txn.txn_id] = _ParticipantState(
            txn=txn, coordinator=message.coordinator
        )
        self._obs_participant_admit(txn.txn_id, message)
        self._in_progress_index.add(txn)
        self._acquire_write_locks(txn)
        self._in_progress_prepared.append(
            PreparedRecord(txn=txn, coordinator=message.coordinator)
        )
        self._ensure_seal_scheduled()

    # ------------------------------------------------------------------
    # 2PC: coordinator side
    # ------------------------------------------------------------------

    def on_participant_prepared(self, message: ParticipantPrepared, src: NodeId) -> None:
        vote = message.vote
        if vote is None or not self._replica.is_leader:
            return
        state = self._coordinator_states.get(vote.txn_id)
        if state is None or state.decided:
            return
        if vote.vote:
            # A positive vote must prove the prepare went through the
            # participant cluster's consensus.
            valid = vote.header is not None and vote.header.verify(
                self._replica.verifier,
                self._replica.topology.members(vote.partition),
                self._replica.config.certificate_size,
            )
            if not valid:
                if self._replica.config.reliability.enabled:
                    # An unverifiable vote is *no* vote: this coordinator
                    # cannot sign a negative vote on the participant's
                    # behalf (abort records now require the voting
                    # cluster's signature), so it waits and re-solicits
                    # through the 2PC retry timer instead of fabricating
                    # an abort it could never justify.
                    return
                # Legacy behaviour (pre-signed-abort): downgrade to an
                # unsigned negative vote.
                vote = PreparedVote(
                    txn_id=vote.txn_id, partition=vote.partition, vote=False
                )
        state.votes[vote.partition] = vote
        self._maybe_decide(state)

    def _maybe_decide(self, state: _CoordinatorState) -> None:
        if state.decided or state.own_vote is None:
            return
        if not state.participants <= set(state.votes):
            return
        decision = all(vote.vote for vote in state.votes.values())
        all_votes = dict(state.votes)
        all_votes[self._partition] = state.own_vote
        record = CommitRecord(
            txn=state.txn,
            coordinator=self._partition,
            decision=decision,
            prepare_batch=state.prepare_batch,
            votes=all_votes,
        )
        state.decided = True
        self._replica.prepared_batches.record_decision(record)
        self._ensure_seal_scheduled()

    def on_decision(self, message: DecisionMessage, src: NodeId) -> None:
        record = message.record
        if record is None or not self._replica.is_leader:
            return
        group = self._replica.prepared_batches.group_of_txn(record.txn.txn_id)
        if group is None:
            return  # we never prepared it (e.g. we voted no), nothing to do
        if record.txn.txn_id in group.decisions:
            return  # duplicate decision
        self._replica.prepared_batches.record_decision(record)
        self._participant_states.pop(record.txn.txn_id, None)
        self._ensure_seal_scheduled()

    # ------------------------------------------------------------------
    # 2PC resumption and retry (repro.recovery PR 3)
    # ------------------------------------------------------------------

    def nudge_two_pc(self) -> None:
        """External hint (DecisionQuery for an undecided txn) to re-drive 2PC."""
        self._ensure_twopc_timer()

    def _ensure_twopc_timer(self) -> None:
        replica = self._replica
        config = replica.config.failover
        if not config.enabled or not replica.is_leader or self._twopc_timer is not None:
            return
        if not replica.prepared_batches.has_undecided():
            return
        self._twopc_timer = replica.schedule(config.two_pc_retry_ms, self._on_twopc_timer)

    def _on_twopc_timer(self) -> None:
        self._twopc_timer = None
        replica = self._replica
        config = replica.config.failover
        if (
            not config.enabled
            or not replica.is_leader
            or replica.crashed
            or replica.leader_role is not self
            or replica.recovery.in_progress
        ):
            return
        retriable = False
        for txn_id, record in list(replica.prepared_batches.pending_transactions()):
            attempts = self._twopc_attempts.get(txn_id, 0)
            if attempts >= config.two_pc_max_retries:
                continue  # stranded past the budget; DecisionQuery may still land
            self._twopc_attempts[txn_id] = attempts + 1
            retriable = True
            replica.counters.two_pc_retries += 1
            if record.coordinator == self._partition:
                self._redrive_coordinated(txn_id, record)
            else:
                self._redrive_participated(txn_id, record)
        if retriable:
            self._ensure_twopc_timer()

    def _redrive_coordinated(self, txn_id: str, record: PreparedRecord) -> None:
        """Coordinator side: re-solicit the votes we are missing.

        The vote collection is leader-volatile by design; a leader elected
        after a crash rebuilds it from the replicated prepare group and the
        retained certified header of the prepare batch, then re-sends
        ``CoordinatorPrepare`` to every participant without a recorded vote
        (participants answer duplicates by re-sending their vote).
        """
        replica = self._replica
        state = self._coordinator_states.get(txn_id)
        if state is None:
            group = replica.prepared_batches.group_of_txn(txn_id)
            if group is None:
                return
            header = replica.header_at(group.batch_number)
            if header is None:
                # The coordinator-side vote's proof is the prepare batch's
                # certified header, and it is gone.  Checkpoint GC pins
                # headers of undecided prepare batches past the retention
                # window and the checkpoint image carries them across
                # restores, so an honest replica never lands here; report it
                # loudly — the participants' own DecisionQuery path remains
                # their only way out.
                self._note_unresumable(
                    txn_id,
                    f"prepare batch {group.batch_number} header not retained "
                    f"(pruned past the retention window and absent from the "
                    f"checkpoint image); coordination cannot be resumed",
                )
                return
            state = _CoordinatorState(
                txn=record.txn,
                participants=frozenset(
                    record.txn.partitions(self._partitioner) - {self._partition}
                ),
                prepare_batch=group.batch_number,
            )
            state.own_vote = PreparedVote(
                txn_id=txn_id,
                partition=self._partition,
                vote=True,
                prepare_batch=group.batch_number,
                cd_vector=header.cd_vector,
                header=header,
            )
            self._coordinator_states[txn_id] = state
        if state.decided or state.own_vote is None:
            return
        header = state.own_vote.header
        for participant in sorted(state.participants - set(state.votes)):
            self._replica.send(
                self._leader_of(participant),
                CoordinatorPrepare(
                    txn=state.txn,
                    coordinator=self._partition,
                    prepare_batch=state.prepare_batch,
                    header=header,
                ),
            )
        self._maybe_decide(state)

    def _note_unresumable(self, txn_id: str, reason: str) -> None:
        """Record (once per transaction) that a coordination cannot resume."""
        if txn_id in self.unresumable:
            return
        self.unresumable[txn_id] = reason
        self._replica.counters.two_pc_unresumable += 1

    def _redrive_participated(self, txn_id: str, record: PreparedRecord) -> None:
        """Participant side: re-send our vote and ask anyone for the decision.

        The vote covers the case of a coordinator leader that lost its vote
        collection; the ``DecisionQuery`` broadcast covers the case of a
        decision that was certified (it is in the coordinator cluster's log)
        but whose broadcast died with the coordinator's leader — any replica
        that delivered the commit record answers.
        """
        replica = self._replica
        group = replica.prepared_batches.group_of_txn(txn_id)
        if group is not None:
            self._resend_recovered_vote(txn_id, group.batch_number, record.coordinator)
        for member in replica.topology.members(record.coordinator):
            replica.send(
                member, DecisionQuery(txn_id=txn_id, partition=record.coordinator)
            )

    def _resend_participant_vote(self, txn_id: str) -> None:
        """Answer a duplicate ``CoordinatorPrepare`` with our existing vote."""
        state = self._participant_states.get(txn_id)
        if state is None or state.prepare_batch == NO_BATCH:
            return  # prepare not written yet; the vote follows delivery
        self._resend_recovered_vote(txn_id, state.prepare_batch, state.coordinator)

    def _resend_recovered_vote(
        self, txn_id: str, prepare_batch: BatchNumber, coordinator: PartitionId
    ) -> None:
        """Rebuild and send the positive vote written in ``prepare_batch``."""
        replica = self._replica
        header = replica.header_at(prepare_batch)
        if header is None:
            return  # pruned past retention; the coordinator must query decisions
        vote = PreparedVote(
            txn_id=txn_id,
            partition=self._partition,
            vote=True,
            prepare_batch=prepare_batch,
            cd_vector=header.cd_vector,
            header=header,
        )
        replica.send(
            self._leader_of(coordinator), ParticipantPrepared(vote=vote, header=header)
        )

    # ------------------------------------------------------------------
    # batch sealing
    # ------------------------------------------------------------------

    def propose_genesis(self) -> None:
        """Write the bootstrap batch (number 0) certifying the preloaded state.

        The genesis batch carries no transactions — only the read-only
        segment with the Merkle root of the initial data, an empty CD vector
        and LCE = -1 — so that read-only clients have a certified header to
        verify against from the very first request.
        """
        replica = self._replica
        if not replica.is_leader or self._consensus_in_flight or replica.log.next_seq != 0:
            return
        batch = Batch(
            partition=self._partition,
            number=0,
            read_only=ReadOnlySegment(
                cd_vector=replica.current_cd_vector().with_entry(self._partition, 0),
                lce=replica.current_lce(),
                merkle_root=replica.merkle.root,
                timestamp_ms=replica.now,
            ),
        )
        self._consensus_in_flight = True
        self.sealed_batches += 1
        replica.engine.propose(batch)

    def has_sealable_work(self) -> bool:
        if self.in_progress_size() > 0:
            return True
        return bool(self._replica.prepared_batches.ready_prefix())

    def _ensure_seal_scheduled(self) -> None:
        if not self._replica.is_leader:
            return
        batch_config = self._replica.config.batch
        if not self._consensus_in_flight and self.in_progress_size() >= batch_config.max_size:
            self._seal_batch()
            return
        if self._seal_timer is None and self.has_sealable_work():
            self._seal_timer = self._replica.schedule(batch_config.timeout_ms, self._on_seal_timer)

    def _on_seal_timer(self) -> None:
        self._seal_timer = None
        if not self._replica.is_leader or self._replica.leader_role is not self:
            return
        if self._consensus_in_flight:
            # Delivery of the in-flight batch re-arms sealing.
            return
        if self.has_sealable_work():
            self._seal_batch()

    def _seal_batch(self) -> None:
        replica = self._replica
        if self._consensus_in_flight or not replica.is_leader or replica.crashed:
            return
        if replica.leader_role is not self:
            return  # a crash-reset replaced this role; stale timers must not seal
        batch_number = replica.log.next_seq

        # Re-validate admitted transactions against the current state: batches
        # delivered since admission may have introduced conflicts.
        local_txns: List[TxnPayload] = []
        prepared_records: List[PreparedRecord] = []
        accepted_index = KeyConflictIndex(self._partition, self._partitioner)
        seal_indexes = (accepted_index, replica.prepared_index)

        checker = replica.conflict_checker()
        for txn in self._in_progress_local:
            report = checker.check(txn, seal_indexes)
            if report.ok and not self._lock_interference(txn):
                local_txns.append(txn)
                accepted_index.add(txn)
                self._obs_seal(txn.txn_id)
            else:
                self._release_write_locks(txn.txn_id)
                waiting = self._waiting_clients.pop(txn.txn_id, None)
                if waiting is not None:
                    reason = report.reason or "read-lock interference with a read-only transaction"
                    self._reply_abort(txn, waiting, reason)
        for record in self._in_progress_prepared:
            report = checker.check(record.txn, seal_indexes)
            if report.ok and not self._lock_interference(record.txn):
                prepared_records.append(record)
                accepted_index.add(record.txn)
                self._obs_seal(record.txn.txn_id)
            else:
                self._drop_prepared_record(record, report.reason)
        self._in_progress_local = []
        self._in_progress_prepared = []
        self._in_progress_index.clear()

        # Committed segment: the ready prefix of prepare groups (Definition 4.1).
        ready_groups = replica.prepared_batches.ready_prefix()
        committed_records: List[CommitRecord] = []
        for group in ready_groups:
            committed_records.extend(group.ordered_decisions())

        # Read-only segment: LCE, CD vector (Algorithm 1) and Merkle root.
        lce = replica.current_lce()
        if ready_groups:
            lce = max(lce, max(group.batch_number for group in ready_groups))
        cd = replica.current_cd_vector().with_entry(self._partition, batch_number)
        for record in committed_records:
            if record.decision:
                cd = combine_all(cd, record.reported_vectors())
        cd = cd.with_entry(self._partition, batch_number)

        updates = {}
        for txn in local_txns:
            updates.update(txn.writes_in(self._partition, self._partitioner))
        for record in committed_records:
            if record.decision:
                updates.update(record.txn.writes_in(self._partition, self._partitioner))

        batch = Batch(
            partition=self._partition,
            number=batch_number,
            local_txns=tuple(local_txns),
            prepared=tuple(prepared_records),
            committed=tuple(committed_records),
            read_only=ReadOnlySegment(
                cd_vector=cd,
                lce=lce,
                merkle_root=replica._preview_root(updates),
                timestamp_ms=replica.now,
            ),
        )
        if batch.size() == 0:
            return

        # Sealing occupies the leader for a cost proportional to the batch.
        costs = replica.config.costs
        replica.occupy(costs.batch_base_ms + batch.size() * (costs.hash_ms + costs.conflict_check_ms))

        self._consensus_in_flight = True
        self.sealed_batches += 1
        replica.env.obs.event(
            str(replica.node_id),
            "batch-sealed",
            "debug",
            {
                "partition": self._partition,
                "batch": batch_number,
                "local": len(local_txns),
                "prepared": len(prepared_records),
                "committed": len(committed_records),
            },
        )
        replica.engine.propose(batch)

    def _drop_prepared_record(self, record: PreparedRecord, reason: str) -> None:
        """A prepared record turned invalid at seal time; undo its bookkeeping."""
        txn_id = record.txn.txn_id
        reason = reason or "conflict discovered while sealing the batch"
        self._release_write_locks(txn_id)
        if record.coordinator == self._partition:
            self._coordinator_states.pop(txn_id, None)
            waiting = self._waiting_clients.pop(txn_id, None)
            if waiting is not None:
                self._reply_abort(record.txn, waiting, reason)
        else:
            self._participant_states.pop(txn_id, None)
            prepared = ParticipantPrepared(vote=self._abort_vote(txn_id))
            self._obs_stamp(txn_id, prepared)
            self._obs_ctx.pop(txn_id, None)
            self._replica.send(self._leader_of(record.coordinator), prepared)
            self._replica.counters.conflict_aborts += 1

    # ------------------------------------------------------------------
    # post-delivery actions
    # ------------------------------------------------------------------

    def on_recovery_complete(self) -> None:
        """Unwedge a proposal that catch-up state transfer superseded.

        A leader elected by a view change while it was behind can propose
        its in-flight batch at a sequence the cluster already decided with
        a *different* batch.  Catch-up state transfer fast-forwards the
        engine past that sequence and compacts the proposal's instance
        record, so :meth:`on_batch_delivered` never fires for it — without
        this reset the leader would never seal again (every later commit,
        including post-quiescence probes, would starve behind the phantom
        in-flight batch).  The dropped batch's clients time out and settle
        through unknown-outcome resolution, exactly as for a deposed
        leader's in-progress batch.
        """
        if not self._consensus_in_flight:
            return
        if self._replica.engine.has_pending_work():
            return  # the proposal is still live in the current view
        self._consensus_in_flight = False
        self._ensure_seal_scheduled()

    def on_batch_delivered(self, seq: BatchNumber, batch: Batch, header: CertifiedHeader) -> None:
        self._consensus_in_flight = False
        if not self._replica.is_leader:
            return

        # Local transactions are now committed: tell their clients.
        for txn in batch.local_txns:
            self._release_write_locks(txn.txn_id)
            waiting = self._waiting_clients.pop(txn.txn_id, None)
            if waiting is not None:
                self._send_commit_reply(
                    waiting.client,
                    CommitReply(
                        request_id=waiting.request_id,
                        txn_id=txn.txn_id,
                        status=TxnStatus.COMMITTED,
                        commit_batch=seq,
                    ),
                )

        # Newly prepared distributed transactions: drive the next 2PC step.
        for record in batch.prepared:
            if record.coordinator == self._partition:
                self._after_coordinator_prepare_written(record, seq, header)
            else:
                self._after_participant_prepare_written(record, seq, header)

        # Commit records written in this batch: inform participants and clients.
        for record in batch.committed:
            self._release_write_locks(record.txn.txn_id)
            self._twopc_attempts.pop(record.txn.txn_id, None)
            if record.coordinator == self._partition:
                self._after_decision_written(record, seq, header)

        self._ensure_seal_scheduled()
        # Prepared-but-undecided work now exists (or persists): make sure the
        # retry timer will notice if its decisions stop arriving.
        self._ensure_twopc_timer()

    def _after_coordinator_prepare_written(
        self, record: PreparedRecord, seq: BatchNumber, header: CertifiedHeader
    ) -> None:
        state = self._coordinator_states.get(record.txn.txn_id)
        if state is None:
            return
        state.prepare_batch = seq
        state.own_vote = PreparedVote(
            txn_id=record.txn.txn_id,
            partition=self._partition,
            vote=True,
            prepare_batch=seq,
            cd_vector=header.cd_vector,
            header=header,
        )
        for participant in state.participants:
            prepare = CoordinatorPrepare(
                txn=record.txn,
                coordinator=self._partition,
                prepare_batch=seq,
                header=header,
            )
            self._obs_stamp(record.txn.txn_id, prepare)
            self._replica.send(self._leader_of(participant), prepare)
        self._maybe_decide(state)

    def _after_participant_prepare_written(
        self, record: PreparedRecord, seq: BatchNumber, header: CertifiedHeader
    ) -> None:
        state = self._participant_states.get(record.txn.txn_id)
        if state is None:
            return
        state.prepare_batch = seq
        vote = PreparedVote(
            txn_id=record.txn.txn_id,
            partition=self._partition,
            vote=True,
            prepare_batch=seq,
            cd_vector=header.cd_vector,
            header=header,
        )
        prepared = ParticipantPrepared(vote=vote, header=header)
        self._obs_stamp(record.txn.txn_id, prepared)
        self._obs_ctx.pop(record.txn.txn_id, None)
        self._replica.send(self._leader_of(record.coordinator), prepared)

    def _after_decision_written(
        self, record: CommitRecord, seq: BatchNumber, header: CertifiedHeader
    ) -> None:
        state = self._coordinator_states.pop(record.txn.txn_id, None)
        participants = (
            state.participants
            if state is not None
            else frozenset(record.txn.partitions(self._partitioner) - {self._partition})
        )
        for participant in participants:
            decision = DecisionMessage(record=record, commit_batch=seq, header=header)
            self._obs_stamp(record.txn.txn_id, decision)
            self._replica.send(self._leader_of(participant), decision)
        waiting = self._waiting_clients.pop(record.txn.txn_id, None)
        if waiting is not None:
            status = TxnStatus.COMMITTED if record.decision else TxnStatus.ABORTED
            reason = "" if record.decision else "a participant voted to abort"
            self._send_commit_reply(
                waiting.client,
                CommitReply(
                    request_id=waiting.request_id,
                    txn_id=record.txn.txn_id,
                    status=status,
                    commit_batch=seq if record.decision else NO_BATCH,
                    abort_reason=reason,
                ),
            )

    # ------------------------------------------------------------------
    # view changes
    # ------------------------------------------------------------------

    def on_view_change(self, new_view: int, new_leader: ReplicaId) -> None:
        """React to a leader change in this cluster.

        The in-progress batch of a deposed leader is dropped (its clients will
        time out and retry); a newly elected leader starts with an empty
        in-progress batch, resumes sealing from its delivered prefix, and
        *resumes unfinished 2PC*: the replicated prepare groups tell it which
        distributed transactions its predecessor left undecided, and it
        immediately re-solicits the missing votes / re-sends its own (the
        vote collection itself is leader-volatile by design).  A demoted
        leader drops its stale coordination state wholesale — votes sent to
        it land on the new leader instead.
        """
        self._consensus_in_flight = False
        if self._seal_timer is not None:
            self._seal_timer.cancel()
            self._seal_timer = None
        if self._twopc_timer is not None:
            self._twopc_timer.cancel()
            self._twopc_timer = None
        self._twopc_attempts = {}
        # Leader-side spans die with the leadership: the successor answers
        # re-sent requests from its replicated state (its replies still
        # carry the original context, so the client-side trace completes).
        if self._obs_spans:
            tracer = self._replica.env.obs.tracer
            for span in self._obs_spans.values():
                tracer.finish(span, status="leader-changed")
            self._obs_spans.clear()
        self._obs_ctx.clear()
        if self._replica.node_id != new_leader:
            self._in_progress_local = []
            self._in_progress_prepared = []
            self._in_progress_index.clear()
            self._coordinator_states.clear()
            self._participant_states.clear()
        else:
            self._ensure_seal_scheduled()
            self._resume_pending_two_pc()

    def _resume_pending_two_pc(self) -> None:
        """Newly elected leader: immediately re-drive every undecided 2PC txn."""
        replica = self._replica
        if not replica.config.failover.enabled:
            return
        for txn_id, record in list(replica.prepared_batches.pending_transactions()):
            if record.coordinator == self._partition:
                self._redrive_coordinated(txn_id, record)
            else:
                self._redrive_participated(txn_id, record)
        self._ensure_twopc_timer()
