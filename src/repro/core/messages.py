"""Application-level protocol messages.

Three groups of messages:

* **client ↔ cluster** — reads, commit requests and the snapshot read-only
  protocol (round 1 and round 2), plus the Augustus-baseline lock-read
  messages;
* **cluster ↔ cluster (2PC over BFT)** — coordinator-prepare, the
  participants' prepared votes and the final decision, each carrying the
  certificates produced by the sending cluster's consensus;
* replies, all correlated to their requests via ``request_id``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.common.ids import NO_BATCH, BatchNumber, PartitionId
from repro.common.types import Key, TxnStatus, Value
from repro.crypto.merkle import MerkleProof
from repro.core.batch import CertifiedHeader, CommitRecord, PreparedVote
from repro.core.transaction import TxnPayload
from repro.simnet.messages import Message, ReplyMessage, RequestMessage


# ---------------------------------------------------------------------------
# Client reads (used while building read-write transactions)
# ---------------------------------------------------------------------------


@dataclass
class ReadRequest(RequestMessage):
    """Read current committed values of ``keys`` from one partition."""

    keys: Tuple[Key, ...] = ()


@dataclass
class ReadReply(ReplyMessage):
    """Values and versions for a :class:`ReadRequest`."""

    values: Dict[Key, Value] = field(default_factory=dict)
    versions: Dict[Key, BatchNumber] = field(default_factory=dict)
    partition: PartitionId = 0


# ---------------------------------------------------------------------------
# Commit path (read-write transactions)
# ---------------------------------------------------------------------------


@dataclass
class CommitRequest(RequestMessage):
    """Client → coordinator cluster: please commit this transaction."""

    txn: Optional[TxnPayload] = None


@dataclass
class CommitReply(ReplyMessage):
    """Coordinator cluster → client: the transaction's fate."""

    txn_id: str = ""
    status: TxnStatus = TxnStatus.ABORTED
    commit_batch: BatchNumber = NO_BATCH
    abort_reason: str = ""


@dataclass
class ReplicaCommitReply(Message):
    """Each coordinator replica → client: replicated commit evidence.

    The leader's :class:`CommitReply` is a single point of failure — a
    leader that crashes after its cluster certifies the outcome but before
    answering strands the client until timeout/failover.  Every replica
    therefore reports the outcome it just applied from a delivered batch;
    the client accepts once ``f + 1`` replicas of the coordinator cluster
    agree (at most ``f`` are faulty, so at least one of them is honest).
    Followers do not know the client's request id, so this is a plain
    :class:`Message` correlated by ``txn_id``; the client synthesizes a
    request-correlated :class:`CommitReply` once the quorum is reached.
    """

    txn_id: str = ""
    partition: PartitionId = 0
    status: TxnStatus = TxnStatus.ABORTED
    commit_batch: BatchNumber = NO_BATCH
    abort_reason: str = ""


# ---------------------------------------------------------------------------
# 2PC over BFT (leader ↔ leader)
# ---------------------------------------------------------------------------


@dataclass
class CoordinatorPrepare(Message):
    """Coordinator cluster → participant cluster: prepare this transaction.

    Carries the certified header of the coordinator's batch containing the
    prepare record so the participant can verify the request really went
    through the coordinator cluster's consensus.
    """

    txn: Optional[TxnPayload] = None
    coordinator: PartitionId = 0
    prepare_batch: BatchNumber = NO_BATCH
    header: Optional[CertifiedHeader] = None


@dataclass
class ParticipantPrepared(Message):
    """Participant cluster → coordinator cluster: our vote for the transaction."""

    vote: Optional[PreparedVote] = None
    header: Optional[CertifiedHeader] = None


@dataclass
class DecisionMessage(Message):
    """Coordinator cluster → participant clusters: the final commit/abort record."""

    record: Optional[CommitRecord] = None
    commit_batch: BatchNumber = NO_BATCH
    header: Optional[CertifiedHeader] = None


@dataclass
class DecisionQuery(Message):
    """Participant leader → coordinator-cluster replicas: how did ``txn_id`` end?

    Sent while a prepared transaction stays undecided past the 2PC retry
    timeout — typically because the coordinator's leader crashed between
    certifying the decision and broadcasting it.  Decisions are replicated
    log entries (and ride in checkpoint images), so *any* coordinator-cluster
    replica that delivered the commit record can answer; the participant does
    not depend on the (possibly dead) coordinator leader.
    """

    txn_id: str = ""
    partition: PartitionId = 0


@dataclass
class DecisionReply(Message):
    """Coordinator-cluster replica → participant leader: the certified record.

    The receiver verifies the record exactly as it would verify a committed
    segment entry (positive decisions carry certified headers from every
    accessed cluster), so a single — possibly byzantine — responder suffices.
    """

    record: Optional[CommitRecord] = None
    commit_batch: BatchNumber = NO_BATCH


@dataclass
class LeaderComplaint(Message):
    """Client → cluster followers: the leader is not answering me.

    Fire-and-forget nudge a client sends to every cluster member after its
    commit request timed out.  Followers treat it as progress-monitor
    evidence (the classic PBFT "client broadcasts after leader silence"
    trigger), so a leader that crashed while idle — leaving no in-flight
    consensus instance to betray it — is still suspected and replaced.

    ``txn`` is the complaint's evidence: the transaction whose commit
    request went unanswered.  With the reliability layer enabled followers
    refuse to act on a complaint without it, and corroborate the rest by
    forwarding the transaction to the leader as a :class:`ComplaintProbe`
    — the complaint only sustains suspicion while that forwarded request
    goes unanswered, so a lying client cannot vote out a healthy leader.
    """

    partition: PartitionId = 0
    txn: Optional[TxnPayload] = None


@dataclass
class ComplaintProbe(Message):
    """Follower → own leader: a client claims this request went unanswered.

    The classic PBFT relay: replicas receiving a client's complaint forward
    the allegedly-ignored request to the primary rather than taking the
    client's word for it.  A live leader answers immediately with a
    :class:`ComplaintProbeAck` (and the client's own retry machinery
    re-delivers the request proper); a dead one stays silent, leaving the
    complaint standing as progress-monitor evidence.
    """

    partition: PartitionId = 0
    txn: Optional[TxnPayload] = None


@dataclass
class ComplaintProbeAck(Message):
    """Leader → probing follower: I am alive and saw the forwarded request."""

    partition: PartitionId = 0
    txn_id: str = ""


# ---------------------------------------------------------------------------
# Snapshot read-only transactions (TransEdge protocol, Section 4)
# ---------------------------------------------------------------------------


@dataclass
class ReadOnlyRequest(RequestMessage):
    """Round 1: read ``keys`` from a single node of one partition."""

    keys: Tuple[Key, ...] = ()


@dataclass
class ReadOnlyReply(ReplyMessage):
    """Round-1 response: values, Merkle proofs and the certified header."""

    partition: PartitionId = 0
    values: Dict[Key, Value] = field(default_factory=dict)
    versions: Dict[Key, BatchNumber] = field(default_factory=dict)
    proofs: Dict[Key, MerkleProof] = field(default_factory=dict)
    header: Optional[CertifiedHeader] = None


@dataclass
class SnapshotRequest(RequestMessage):
    """Round 2: read ``keys`` from the snapshot satisfying a dependency.

    ``required_prepare_batch`` is the CD-vector entry that was not satisfied
    in round 1: the responder must answer from the earliest batch whose LCE
    is at least this value (i.e. the first snapshot in which that prepare
    group has committed).
    """

    keys: Tuple[Key, ...] = ()
    required_prepare_batch: BatchNumber = NO_BATCH


@dataclass
class SnapshotReply(ReplyMessage):
    """Round-2 response, same shape as round 1 but for the older/newer snapshot."""

    partition: PartitionId = 0
    values: Dict[Key, Value] = field(default_factory=dict)
    versions: Dict[Key, BatchNumber] = field(default_factory=dict)
    proofs: Dict[Key, MerkleProof] = field(default_factory=dict)
    header: Optional[CertifiedHeader] = None


# ---------------------------------------------------------------------------
# Augustus baseline (quorum reads with shared locks)
# ---------------------------------------------------------------------------


@dataclass
class LockReadRequest(RequestMessage):
    """Augustus: acquire shared locks on ``keys`` and return their values."""

    txn_id: str = ""
    keys: Tuple[Key, ...] = ()


@dataclass
class LockReadReply(ReplyMessage):
    """Augustus: values plus whether the shared locks were granted."""

    partition: PartitionId = 0
    granted: bool = False
    values: Dict[Key, Value] = field(default_factory=dict)
    versions: Dict[Key, BatchNumber] = field(default_factory=dict)


@dataclass
class LockReleaseMessage(Message):
    """Augustus: release all shared locks held by ``txn_id`` (fire and forget)."""

    txn_id: str = ""
