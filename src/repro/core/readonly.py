"""Client-side logic of snapshot read-only transactions.

A distributed read-only transaction contacts a *single* node per accessed
partition, verifies the authenticity of each response (Merkle proofs against
the certified batch header), and then checks cross-partition consistency with
the Conflict-Dependency vectors (Algorithm 2 of the paper).  Any unsatisfied
dependency is repaired with one extra round that asks the lagging partition
for the specific snapshot the dependency names; Theorem 4.6 guarantees a
third round is never needed.

This module holds the pure (network-free) parts of that protocol so they can
be unit- and property-tested in isolation; :mod:`repro.core.client` wires
them to the simulated network.

Note on round counts: Theorem 4.6 argues one repair round suffices, but the
repair snapshot — the earliest whose LCE satisfies the dependency — also
carries every *other* commit up to that LCE (the ordering constraint commits
groups in order), and such a commit's counterpart on a third partition can
have landed in a batch later than that partition's round-1 snapshot.  The
client therefore re-runs this check after each repair and loops to a
fixpoint (``TransEdgeClient.MAX_REPAIR_ROUNDS`` bounds the degenerate case),
which is what actually guarantees the returned snapshot is a consistent cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ReadOnlyProtocolError
from repro.common.ids import NO_BATCH, BatchNumber, PartitionId
from repro.common.types import Key, Value
from repro.crypto.merkle import MerkleProof, verify_proof
from repro.crypto.signatures import KeyRegistry
from repro.core.batch import CertifiedHeader
from repro.core.topology import ClusterTopology


@dataclass
class PartitionSnapshot:
    """What one partition returned for a read-only transaction round."""

    partition: PartitionId
    keys: Tuple[Key, ...]
    values: Dict[Key, Value] = field(default_factory=dict)
    versions: Dict[Key, BatchNumber] = field(default_factory=dict)
    proofs: Dict[Key, MerkleProof] = field(default_factory=dict)
    header: Optional[CertifiedHeader] = None

    @property
    def lce(self) -> BatchNumber:
        if self.header is None:
            return NO_BATCH
        return self.header.lce

    @property
    def batch_number(self) -> BatchNumber:
        if self.header is None:
            return NO_BATCH
        return self.header.number


def verify_snapshot(
    snapshot: PartitionSnapshot,
    registry: KeyRegistry,
    topology: ClusterTopology,
    config: SystemConfig,
    now_ms: Optional[float] = None,
) -> bool:
    """Authenticate one partition's response.

    Checks, in order: the certified header carries enough valid cluster
    signatures over the batch digest; every returned value has a Merkle proof
    that verifies against the certified root; and, when a freshness bound is
    configured, that the batch timestamp is recent enough.
    """
    header = snapshot.header
    if header is None:
        return False
    if header.partition != snapshot.partition:
        return False
    members = topology.members(snapshot.partition)
    if not header.verify(registry, members, config.certificate_size):
        return False
    for key, value in snapshot.values.items():
        proof = snapshot.proofs.get(key)
        if proof is None:
            return False
        if not verify_proof(header.merkle_root, key, value, proof):
            return False
    bound = config.freshness.client_staleness_bound_ms
    if bound is not None and now_ms is not None:
        if now_ms - header.timestamp_ms > bound:
            return False
    return True


def find_unsatisfied_dependencies(
    snapshots: Mapping[PartitionId, PartitionSnapshot],
) -> Dict[PartitionId, BatchNumber]:
    """Algorithm 2: cross-check CD vectors against LCEs.

    For every ordered pair of accessed partitions ``(i, j)``, the dependency
    ``V_i[j]`` (a prepare-batch number at ``j``) is satisfied when partition
    ``j``'s response has ``LCE >= V_i[j]``.  The result maps each partition
    with at least one unsatisfied dependency to the highest prepare-batch
    number it must be asked for in round two.
    """
    required: Dict[PartitionId, BatchNumber] = {}
    for i, snapshot_i in snapshots.items():
        if snapshot_i.header is None:
            continue
        vector = snapshot_i.header.cd_vector
        for j, snapshot_j in snapshots.items():
            if i == j:
                continue
            dependency = vector[j]
            if dependency == NO_BATCH:
                continue
            if snapshot_j.lce >= dependency:
                continue
            required[j] = max(required.get(j, NO_BATCH), dependency)
    return required


def assemble_result(
    snapshots: Mapping[PartitionId, PartitionSnapshot],
    requested_keys: Sequence[Key],
) -> Tuple[Dict[Key, Optional[Value]], Dict[Key, BatchNumber]]:
    """Merge per-partition snapshots into the final key → value mapping."""
    values: Dict[Key, Optional[Value]] = {}
    versions: Dict[Key, BatchNumber] = {}
    by_key: Dict[Key, PartitionSnapshot] = {}
    for snapshot in snapshots.values():
        for key in snapshot.keys:
            by_key[key] = snapshot
    for key in requested_keys:
        snapshot = by_key.get(key)
        if snapshot is None:
            raise ReadOnlyProtocolError(f"no partition returned a snapshot for key {key!r}")
        values[key] = snapshot.values.get(key)
        versions[key] = snapshot.versions.get(key, NO_BATCH)
    return values, versions
