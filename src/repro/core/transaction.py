"""Transaction payloads exchanged between clients and clusters.

A :class:`TxnPayload` is the self-contained description of a read-write
transaction that a client ships to the coordinator cluster when it asks to
commit (Section 2, "Interface"): the read set with the versions that were
observed, and the buffered write set.  The same payload travels inside 2PC
messages and batch segments, so it must be canonically encodable for
signing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional

from repro.common.errors import InvalidTransactionError
from repro.common.ids import BatchNumber, PartitionId
from repro.common.types import Key, Value
from repro.storage.partitioner import HashPartitioner


@dataclass(frozen=True)
class TxnPayload:
    """A read-write transaction ready to be committed.

    ``reads`` maps each read key to the batch number (version) the value was
    read from; ``writes`` maps each written key to its new value.  Both maps
    may span several partitions — that is what makes the transaction
    distributed.
    """

    txn_id: str
    reads: Mapping[Key, BatchNumber] = field(default_factory=dict)
    writes: Mapping[Key, Value] = field(default_factory=dict)
    client: str = ""

    def __post_init__(self) -> None:
        if not self.txn_id:
            raise InvalidTransactionError("transaction id must not be empty")
        if not self.reads and not self.writes:
            raise InvalidTransactionError(
                f"transaction {self.txn_id} has neither reads nor writes"
            )

    # -- footprint helpers ----------------------------------------------------

    def keys(self) -> FrozenSet[Key]:
        return frozenset(self.reads) | frozenset(self.writes)

    def partitions(self, partitioner: HashPartitioner) -> FrozenSet[PartitionId]:
        """Partitions accessed by this transaction."""
        return partitioner.partitions_of(self.keys())

    def is_distributed(self, partitioner: HashPartitioner) -> bool:
        return len(self.partitions(partitioner)) > 1

    def read_keys_in(self, partition: PartitionId, partitioner: HashPartitioner) -> FrozenSet[Key]:
        return frozenset(partitioner.local_keys(self.reads, partition))

    def write_keys_in(self, partition: PartitionId, partitioner: HashPartitioner) -> FrozenSet[Key]:
        return frozenset(partitioner.local_keys(self.writes, partition))

    def writes_in(self, partition: PartitionId, partitioner: HashPartitioner) -> Dict[Key, Value]:
        """Write mapping restricted to ``partition``."""
        return {
            key: value
            for key, value in self.writes.items()
            if partitioner.partition_of(key) == partition
        }

    def reads_in(self, partition: PartitionId, partitioner: HashPartitioner) -> Dict[Key, BatchNumber]:
        """Read-version mapping restricted to ``partition``."""
        return {
            key: version
            for key, version in self.reads.items()
            if partitioner.partition_of(key) == partition
        }

    def is_write_only(self) -> bool:
        return not self.reads and bool(self.writes)

    # -- encoding ---------------------------------------------------------------

    def payload(self) -> dict:
        """Canonical encodable form (stable across replicas, used for digests)."""
        return {
            "txn_id": self.txn_id,
            "client": self.client,
            "reads": {key: int(version) for key, version in sorted(self.reads.items())},
            "writes": {key: value for key, value in sorted(self.writes.items())},
        }


def make_transaction(
    txn_id: str,
    reads: Optional[Mapping[Key, BatchNumber]] = None,
    writes: Optional[Mapping[Key, Value]] = None,
    client: str = "",
) -> TxnPayload:
    """Convenience constructor used by tests and the workload generator."""
    return TxnPayload(
        txn_id=txn_id, reads=dict(reads or {}), writes=dict(writes or {}), client=client
    )
