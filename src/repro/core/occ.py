"""Optimistic concurrency control: the conflict-detection rules.

TransEdge validates transactions with the three rules of Definition 3.1:

1. **Previous batches** — every read in the read set must still be the
   latest committed version of its key (no committed transaction in an
   earlier batch overwrote it);
2. **In-progress batch** — the transaction must not conflict with any
   transaction already placed in the local, prepared or committed segment of
   the batch being built;
3. **Prepared transactions** — the transaction must not conflict with any
   distributed transaction that is prepared but not yet decided.

Two transactions conflict when, restricted to the keys this partition owns,
one writes a key the other reads or writes (read-write, write-read or
write-write intersection).  Both the leader (when admitting a transaction)
and every replica (when validating a proposed batch) run exactly this code,
which is what stops a byzantine leader from sneaking a conflicting
transaction into the log.

Pending transactions (rules 2 and 3) are tracked in a
:class:`KeyConflictIndex`, keyed by data item, so that admitting a
transaction costs time proportional to its own footprint rather than to the
number of pending transactions — essential for the paper's large batch sizes
(Figures 9–15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set, Tuple

from repro.common.ids import PartitionId
from repro.common.types import Key
from repro.core.transaction import TxnPayload
from repro.storage.mvstore import MultiVersionStore
from repro.storage.partitioner import HashPartitioner


@dataclass(frozen=True)
class Footprint:
    """A transaction's read/write keys restricted to one partition."""

    reads: FrozenSet[Key]
    writes: FrozenSet[Key]

    @classmethod
    def of(
        cls, txn: TxnPayload, partition: PartitionId, partitioner: HashPartitioner
    ) -> "Footprint":
        return cls(
            reads=txn.read_keys_in(partition, partitioner),
            writes=txn.write_keys_in(partition, partitioner),
        )

    def conflicts_with(self, other: "Footprint") -> bool:
        """rw / wr / ww intersection test."""
        if self.writes & other.writes:
            return True
        if self.writes & other.reads:
            return True
        if self.reads & other.writes:
            return True
        return False

    def is_empty(self) -> bool:
        return not self.reads and not self.writes


@dataclass(frozen=True)
class ConflictReport:
    """Why a transaction cannot be admitted (``ok`` means it can)."""

    ok: bool
    reason: str = ""
    conflicting_txn: str = ""

    @classmethod
    def accept(cls) -> "ConflictReport":
        return cls(ok=True)

    @classmethod
    def reject(cls, reason: str, conflicting_txn: str = "") -> "ConflictReport":
        return cls(ok=False, reason=reason, conflicting_txn=conflicting_txn)


def stale_read_check(
    txn: TxnPayload,
    partition: PartitionId,
    partitioner: HashPartitioner,
    store: MultiVersionStore,
) -> Optional[Key]:
    """Rule 1: return the first stale read key, or ``None`` when all are fresh."""
    for key, version in txn.reads_in(partition, partitioner).items():
        if store.version_of(key) != version:
            return key
    return None


def transactions_conflict(
    a: TxnPayload,
    b: TxnPayload,
    partition: PartitionId,
    partitioner: HashPartitioner,
) -> bool:
    """Conflict test between two transactions, restricted to ``partition``."""
    return Footprint.of(a, partition, partitioner).conflicts_with(
        Footprint.of(b, partition, partitioner)
    )


class KeyConflictIndex:
    """Per-key index of pending transactions' footprints.

    One index tracks one set of pending transactions (e.g. the in-progress
    batch, or the prepared-but-unwritten distributed transactions).  Lookups
    touch only the candidate transaction's own keys.
    """

    def __init__(self, partition: PartitionId, partitioner: HashPartitioner) -> None:
        self._partition = partition
        self._partitioner = partitioner
        self._readers: Dict[Key, Set[str]] = {}
        self._writers: Dict[Key, Set[str]] = {}
        self._footprints: Dict[str, Footprint] = {}

    def __len__(self) -> int:
        return len(self._footprints)

    def __contains__(self, txn_id: str) -> bool:
        return txn_id in self._footprints

    def clear(self) -> None:
        self._readers.clear()
        self._writers.clear()
        self._footprints.clear()

    def add(self, txn: TxnPayload) -> None:
        """Index ``txn``'s local footprint (no-op when already present)."""
        if txn.txn_id in self._footprints:
            return
        footprint = Footprint.of(txn, self._partition, self._partitioner)
        self._footprints[txn.txn_id] = footprint
        for key in footprint.reads:
            self._readers.setdefault(key, set()).add(txn.txn_id)
        for key in footprint.writes:
            self._writers.setdefault(key, set()).add(txn.txn_id)

    def remove(self, txn_id: str) -> None:
        footprint = self._footprints.pop(txn_id, None)
        if footprint is None:
            return
        for key in footprint.reads:
            owners = self._readers.get(key)
            if owners is not None:
                owners.discard(txn_id)
                if not owners:
                    del self._readers[key]
        for key in footprint.writes:
            owners = self._writers.get(key)
            if owners is not None:
                owners.discard(txn_id)
                if not owners:
                    del self._writers[key]

    def first_conflict(self, txn: TxnPayload) -> Optional[str]:
        """Id of some indexed transaction conflicting with ``txn`` (or None)."""
        footprint = Footprint.of(txn, self._partition, self._partitioner)
        for key in footprint.writes:
            for owner in self._writers.get(key, ()):
                if owner != txn.txn_id:
                    return owner
            for owner in self._readers.get(key, ()):
                if owner != txn.txn_id:
                    return owner
        for key in footprint.reads:
            for owner in self._writers.get(key, ()):
                if owner != txn.txn_id:
                    return owner
        return None


class ConflictChecker:
    """Applies Definition 3.1 for one partition.

    ``indexes`` supply the pending transactions of rules 2 and 3 (the
    in-progress batch and the prepared-but-undecided transactions); the store
    supplies rule 1.
    """

    def __init__(
        self,
        partition: PartitionId,
        partitioner: HashPartitioner,
        store: MultiVersionStore,
    ) -> None:
        self._partition = partition
        self._partitioner = partitioner
        self._store = store

    def check(
        self,
        txn: TxnPayload,
        indexes: Sequence[KeyConflictIndex] = (),
        pending: Iterable[Tuple[str, TxnPayload]] = (),
    ) -> ConflictReport:
        """Validate ``txn``.

        ``indexes`` is the fast path; ``pending`` accepts explicit
        ``(origin, transaction)`` pairs for callers (and tests) that do not
        maintain an index.
        """
        stale_key = stale_read_check(txn, self._partition, self._partitioner, self._store)
        if stale_key is not None:
            return ConflictReport.reject(
                reason=f"stale read of key {stale_key!r} (overwritten by a previous batch)"
            )
        footprint = Footprint.of(txn, self._partition, self._partitioner)
        if footprint.is_empty():
            return ConflictReport.accept()
        for index in indexes:
            conflicting = index.first_conflict(txn)
            if conflicting is not None:
                return ConflictReport.reject(
                    reason=f"conflicts with pending transaction {conflicting}",
                    conflicting_txn=conflicting,
                )
        for origin, other in pending:
            if other.txn_id == txn.txn_id:
                continue
            if footprint.conflicts_with(Footprint.of(other, self._partition, self._partitioner)):
                return ConflictReport.reject(
                    reason=f"conflicts with {origin} transaction {other.txn_id}",
                    conflicting_txn=other.txn_id,
                )
        return ConflictReport.accept()
