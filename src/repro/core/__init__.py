"""TransEdge core: batches, CD vectors, OCC, 2PC over BFT, read-only protocol."""

from repro.core.batch import (
    Batch,
    CertifiedHeader,
    CommitRecord,
    PreparedRecord,
    PreparedVote,
    ReadOnlySegment,
)
from repro.core.cdvector import CDVector, combine_all
from repro.core.client import ClientStats, TransEdgeClient
from repro.core.leader import LeaderRole
from repro.core.messages import (
    CommitReply,
    CommitRequest,
    CoordinatorPrepare,
    DecisionMessage,
    LockReadReply,
    LockReadRequest,
    LockReleaseMessage,
    ParticipantPrepared,
    ReadOnlyReply,
    ReadOnlyRequest,
    ReadReply,
    ReadRequest,
    SnapshotReply,
    SnapshotRequest,
)
from repro.core.occ import (
    ConflictChecker,
    ConflictReport,
    Footprint,
    KeyConflictIndex,
    stale_read_check,
    transactions_conflict,
)
from repro.core.prepared import PreparedBatches, PrepareGroup
from repro.core.readonly import (
    PartitionSnapshot,
    assemble_result,
    find_unsatisfied_dependencies,
    verify_snapshot,
)
from repro.core.replica import PartitionReplica, ReplicaCounters
from repro.core.system import SystemCounters, TransEdgeSystem, generate_initial_data
from repro.core.topology import ClusterTopology
from repro.core.transaction import TxnPayload, make_transaction

__all__ = [
    "Batch",
    "CDVector",
    "CertifiedHeader",
    "ClientStats",
    "ClusterTopology",
    "CommitRecord",
    "CommitReply",
    "CommitRequest",
    "ConflictChecker",
    "ConflictReport",
    "CoordinatorPrepare",
    "DecisionMessage",
    "Footprint",
    "KeyConflictIndex",
    "LeaderRole",
    "LockReadReply",
    "LockReadRequest",
    "LockReleaseMessage",
    "ParticipantPrepared",
    "PartitionReplica",
    "PartitionSnapshot",
    "PrepareGroup",
    "PreparedBatches",
    "PreparedRecord",
    "PreparedVote",
    "ReadOnlyReply",
    "ReadOnlyRequest",
    "ReadOnlySegment",
    "ReadReply",
    "ReadRequest",
    "ReplicaCounters",
    "SnapshotReply",
    "SnapshotRequest",
    "SystemCounters",
    "TransEdgeClient",
    "TransEdgeSystem",
    "TxnPayload",
    "assemble_result",
    "combine_all",
    "find_unsatisfied_dependencies",
    "generate_initial_data",
    "make_transaction",
    "stale_read_check",
    "transactions_conflict",
    "verify_snapshot",
]
