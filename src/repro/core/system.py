"""Full-system assembly: build a simulated TransEdge deployment.

:class:`TransEdgeSystem` is the top-level entry point of the library.  It
creates the shared simulation environment, the clusters of partition
replicas with their preloaded data, the topology directory and any number of
clients, and exposes helpers to run the simulation and to collect
system-wide statistics.  Examples and the benchmark harness are thin layers
over this class.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional

from repro.common.config import SystemConfig
from repro.common.ids import EdgeProxyId, PartitionId, ReplicaId
from repro.common.types import Key, Value
from repro.core.client import TransEdgeClient
from repro.core.replica import PartitionReplica
from repro.core.topology import ClusterTopology
from repro.edge.proxy import EdgeProxy
from repro.obs.monitor import Monitor
from repro.simnet.faults import FaultInjector
from repro.simnet.latency import LatencyModel
from repro.simnet.node import SimEnvironment
from repro.storage.partitioner import HashPartitioner


def generate_initial_data(config: SystemConfig) -> Dict[Key, Value]:
    """Generate the preloaded key space described in Section 5.1.

    Keys are short identifiers hashed across partitions; values are opaque
    byte strings of the configured size.
    """
    rng = random.Random(config.seed)
    data: Dict[Key, Value] = {}
    prefix_size = min(config.value_size, 16)
    for index in range(config.initial_keys):
        key = f"key-{index:08d}"
        # Values are padded to the configured size; only a small random prefix
        # is unique, which keeps data generation cheap without changing sizes.
        data[key] = rng.randbytes(prefix_size).ljust(config.value_size, b"\x00")
    return data


@dataclass
class SystemCounters:
    """Aggregated replica counters (see :class:`ReplicaCounters`)."""

    batches_delivered: int = 0
    local_committed: int = 0
    distributed_committed: int = 0
    distributed_aborted: int = 0
    conflict_aborts: int = 0
    lock_interference_aborts: int = 0
    read_only_served: int = 0
    snapshot_requests_served: int = 0
    snapshot_fast_path: int = 0
    snapshot_rebuilds: int = 0
    snapshot_refused: int = 0
    validation_failures: int = 0
    checkpoints_taken: int = 0
    checkpoints_stable: int = 0
    log_entries_truncated: int = 0
    versions_pruned: int = 0
    state_transfers_served: int = 0
    state_transfers_rejected: int = 0
    recoveries_started: int = 0
    recoveries_completed: int = 0
    catchup_recoveries: int = 0
    views_adopted: int = 0
    view_changes: int = 0
    leader_suspicions: int = 0
    two_pc_retries: int = 0
    two_pc_unresumable: int = 0
    decision_queries_served: int = 0
    decisions_resolved_remotely: int = 0
    verify_cache_hits: int = 0
    verify_cache_misses: int = 0
    archive_records_compacted: int = 0
    headers_announced: int = 0
    replica_replies_sent: int = 0
    # Edge read-proxy tier (summed over the deployment's proxies).
    edge_reads_served: int = 0
    edge_cache_hits: int = 0
    edge_cache_misses: int = 0
    edge_core_fetches: int = 0
    edge_refresh_rounds: int = 0
    edge_announcements_received: int = 0


class TransEdgeSystem:
    """A complete simulated deployment: clusters, replicas, clients."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        initial_data: Optional[Mapping[Key, Value]] = None,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        self.config = (config or SystemConfig()).validate()
        if latency_model is not None:
            from repro.simnet.network import Network
            from repro.simnet.simulator import Simulator

            simulator = Simulator()
            network = Network(simulator, latency_model, random.Random(self.config.seed + 1))
            self.env = SimEnvironment(self.config, simulator=simulator, network=network)
        else:
            self.env = SimEnvironment(self.config)
        self.partitioner = HashPartitioner(self.config.num_partitions)
        self.topology = ClusterTopology(self.config)
        self.initial_data: Dict[Key, Value] = dict(
            initial_data if initial_data is not None else generate_initial_data(self.config)
        )
        self._data_by_partition = self.partitioner.group_items(self.initial_data)

        self.replicas: Dict[ReplicaId, PartitionReplica] = {}
        for partition in self.topology.partitions():
            partition_data = self._data_by_partition.get(partition, {})
            for replica_id in self.topology.members(partition):
                self.replicas[replica_id] = PartitionReplica(
                    node_id=replica_id,
                    env=self.env,
                    topology=self.topology,
                    partitioner=self.partitioner,
                    initial_data=partition_data,
                )

        # Edge read-proxy tier (repro.edge): untrusted proxies between the
        # clients and the core clusters, spawned only when configured.
        self.proxies: List[EdgeProxy] = []
        if self.config.edge.enabled:
            for index in range(self.config.edge.num_proxies):
                self.proxies.append(
                    EdgeProxy(
                        EdgeProxyId(index),
                        self.env,
                        self.topology,
                        self.partitioner,
                    )
                )
            announce_targets = tuple(proxy.node_id for proxy in self.proxies)
            for replica in self.replicas.values():
                replica.edge_announce_targets = announce_targets

        self.clients: List[TransEdgeClient] = []
        self.fault_injector = FaultInjector(self.env.network, seed=self.config.seed + 2)

        #: Live monitor (repro.obs.monitor), or ``None`` when disabled.  It
        #: is installed *before* the genesis bootstrap so the timeline's
        #: initial snapshot is the true zero point and even bootstrap
        #: activity windows correctly.  The monitor only reads counters and
        #: subscribes to streams that already exist, so enabling it leaves
        #: fingerprints and trace digests byte-identical.
        self.monitor: Optional[Monitor] = None
        if self.config.monitor.enabled:
            self.monitor = Monitor(
                self.config.monitor,
                self.monitor_snapshot,
                leader_of=lambda partition: str(
                    self.topology.leader(PartitionId(partition))
                ),
            )
            self.monitor.bind_tracer(self.env.obs.tracer)
            self.env.monitor = self.monitor
            self.env.obs.attach_monitor(self.monitor)

        # Bootstrap: every cluster writes its genesis batch (number 0), which
        # certifies the Merkle root of the preloaded data so that read-only
        # clients can verify responses from the very first request.
        for partition in self.topology.partitions():
            self.leader_replica(partition).leader_role.propose_genesis()
        self.env.simulator.run_until_idle()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def create_client(self, name: str, **client_kwargs) -> TransEdgeClient:
        """Create a client attached to this deployment's network.

        ``client_kwargs`` pass through to :class:`TransEdgeClient` (e.g.
        ``commit_timeout_ms`` — fault experiments shorten it so a client
        stuck on a crashed leader complains, and thereby triggers the
        automatic view change, sooner).
        """
        if self.proxies and "edge_proxies" not in client_kwargs:
            client_kwargs["edge_proxies"] = tuple(p.node_id for p in self.proxies)
        client = TransEdgeClient(
            name=name,
            env=self.env,
            topology=self.topology,
            partitioner=self.partitioner,
            **client_kwargs,
        )
        self.clients.append(client)
        return client

    def proxy(self, index: int) -> EdgeProxy:
        """The edge proxy with the given index (edge tier must be enabled)."""
        return self.proxies[index]

    def leader_replica(self, partition: PartitionId) -> PartitionReplica:
        return self.replicas[self.topology.leader(partition)]

    def cluster_replicas(self, partition: PartitionId) -> List[PartitionReplica]:
        return [self.replicas[member] for member in self.topology.members(partition)]

    def keys_of_partition(self, partition: PartitionId) -> List[Key]:
        """Preloaded keys owned by ``partition`` (sorted, deterministic)."""
        return sorted(self._data_by_partition.get(partition, {}))

    # ------------------------------------------------------------------
    # crash faults and recovery (see repro.recovery)
    # ------------------------------------------------------------------

    def crash_replica(self, replica_id: ReplicaId) -> PartitionReplica:
        """Crash ``replica_id``: it stops processing and its traffic is dropped.

        Crashing the current leader of a cluster is detected automatically:
        survivors' progress monitors (armed by in-flight instances, undecided
        2PC groups or client complaints) vote the dead leader out and the
        cluster rotates to the next view without operator action (set
        ``FailoverConfig.enabled=False`` to require a manual
        ``suspect_leader`` nudge instead).
        """
        replica = self.replicas[replica_id]
        if not replica.crashed:
            replica.crashed = True
            self.env.obs.event(
                str(replica_id),
                "replica-crash",
                "error",
                {"partition": int(replica.partition)},
            )
            self.fault_injector.crash(replica_id)
        return replica

    def restart_replica(self, replica_id: ReplicaId) -> PartitionReplica:
        """Restart a crashed replica with empty volatile state and recover it.

        The replica rejoins through state transfer: it fetches the latest
        stable checkpoint plus the log suffix from its peers and resumes
        participating in consensus once they are verified and installed.
        """
        replica = self.replicas[replica_id]
        self.fault_injector.restart(replica_id)
        replica.crashed = False
        self.env.obs.event(
            str(replica_id),
            "replica-restart",
            "info",
            {"partition": int(replica.partition)},
        )
        replica.reset_for_recovery()
        replica.begin_recovery()
        return replica

    def stranded_prepared_transactions(self) -> int:
        """Distinct distributed transactions still prepared-but-undecided.

        After a drained run this should be zero: a coordinator crash at any
        2PC phase is resolved by the automatic view change plus decision
        replication (``DecisionQuery``), so no participant stays wedged in
        ``prepared``.  Counted per transaction (not per replica) so the value
        reads as "transactions whose fate is unknown somewhere".
        """
        stranded = set()
        for replica in self.replicas.values():
            if replica.crashed:
                continue  # moot until it rejoins (state transfer resolves it)
            for txn_id, _record in replica.prepared_batches.pending_transactions():
                stranded.add(txn_id)
        return len(stranded)

    def cache_snapshot(self, record_event: bool = False) -> Dict[str, object]:
        """One unified point-in-time view of every cache in the deployment.

        This is the single source of cache accounting:
        :meth:`verify_cache_stats`, :meth:`edge_cache_stats` and the cache
        fields of :meth:`counters` all derive from it instead of walking the
        nodes themselves, and the benchmark harness feeds it straight into
        :meth:`~repro.metrics.collector.MetricsCollector.record_cache_snapshot`.
        With ``record_event`` the totals are also written to the
        observability flight recorder (one ``cache-snapshot`` event).
        """

        def section(pairs) -> Dict[str, Dict[str, int]]:
            return {name: {"hits": hits, "misses": misses} for name, (hits, misses) in pairs}

        def totals(entries: Dict[str, Dict[str, int]]) -> Dict[str, int]:
            return {
                "hits": sum(entry["hits"] for entry in entries.values()),
                "misses": sum(entry["misses"] for entry in entries.values()),
            }

        verify_replicas = section(
            (str(replica.node_id), (replica.verifier.cache_hits, replica.verifier.cache_misses))
            for replica in self.replicas.values()
        )
        verify_clients = section(
            (str(client.node_id), (client.verifier.cache_hits, client.verifier.cache_misses))
            for client in self.clients
        )
        edge = section(
            (str(proxy.node_id), (proxy.counters.cache_hits, proxy.counters.cache_misses))
            for proxy in self.proxies
        )
        # Reliable-channel counters ride along: not a cache, but the same
        # "one unified accounting point" contract — the benchmark harness and
        # chaos reports read retransmit/duplicate-drop totals from here.
        transport = self.env.reliability
        snapshot: Dict[str, object] = {
            "verify_replicas": verify_replicas,
            "verify_clients": verify_clients,
            "edge": edge,
            "transport": dict(transport.counters) if transport is not None else {},
            "totals": {
                "verify_replicas": totals(verify_replicas),
                "verify_clients": totals(verify_clients),
                "edge": totals(edge),
            },
        }
        # Live node-health states ride along when a monitor is installed —
        # same unified-accounting contract as the transport counters, and
        # what puts "which nodes were degraded" into chaos artifacts.
        if self.monitor is not None:
            snapshot["health"] = self.monitor.health.snapshot()
        if record_event:
            detail = dict(snapshot["totals"])
            if snapshot["transport"]:
                detail["transport"] = dict(snapshot["transport"])
            self.env.obs.event("system", "cache-snapshot", "info", detail)
        return snapshot

    def monitor_snapshot(self) -> Dict[str, object]:
        """Cumulative deployment counters in the timeline's sampling shape.

        This is the ``snapshot_fn`` behind :class:`repro.obs.monitor.Monitor`:
        every value is monotonically non-decreasing and purely *read* from
        the nodes, so windowed deltas telescope exactly (the timeline's sum
        of window deltas always equals final minus initial).
        """
        caches = self.cache_snapshot()
        node_handled: Dict[str, int] = {}
        for replica in self.replicas.values():
            node_handled[str(replica.node_id)] = replica.messages_handled
        for proxy in self.proxies:
            node_handled[str(proxy.node_id)] = proxy.messages_handled
        for client in self.clients:
            node_handled[str(client.node_id)] = client.messages_handled
        return {
            "counters": asdict(self.counters()),
            "transport": dict(caches["transport"]),
            "client_verify": dict(caches["totals"]["verify_clients"]),
            "node_handled": node_handled,
        }

    def verify_cache_stats(self) -> Dict[str, "tuple[int, int]"]:
        """Per-node signature verify-cache ``(hits, misses)``, replicas and clients."""
        snapshot = self.cache_snapshot()
        merged = dict(snapshot["verify_replicas"])
        merged.update(snapshot["verify_clients"])
        return {name: (entry["hits"], entry["misses"]) for name, entry in merged.items()}

    def max_log_length(self) -> int:
        """Longest SMR log across all replicas (bounded by checkpointing)."""
        return max(len(replica.log) for replica in self.replicas.values())

    def max_version_chain_length(self) -> int:
        """Longest per-key version chain across all replica stores."""
        return max(replica.store.max_chain_length() for replica in self.replicas.values())

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run(self, until_ms: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Advance the simulation; returns the number of processed events."""
        if until_ms is None and max_events is None:
            return self.env.simulator.run_until_idle()
        return self.env.simulator.run(until_ms=until_ms, max_events=max_events)

    def run_until_idle(self, max_events: int = 20_000_000) -> int:
        return self.env.simulator.run_until_idle(max_events=max_events)

    @property
    def now(self) -> float:
        return self.env.simulator.now

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def counters(self) -> SystemCounters:
        """Sum the per-replica counters across the whole deployment.

        Leader-only counters (aborts, read-only requests) are naturally
        dominated by leaders; follower contributions are included because a
        view change can move the leader mid-experiment.
        """
        total = SystemCounters()
        for replica in self.replicas.values():
            counters = replica.counters
            total.batches_delivered += counters.batches_delivered
            total.local_committed += counters.local_committed
            total.distributed_committed += counters.distributed_committed
            total.distributed_aborted += counters.distributed_aborted
            total.conflict_aborts += counters.conflict_aborts
            total.lock_interference_aborts += counters.lock_interference_aborts
            total.read_only_served += counters.read_only_served
            total.snapshot_requests_served += counters.snapshot_requests_served
            total.snapshot_fast_path += counters.snapshot_fast_path
            total.snapshot_rebuilds += counters.snapshot_rebuilds
            total.snapshot_refused += counters.snapshot_refused
            total.validation_failures += counters.validation_failures
            total.checkpoints_taken += counters.checkpoints_taken
            total.checkpoints_stable += counters.checkpoints_stable
            total.log_entries_truncated += counters.log_entries_truncated
            total.versions_pruned += counters.versions_pruned
            total.state_transfers_served += counters.state_transfers_served
            total.state_transfers_rejected += counters.state_transfers_rejected
            total.recoveries_started += counters.recoveries_started
            total.recoveries_completed += counters.recoveries_completed
            total.catchup_recoveries += counters.catchup_recoveries
            total.views_adopted += counters.views_adopted
            total.view_changes += counters.view_changes
            total.leader_suspicions += counters.leader_suspicions
            total.two_pc_retries += counters.two_pc_retries
            total.two_pc_unresumable += counters.two_pc_unresumable
            total.decision_queries_served += counters.decision_queries_served
            total.decisions_resolved_remotely += counters.decisions_resolved_remotely
            total.archive_records_compacted += counters.archive_records_compacted
            total.headers_announced += counters.headers_announced
            total.replica_replies_sent += counters.replica_replies_sent
        for proxy in self.proxies:
            total.edge_reads_served += proxy.counters.reads_served
            total.edge_core_fetches += proxy.counters.core_fetches
            total.edge_refresh_rounds += proxy.counters.refresh_rounds
            total.edge_announcements_received += proxy.counters.announcements_received
        # Cache accounting derives from the one unified snapshot (clients'
        # verify caches are reported separately, so only the replica total
        # lands here — unchanged semantics).
        cache_totals = self.cache_snapshot()["totals"]
        total.verify_cache_hits = cache_totals["verify_replicas"]["hits"]
        total.verify_cache_misses = cache_totals["verify_replicas"]["misses"]
        total.edge_cache_hits = cache_totals["edge"]["hits"]
        total.edge_cache_misses = cache_totals["edge"]["misses"]
        return total

    def edge_cache_stats(self) -> Dict[str, "tuple[int, int]"]:
        """Per-proxy edge-cache ``(hits, misses)`` (empty without an edge tier)."""
        return {
            name: (entry["hits"], entry["misses"])
            for name, entry in self.cache_snapshot()["edge"].items()
        }

    def committed_read_write(self) -> int:
        """Distinct committed read-write transactions (local + distributed).

        Local commits are counted on every replica of a cluster; dividing by
        the cluster size recovers the per-transaction count.  Distributed
        commits are counted the same way on every accessed cluster, so the
        coordinator-side counter is used instead (committed records carry the
        coordinator id).
        """
        counters = self.counters()
        cluster_size = self.config.cluster_size
        local = counters.local_committed // cluster_size
        distributed = counters.distributed_committed // cluster_size
        return local + distributed
