"""The prepared-batches structure and the ordering constraint.

Distributed transactions prepare in some batch and commit in a later one.
The leader (and, mirroring it, every replica) tracks the in-flight prepare
groups in the *prepared batches* structure of Figure 2: one group per batch
that contained prepared records, each group holding its transactions and the
decisions received so far.

Definition 4.1 (the TransEdge ordering constraint) requires prepare groups to
commit or abort **in order**: the group prepared in batch ``i`` must be fully
decided and placed in a committed segment before any group prepared in a
batch ``j > i`` may be.  :meth:`PreparedBatches.pop_ready_in_order` is the
only way groups leave the structure and enforces exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import TransactionError
from repro.common.ids import BatchNumber
from repro.core.batch import CommitRecord, PreparedRecord


@dataclass
class PrepareGroup:
    """All distributed transactions that prepared in one batch."""

    batch_number: BatchNumber
    records: Dict[str, PreparedRecord] = field(default_factory=dict)
    decisions: Dict[str, CommitRecord] = field(default_factory=dict)

    def add_record(self, record: PreparedRecord) -> None:
        self.records[record.txn.txn_id] = record

    def add_decision(self, record: CommitRecord) -> None:
        if record.txn.txn_id not in self.records:
            raise TransactionError(
                f"decision for unknown transaction {record.txn.txn_id} "
                f"in prepare group {self.batch_number}"
            )
        self.decisions[record.txn.txn_id] = record

    def is_ready(self) -> bool:
        """True when every prepared transaction has a commit/abort decision."""
        return set(self.decisions) == set(self.records)

    def pending_txn_ids(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.records) - set(self.decisions)))

    def ordered_decisions(self) -> Tuple[CommitRecord, ...]:
        """Decisions in a deterministic order (by transaction id)."""
        return tuple(self.decisions[txn_id] for txn_id in sorted(self.decisions))

    def __len__(self) -> int:
        return len(self.records)


class PreparedBatches:
    """Ordered collection of in-flight prepare groups for one partition."""

    def __init__(self) -> None:
        self._groups: Dict[BatchNumber, PrepareGroup] = {}

    # -- building ----------------------------------------------------------------

    def add_group(self, batch_number: BatchNumber, records: List[PreparedRecord]) -> None:
        """Register the prepare group created by batch ``batch_number``."""
        if not records:
            return
        if batch_number in self._groups:
            raise TransactionError(f"prepare group {batch_number} already exists")
        group = PrepareGroup(batch_number=batch_number)
        for record in records:
            group.add_record(record)
        self._groups[batch_number] = group

    def record_decision(self, record: CommitRecord) -> None:
        """Attach a commit/abort decision to the group that prepared the txn."""
        group = self._find_group_of(record.txn.txn_id)
        if group is None:
            raise TransactionError(
                f"no prepare group contains transaction {record.txn.txn_id}"
            )
        group.add_decision(record)

    def _find_group_of(self, txn_id: str) -> Optional[PrepareGroup]:
        for group in self._groups.values():
            if txn_id in group.records:
                return group
        return None

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, batch_number: BatchNumber) -> bool:
        return batch_number in self._groups

    def group(self, batch_number: BatchNumber) -> PrepareGroup:
        if batch_number not in self._groups:
            raise TransactionError(f"no prepare group for batch {batch_number}")
        return self._groups[batch_number]

    def group_of_txn(self, txn_id: str) -> Optional[PrepareGroup]:
        return self._find_group_of(txn_id)

    def pending_transactions(self) -> Iterator[Tuple[str, PreparedRecord]]:
        """Every prepared-but-undecided transaction (for conflict rule 3)."""
        for batch_number in sorted(self._groups):
            group = self._groups[batch_number]
            for txn_id, record in group.records.items():
                if txn_id not in group.decisions:
                    yield txn_id, record

    def has_undecided(self) -> bool:
        """True while any prepared transaction still awaits its 2PC decision."""
        return any(not group.is_ready() for group in self._groups.values())

    def oldest_group_number(self) -> Optional[BatchNumber]:
        if not self._groups:
            return None
        return min(self._groups)

    def group_numbers(self) -> List[BatchNumber]:
        """All in-flight prepare-group batch numbers, oldest first."""
        return sorted(self._groups)

    # -- the ordering constraint ----------------------------------------------------

    def ready_prefix(self) -> List[PrepareGroup]:
        """Return (without removing) the maximal ready prefix of prepare groups.

        The leader uses this while sealing a batch: the prefix's decisions
        become the committed segment, and the groups themselves are removed
        by every replica — leader included — when the batch is delivered.
        """
        ready: List[PrepareGroup] = []
        for batch_number in sorted(self._groups):
            group = self._groups[batch_number]
            if not group.is_ready():
                break
            ready.append(group)
        return ready

    def pop_ready_in_order(self) -> List[PrepareGroup]:
        """Remove and return the maximal ready prefix of prepare groups.

        Groups are only released from the front (smallest batch number), so
        commit records always enter committed segments respecting
        Definition 4.1; a ready group behind a not-yet-ready one stays put.
        """
        popped: List[PrepareGroup] = []
        for batch_number in sorted(self._groups):
            group = self._groups[batch_number]
            if not group.is_ready():
                break
            popped.append(group)
            del self._groups[batch_number]
        return popped

    def remove_group(self, batch_number: BatchNumber) -> None:
        """Drop a group wholesale (used by replicas mirroring a delivered batch)."""
        self._groups.pop(batch_number, None)
