"""Partition replica: the edge node holding one shard of the data.

Every replica of a cluster runs the same code: it participates in the
intra-cluster BFT ordering of batches, validates every proposed batch against
its own state (so a byzantine leader cannot commit conflicting transactions
or forge the read-only segment), applies delivered batches to its
multi-version store and Merkle tree, and serves reads — including the
single-node snapshot read-only protocol of Section 4.

The replica that is currently the view's leader additionally runs the
:class:`~repro.core.leader.LeaderRole`, which owns the in-progress batch and
drives 2PC across clusters.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bft.engine import PbftEngine
from repro.bft.log import LogEntry, ReplicatedLog
from repro.bft.messages import BftMessage, CheckpointVote
from repro.bft.quorum import CommitCertificate
from repro.common.config import SystemConfig
from repro.common.ids import NO_BATCH, BatchNumber, ClientId, NodeId, PartitionId, ReplicaId
from repro.common.types import Key, TxnStatus, Value
from repro.crypto.archive import MerkleTreeArchive
from repro.crypto.hashing import Digest
from repro.crypto.merkle import MerkleStore, MerkleTree
from repro.core.batch import Batch, CertifiedHeader, CommitRecord, PreparedRecord
from repro.core.cdvector import CDVector, combine_all
from repro.core.leader import LeaderRole
from repro.core.messages import (
    CommitRequest,
    ComplaintProbe,
    ComplaintProbeAck,
    CoordinatorPrepare,
    DecisionMessage,
    DecisionQuery,
    DecisionReply,
    LeaderComplaint,
    LockReadReply,
    LockReadRequest,
    LockReleaseMessage,
    ParticipantPrepared,
    ReadOnlyReply,
    ReadOnlyRequest,
    ReadReply,
    ReadRequest,
    ReplicaCommitReply,
    SnapshotReply,
    SnapshotRequest,
)
from repro.core.occ import ConflictChecker, KeyConflictIndex
from repro.core.prepared import PreparedBatches
from repro.core.topology import ClusterTopology
from repro.recovery.checkpoint import CheckpointCertificate, CheckpointManager
from repro.recovery.messages import StateTransferReply, StateTransferRequest
from repro.recovery.snapshot import SnapshotImage
from repro.recovery.transfer import RecoveryCoordinator
from repro.simnet.messages import Message
from repro.simnet.node import SimEnvironment, SimNode
from repro.storage.locks import LockMode, LockTable
from repro.storage.mvstore import MultiVersionStore
from repro.storage.partitioner import HashPartitioner


@dataclass
class ReplicaCounters:
    """Plain counters scraped by the benchmark harness."""

    batches_delivered: int = 0
    local_committed: int = 0
    distributed_committed: int = 0
    distributed_aborted: int = 0
    conflict_aborts: int = 0
    lock_interference_aborts: int = 0
    read_only_served: int = 0
    snapshot_requests_served: int = 0
    snapshot_fast_path: int = 0
    snapshot_rebuilds: int = 0
    snapshot_refused: int = 0
    validation_failures: int = 0
    checkpoints_taken: int = 0
    checkpoints_stable: int = 0
    log_entries_truncated: int = 0
    versions_pruned: int = 0
    state_transfers_served: int = 0
    state_transfers_rejected: int = 0
    recoveries_started: int = 0
    recoveries_completed: int = 0
    #: Recoveries the progress monitor triggered because the quorum had
    #: demonstrably moved past this replica (gap catch-up, not a restart).
    catchup_recoveries: int = 0
    views_adopted: int = 0
    view_changes: int = 0
    leader_suspicions: int = 0
    two_pc_retries: int = 0
    #: Coordinations reported unresumable because the prepare batch's header
    #: aged past the checkpoint retention window (see LeaderRole.unresumable).
    two_pc_unresumable: int = 0
    decision_queries_served: int = 0
    decisions_resolved_remotely: int = 0
    archive_records_compacted: int = 0
    headers_announced: int = 0
    #: ReplicaCommitReply messages sent to clients (f+1 commit-quorum path).
    replica_replies_sent: int = 0


class ViewProgressMonitor:
    """Detects a dead or stalled leader and votes it out automatically.

    Each replica arms a single lazy timer whenever there is *evidence of
    pending work*: a started-but-undecided consensus instance (the engine's
    :meth:`~repro.bft.engine.PbftEngine.has_pending_work`), a
    prepared-but-undecided 2PC group, or a client complaint that the leader
    stopped answering.  When the timer fires without any delivery progress
    since it was armed, the replica casts a view-change vote
    (``suspect_leader``) and re-arms; votes spread through the cluster (and
    prepare/commit traffic spreads the evidence), so ``2f + 1`` suspicions
    accumulate and the view rotates without any operator nudge.  Progress
    resets the round counter; ``max_suspect_rounds`` silent rounds make the
    monitor stand down until progress resumes, which keeps the simulation
    finite when a cluster has genuinely lost liveness (e.g. more than ``f``
    members crashed).  A healthy or idle replica schedules nothing.
    """

    def __init__(self, replica: "PartitionReplica") -> None:
        self._replica = replica
        self._config = replica.config.failover
        self._timer = None
        # Snapshot taken when the timer was (last) armed: the stall test is
        # "a full timeout elapsed with no delivery progress since arming",
        # never "since the last event" — comparing against a baseline that
        # every delivery refreshes would misread a briefly-quiet but healthy
        # cluster as stalled.
        self._armed_baseline = self._snapshot()
        self._suspect_rounds = 0
        self._gave_up = False
        self._complainants: set = set()
        #: Transaction ids of forwarded-request probes (``ComplaintProbe``)
        #: currently outstanding against the leader.  An ack is only honoured
        #: for a transaction this replica actually probed, so a byzantine
        #: node cannot pre-emptively "answer" complaints it never saw.
        self._probes: set = set()
        #: One catch-up recovery per stall: set when a stalled round chose
        #: state transfer over suspicion, cleared by delivery progress.  If
        #: the catch-up was futile (nothing newer to fetch — e.g. the
        #: "behind" evidence was a byzantine leader's bogus future
        #: pre-prepare), the next silent round falls through to the normal
        #: view-change vote instead of withholding it forever.
        self._catchup_attempted = False

    def note_complaint(self, complainant, probe_txn_id: Optional[str] = None) -> None:
        """A client reported the leader unresponsive (``LeaderComplaint``).

        Complainants are deduplicated (the simulated network stamps the true
        sender, so one node flooding complaints counts once per window).  A
        complaint is also fresh external evidence: it revives a monitor that
        stood down during an earlier stall (otherwise a leader crash on an
        idle, previously-stalled cluster would never be detected).  Each
        revival is driven by an actual client message, so a finite workload
        still yields a finite number of monitoring rounds.

        With the reliability layer enabled the caller corroborates first:
        the complaint must carry the unanswered transaction, which the
        replica forwards to the leader as a ``ComplaintProbe``
        (``probe_txn_id`` records the probe).  The leader's ack arrives as
        :meth:`note_probe_ack` and refutes the complaint, so a byzantine
        client fabricating complaints against a live leader cannot churn an
        otherwise idle cluster's leadership; only a leader that leaves the
        forwarded request unanswered is voted out.
        """
        self._complainants.add(complainant)
        if probe_txn_id is not None:
            self._probes.add(probe_txn_id)
        if self._gave_up:
            self._gave_up = False
            self._suspect_rounds = 0
        self.poke()

    def note_probe_ack(self, txn_id: str) -> None:
        """The leader answered a forwarded-request probe: it is alive.

        Standing complaints allege an unresponsive leader, so one honoured
        ack refutes them all for this window — exactly like a view change
        "answers" them.  A client whose request is still genuinely unserved
        will time out and complain again, re-arming the monitor (and its
        retry machinery re-delivers the request itself).  Acks for
        transactions this replica never probed are ignored.
        """
        if txn_id not in self._probes:
            return
        self._clear_complaints()

    def note_view_change(self) -> None:
        """The cluster rotated: pending complaints are considered answered.

        A single complaint (even a spurious one from a lost request against a
        healthy leader) buys at most one rotation; if the client still cannot
        commit it will complain again, re-arming the monitor.
        """
        self._clear_complaints()

    def _clear_complaints(self) -> None:
        self._complainants.clear()
        self._probes.clear()

    def poke(self) -> None:
        """Re-evaluate after any event that could create or resolve evidence."""
        if not self._config.enabled or self._replica.crashed:
            return
        if self._replica.progress_monitor is not self:
            return  # replaced by a crash-reset; stale timers must not act
        if self._timer is not None:
            return
        if self._gave_up:
            if self._snapshot() == self._armed_baseline:
                return  # still stalled; stay stood-down until progress
            self._gave_up = False
            self._suspect_rounds = 0
            self._clear_complaints()
        if not self._has_evidence():
            return
        self._arm()

    def _arm(self) -> None:
        self._armed_baseline = self._snapshot()
        self._timer = self._replica.schedule(
            self._config.progress_timeout_ms, self._fire
        )

    def _snapshot(self) -> Tuple[int, int]:
        engine = self._replica.engine
        return (engine.last_delivered_seq, engine.decided_count)

    def _has_evidence(self) -> bool:
        replica = self._replica
        if self._complainants:
            return True
        if replica.engine.has_pending_work():
            return True
        return replica.prepared_batches.has_undecided()

    def _fire(self) -> None:
        self._timer = None
        replica = self._replica
        if replica.crashed or not self._config.enabled:
            return
        if replica.progress_monitor is not self:
            return  # replaced by a crash-reset; stale timers must not act
        if self._snapshot() != self._armed_baseline:
            # The cluster delivered something during the window: healthy.
            self._suspect_rounds = 0
            self._clear_complaints()
            self._catchup_attempted = False
            if self._has_evidence():
                self._arm()
            return
        if not self._has_evidence():
            return
        self._suspect_rounds += 1
        if self._suspect_rounds > self._config.max_suspect_rounds:
            self._gave_up = True
            return
        # A replica mid-recovery cannot judge the leader (it is the one
        # behind).  The current leader never votes against itself either —
        # but it MAY take the catch-up branch below.
        if not replica.recovery.in_progress:
            if replica.engine.is_behind() and not self._catchup_attempted:
                # The quorum apparently moved past us (instances were
                # decided while we were crashed or mid-recovery, and with
                # checkpointing off nothing else would ever re-sync us).
                # The leader is not the problem — we are: catch up through
                # state transfer instead of voting the leader out.  At most
                # once per stall: if the fetch brings nothing (the evidence
                # was fake — a byzantine leader's future pre-prepare), the
                # next round votes normally rather than abstaining forever.
                # This branch deliberately includes the *leader*: a leader
                # whose quorum moved past it while it was crashed cannot
                # vote against itself, so without the catch-up path it
                # would stand here forever while every follower's probe
                # keeps refuting their complaints — the "quorum ahead of
                # its leader" stall the coverage fleet surfaced.
                self._catchup_attempted = True
                replica.counters.catchup_recoveries += 1
                replica.begin_recovery()
            elif not replica.is_leader:
                replica.counters.leader_suspicions += 1
                replica.env.obs.event(
                    str(replica.node_id),
                    "leader-suspected",
                    "warn",
                    {
                        "partition": int(replica.partition),
                        "suspect_rounds": self._suspect_rounds,
                    },
                )
                replica.engine.suspect_leader()
            elif (
                self._suspect_rounds >= 2
                and not self._catchup_attempted
                and replica.engine.has_pending_work()
            ):
                # Leader last resort.  A leader whose own proposal has made
                # zero progress for two full windows — while the followers
                # keep acking its probes — is almost certainly the one
                # behind, with no local evidence to show for it: a view
                # change can elect a replica that missed decisions while it
                # was crashed or partitioned, and its re-proposal of an
                # already-delivered sequence is silently ignored by peers
                # as stale.  A follower votes every round; the leader's
                # only move is one catch-up recovery, which either closes
                # the gap (progress resets the monitor) or installs
                # nothing, harmlessly (state transfer only ever extends).
                self._catchup_attempted = True
                replica.counters.catchup_recoveries += 1
                replica.begin_recovery()
        self._arm()


class PartitionReplica(SimNode):
    """One member of one partition's cluster."""

    def __init__(
        self,
        node_id: ReplicaId,
        env: SimEnvironment,
        topology: ClusterTopology,
        partitioner: HashPartitioner,
        initial_data: Optional[Dict[Key, Value]] = None,
    ) -> None:
        super().__init__(node_id, env)
        self.partition: PartitionId = node_id.partition
        self.config: SystemConfig = env.config
        self.topology = topology
        self.partitioner = partitioner
        self.counters = ReplicaCounters()

        self.store = MultiVersionStore(initial_data or {})
        self.merkle = self._make_merkle_store(initial_data or {})
        self.prepared_batches = PreparedBatches()
        self.log = ReplicatedLog()
        self.locks = LockTable()  # only used by the Augustus baseline
        # Footprints of every in-flight prepared transaction (rule 3 of
        # Definition 3.1), maintained as batches are delivered.
        self.prepared_index = KeyConflictIndex(self.partition, partitioner)

        self.headers: List[CertifiedHeader] = []
        # LCEs and batch numbers of self.headers, kept parallel so both the
        # round-2 header lookup and header_at() are bisects (LCEs are
        # non-decreasing and numbers strictly increasing across batches).
        self._header_lces: List[BatchNumber] = []
        self._header_numbers: List[BatchNumber] = []
        self.last_header: Optional[CertifiedHeader] = None
        self._expected_cache: Dict[bytes, Dict[Key, Value]] = {}
        self._deferred_snapshots: List[Tuple[SnapshotRequest, NodeId]] = []
        # Durable 2PC outcomes: every commit/abort record this replica has
        # delivered, keyed by transaction id (pruned with the checkpoint
        # retention window; recent entries also ride in checkpoint images).
        # Any replica holding the record can answer a ``DecisionQuery`` from
        # a participant stranded by a coordinator crash.
        self.decided: Dict[str, Tuple[BatchNumber, CommitRecord]] = {}
        # Local-transaction outcomes (txn id -> commit batch), kept for the
        # same retention window.  A client that proactively fails over to a
        # freshly elected leader re-sends its CommitRequest; this map lets
        # the new leader answer COMMITTED for a transaction its predecessor
        # already committed instead of re-admitting (and double-applying) it.
        self.local_decided: Dict[str, BatchNumber] = {}
        # Edge read-proxy tier (repro.edge): node ids the leader announces
        # freshly certified headers to (empty when the edge tier is off).
        self.edge_announce_targets: Tuple[NodeId, ...] = ()

        self.engine = PbftEngine(
            owner=self,
            partition=self.partition,
            members=topology.members(self.partition),
            fault_tolerance=self.config.fault_tolerance,
            application=self,
            digest_fn=lambda batch: batch.digest(),
        )
        self.leader_role = LeaderRole(self)
        self.checkpoints = CheckpointManager(self)
        self.checkpoints.bootstrap(initial_data or {})
        self.recovery = RecoveryCoordinator(self)
        self.progress_monitor = ViewProgressMonitor(self)

        self.register_handler(BftMessage, self._on_bft_message)
        self.register_handler(CheckpointVote, self._on_checkpoint_vote)
        self.register_handler(StateTransferRequest, self._on_state_transfer_request)
        self.register_handler(StateTransferReply, self._on_state_transfer_reply)
        self.register_handler(ReadRequest, self._on_read_request)
        self.register_handler(ReadOnlyRequest, self._on_read_only_request)
        self.register_handler(SnapshotRequest, self._on_snapshot_request)
        self.register_handler(LockReadRequest, self._on_lock_read_request)
        self.register_handler(LockReleaseMessage, self._on_lock_release)
        self.register_handler(CommitRequest, self._on_commit_request)
        self.register_handler(CoordinatorPrepare, self._on_coordinator_prepare)
        self.register_handler(ParticipantPrepared, self._on_participant_prepared)
        self.register_handler(DecisionMessage, self._on_decision)
        self.register_handler(DecisionQuery, self._on_decision_query)
        self.register_handler(DecisionReply, self._on_decision_reply)
        self.register_handler(LeaderComplaint, self._on_leader_complaint)
        self.register_handler(ComplaintProbe, self._on_complaint_probe)
        self.register_handler(ComplaintProbeAck, self._on_complaint_probe_ack)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.engine.is_leader

    @property
    def cluster_members(self) -> Tuple[ReplicaId, ...]:
        return self.topology.members(self.partition)

    def conflict_checker(self) -> ConflictChecker:
        return ConflictChecker(self.partition, self.partitioner, self.store)

    def _make_merkle_store(
        self, initial: Mapping[Key, Value], base_batch: BatchNumber = NO_BATCH
    ) -> MerkleStore:
        """Build the per-partition Merkle store, archived per the perf config."""
        archive = None
        if self.config.perf.archive_enabled:
            archive = MerkleTreeArchive(
                max_batches=self.config.perf.archive_max_batches
            )
        return MerkleStore(initial, archive=archive, base_batch=base_batch)

    def current_cd_vector(self) -> CDVector:
        if self.last_header is not None:
            return self.last_header.cd_vector
        return CDVector.initial(self.config.num_partitions)

    def current_lce(self) -> BatchNumber:
        if self.last_header is not None:
            return self.last_header.lce
        return NO_BATCH

    # ------------------------------------------------------------------
    # processing-cost model
    # ------------------------------------------------------------------

    def processing_cost_ms(self, message: Message) -> float:
        costs = self.config.costs
        if isinstance(message, BftMessage):
            proposal = getattr(message, "proposal", None)
            if isinstance(proposal, Batch):
                per_txn = costs.conflict_check_ms + costs.hash_ms
                return (
                    costs.batch_base_ms
                    + proposal.size() * per_txn
                    + costs.signature_verify_ms
                )
            return costs.signature_verify_ms
        if isinstance(message, ReadRequest):
            return costs.message_handling_ms + len(message.keys) * costs.read_op_ms
        # Merkle proof work scales with the tree depth, O(log K) in the
        # partition size, so simulated service time grows with state exactly
        # like the real data structure does.
        proof_ms = costs.merkle_proof_cost_ms(len(self.merkle))
        if isinstance(message, ReadOnlyRequest):
            per_key = costs.read_op_ms + proof_ms
            return costs.message_handling_ms + len(message.keys) * per_key + costs.signature_sign_ms
        if isinstance(message, SnapshotRequest):
            per_key = costs.read_op_ms + 2 * proof_ms
            base = costs.message_handling_ms + len(message.keys) * per_key
            # When the archive cannot resolve the historical tree the replica
            # materialises the snapshot and rebuilds an O(K) tree — charge
            # for it, so simulated throughput also reflects the archive fast
            # path (the wall-clock win BENCH_perf.json records).
            header = self._earliest_header_with_lce(message.required_prepare_batch)
            if header is not None and not self.merkle.archive_covers(header.number):
                base += costs.tree_rebuild_cost_ms(len(self.merkle))
            return base
        if isinstance(message, LockReadRequest):
            return costs.message_handling_ms + len(message.keys) * (costs.read_op_ms + costs.conflict_check_ms)
        if isinstance(message, CommitRequest) and message.txn is not None:
            ops = len(message.txn.reads) + len(message.txn.writes)
            return costs.message_handling_ms + ops * costs.conflict_check_ms
        if isinstance(
            message,
            (CoordinatorPrepare, ParticipantPrepared, DecisionMessage, DecisionReply),
        ):
            return (
                costs.message_handling_ms
                + self.config.certificate_size * costs.signature_verify_ms
                + costs.conflict_check_ms
            )
        if isinstance(message, StateTransferReply):
            # Installing an image writes every item; replaying a batch costs
            # what delivering it would have.
            items = len(message.image) if message.image is not None else 0
            replayed = sum(
                entry.value.size()
                for entry in message.entries
                if isinstance(entry.value, Batch)
            )
            return (
                costs.message_handling_ms
                + items * costs.write_op_ms
                + len(message.entries) * costs.batch_base_ms
                + replayed * (costs.hash_ms + costs.conflict_check_ms)
            )
        return costs.message_handling_ms

    # ------------------------------------------------------------------
    # consensus application interface
    # ------------------------------------------------------------------

    def validate_proposal(self, seq: int, proposal: object) -> bool:
        ok = self._validate_batch(seq, proposal)
        if not ok:
            self.counters.validation_failures += 1
            self.env.obs.event(
                str(self.node_id),
                "validation-failure",
                "warn",
                {"partition": int(self.partition), "seq": seq},
            )
        return ok

    def _validate_batch(self, seq: int, proposal: object) -> bool:
        if not isinstance(proposal, Batch):
            return False
        batch = proposal
        if batch.partition != self.partition or batch.number != seq:
            return False
        if batch.read_only is None:
            return False

        # Freshness window (Section 4.4.2): the leader's timestamp must be
        # close to this replica's clock.
        if self.config.freshness.enabled:
            drift = abs(batch.read_only.timestamp_ms - self.now)
            if drift > self.config.freshness.acceptance_window_ms:
                return False

        # Conflict rules (Definition 3.1) for every transaction the batch
        # admits, checked against this replica's own state.
        checker = self.conflict_checker()
        batch_index = KeyConflictIndex(self.partition, self.partitioner)
        indexes = (batch_index, self.prepared_index)
        for txn in batch.local_txns:
            if not checker.check(txn, indexes).ok:
                return False
            batch_index.add(txn)
        for record in batch.prepared:
            if not checker.check(record.txn, indexes).ok:
                return False
            batch_index.add(record.txn)

        if not self._validate_committed_segment(batch):
            return False

        # Read-only segment: recompute CD vector, LCE and Merkle root.
        expected_cd, expected_lce = self._derive_read_only_metadata(batch)
        if batch.read_only.cd_vector != expected_cd:
            return False
        if batch.read_only.lce != expected_lce:
            return False
        updates = batch.visible_writes(self.partitioner)
        expected_root = self._preview_root(updates)
        if batch.read_only.merkle_root != expected_root:
            return False
        self._expected_cache[batch.digest()] = updates
        return True

    def _validate_committed_segment(self, batch: Batch) -> bool:
        """Check commit records respect the ordering constraint and carry valid votes."""
        group_numbers: List[BatchNumber] = []
        covered: Dict[BatchNumber, set] = {}
        for record in batch.committed:
            group = self.prepared_batches.group_of_txn(record.txn.txn_id)
            if group is None:
                return False
            if group.batch_number not in covered:
                group_numbers.append(group.batch_number)
                covered[group.batch_number] = set()
            covered[group.batch_number].add(record.txn.txn_id)
            if not self._validate_commit_record(record):
                return False
        if not group_numbers:
            return True
        # Groups must form a prefix of the replica's prepared-batches order
        # (Definition 4.1) and each group must be fully covered.
        referenced = sorted(covered)
        all_groups = self.prepared_batches.group_numbers()
        if all_groups[: len(referenced)] != referenced:
            return False
        for number, txn_ids in covered.items():
            if txn_ids != set(self.prepared_batches.group(number).records):
                return False
        return True

    def _validate_commit_record(self, record: CommitRecord) -> bool:
        accessed = record.txn.partitions(self.partitioner)
        if record.decision:
            positive = {
                partition
                for partition, vote in record.votes.items()
                if vote.vote
            }
            if not accessed <= positive:
                return False
            for partition, vote in record.votes.items():
                if not vote.vote:
                    return False
                if vote.header is None:
                    return False
                if vote.header.partition != partition:
                    return False
                if not vote.header.verify(
                    self.verifier,
                    self.topology.members(partition),
                    self.config.certificate_size,
                ):
                    return False
        else:
            negatives = [vote for vote in record.votes.values() if not vote.vote]
            if not negatives:
                return False
            if self.config.reliability.enabled:
                # An abort must be justified by an *authentic* negative vote:
                # each one carries a signature by a member of the cluster it
                # claims voted no (see PreparedVote.abort_signing_payload),
                # which stops a byzantine coordinator from fabricating a
                # participant's refusal and unilaterally aborting a
                # fully-prepared transaction.
                for vote in negatives:
                    if vote.partition not in accessed:
                        return False
                    if vote.signature is None:
                        return False
                    members = {
                        str(member)
                        for member in self.topology.members(vote.partition)
                    }
                    if vote.signature.signer not in members:
                        return False
                    if not self.verifier.verify(
                        vote.abort_signing_payload(), vote.signature
                    ):
                        return False
        return True

    def _derive_read_only_metadata(self, batch: Batch) -> Tuple[CDVector, BatchNumber]:
        """Recompute the CD vector (Algorithm 1) and LCE for ``batch``."""
        cd = self.current_cd_vector().with_entry(self.partition, batch.number)
        lce = self.current_lce()
        committed_group_numbers = set()
        for record in batch.committed:
            group = self.prepared_batches.group_of_txn(record.txn.txn_id)
            if group is not None:
                committed_group_numbers.add(group.batch_number)
            if record.decision:
                cd = combine_all(cd, record.reported_vectors())
        if committed_group_numbers:
            lce = max(max(committed_group_numbers), lce)
        # The self entry always reflects this batch.
        cd = cd.with_entry(self.partition, batch.number)
        return cd, lce

    def _preview_root(self, updates: Dict[Key, Value]) -> Digest:
        return self.merkle.preview_root(updates)

    def deliver(self, seq: int, proposal: object, certificate: CommitCertificate) -> None:
        batch: Batch = proposal  # validated by validate_proposal
        header = self._apply_batch(seq, batch, certificate)
        self._send_replica_commit_replies(seq, batch)
        self.checkpoints.on_batch_delivered(seq)
        self._serve_deferred_snapshots()
        self.leader_role.on_batch_delivered(seq, batch, header)
        self._announce_header(header)
        self.progress_monitor.poke()

    def _send_replica_commit_replies(self, seq: int, batch: Batch) -> None:
        """Report this batch's client-visible outcomes directly to clients.

        Classic PBFT client replies: the leader's :class:`CommitReply` alone
        is a single point of failure (a leader crashing right after delivery
        strands its clients until timeout/failover), so every replica also
        reports each outcome it just applied.  Clients accept once ``f + 1``
        replicas of the coordinator cluster agree — see
        ``TransEdgeClient._on_replica_commit_reply``.  Live delivery only:
        state-transfer replay goes through :meth:`_apply_batch` directly and
        must not re-answer long-finished transactions.
        """
        if not self.config.failover.replica_commit_replies:
            return
        network = self.env.network
        for txn in batch.local_txns:
            # Unit harnesses apply batches whose clients are not simulated
            # nodes; outcomes for them have nowhere to go.
            if not network.knows(ClientId(txn.client)):
                continue
            self.counters.replica_replies_sent += 1
            self.send(
                ClientId(txn.client),
                ReplicaCommitReply(
                    txn_id=txn.txn_id,
                    partition=self.partition,
                    status=TxnStatus.COMMITTED,
                    commit_batch=seq,
                ),
            )
        for record in batch.committed:
            if record.coordinator != self.partition:
                continue
            if not network.knows(ClientId(record.txn.client)):
                continue
            self.counters.replica_replies_sent += 1
            self.send(
                ClientId(record.txn.client),
                ReplicaCommitReply(
                    txn_id=record.txn.txn_id,
                    partition=self.partition,
                    status=TxnStatus.COMMITTED if record.decision else TxnStatus.ABORTED,
                    commit_batch=seq if record.decision else NO_BATCH,
                    abort_reason="" if record.decision else "a participant voted to abort",
                ),
            )

    def _announce_header(self, header: CertifiedHeader) -> None:
        """Edge tier: the leader pushes fresh certified headers to the proxies.

        Announcements bound proxy staleness: a proxy that sees batch ``n``
        announced knows any cached context older than ``n`` minus the
        configured lag must be refreshed before it is served again.  Proxies
        verify the certificate before adopting, so a byzantine leader cannot
        poison their view of "newest" (and the announcement carries no data —
        values always come with proofs).
        """
        if not self.edge_announce_targets or not self.is_leader:
            return
        if header.number % self.config.edge.announce_interval_batches != 0:
            return
        from repro.edge.messages import HeaderAnnouncement

        self.counters.headers_announced += 1
        self.broadcast(
            self.edge_announce_targets,
            HeaderAnnouncement(partition=self.partition, header=header),
        )

    def _apply_batch(
        self, seq: int, batch: Batch, certificate: CommitCertificate
    ) -> CertifiedHeader:
        """Fold a decided batch into this replica's state.

        Shared by live consensus delivery and state-transfer replay; only the
        leader-role and deferred-snapshot reactions differ between the two.
        """
        self.log.append(seq, batch, certificate)
        updates = self._expected_cache.pop(batch.digest(), None)
        if updates is None:
            updates = batch.visible_writes(self.partitioner)
        if updates:
            self.store.apply(updates, batch=seq)
        self.merkle.apply(updates, batch=seq)

        # Track the new prepare group and retire committed ones.  Retired
        # decisions stay queryable in ``self.decided`` (DecisionQuery) until
        # the checkpoint retention window passes them by.
        self.prepared_batches.add_group(seq, list(batch.prepared))
        for record in batch.prepared:
            self.prepared_index.add(record.txn)
        for txn in batch.local_txns:
            self.local_decided[txn.txn_id] = seq
        for record in batch.committed:
            self.decided[record.txn.txn_id] = (seq, record)
            group = self.prepared_batches.group_of_txn(record.txn.txn_id)
            if group is not None:
                for txn_id in group.records:
                    self.prepared_index.remove(txn_id)
                self.prepared_batches.remove_group(group.batch_number)

        header = batch.certified_header(certificate)
        self.headers.append(header)
        self._header_lces.append(header.lce)
        self._header_numbers.append(header.number)
        self.last_header = header

        self.counters.batches_delivered += 1
        self.counters.local_committed += len(batch.local_txns)
        for record in batch.committed:
            # Count distributed outcomes only at their coordinator cluster so
            # that a transaction spanning k clusters is not counted k times.
            if record.coordinator != self.partition:
                continue
            if record.decision:
                self.counters.distributed_committed += 1
            else:
                self.counters.distributed_aborted += 1
        return header

    def on_view_change(self, new_view: int, new_leader: ReplicaId) -> None:
        self.counters.view_changes += 1
        self.env.obs.event(
            str(self.node_id),
            "view-change",
            "warn",
            {
                "partition": int(self.partition),
                "view": new_view,
                "leader": str(new_leader),
            },
        )
        self.topology.set_leader(self.partition, new_leader)
        self.leader_role.on_view_change(new_view, new_leader)
        self.progress_monitor.note_view_change()

    # ------------------------------------------------------------------
    # crash recovery (see repro.recovery)
    # ------------------------------------------------------------------

    def reset_for_recovery(self, preserve_recovery: bool = False) -> None:
        """Discard all volatile state, as a crash would.

        The replica keeps its identity, network registration, key material
        and counters; the store, Merkle tree, SMR log, prepared bookkeeping,
        consensus engine and leader role all restart empty and are
        repopulated through state transfer.  The genesis snapshot survives
        (the preloaded dataset is durable, shipped with the node).
        ``preserve_recovery`` keeps the in-flight recovery coordinator so a
        mid-transfer wipe does not lose the recovery session itself.
        """
        genesis = self.checkpoints.snapshots.genesis
        self.store = MultiVersionStore()
        self.merkle = self._make_merkle_store({})
        self.prepared_batches = PreparedBatches()
        self.log = ReplicatedLog()
        self.prepared_index = KeyConflictIndex(self.partition, self.partitioner)
        self.headers = []
        self._header_lces = []
        self._header_numbers = []
        self.last_header = None
        self._expected_cache = {}
        self._deferred_snapshots = []
        self.decided = {}
        self.local_decided = {}
        self.engine = PbftEngine(
            owner=self,
            partition=self.partition,
            members=self.topology.members(self.partition),
            fault_tolerance=self.config.fault_tolerance,
            application=self,
            digest_fn=lambda batch: batch.digest(),
        )
        self.leader_role = LeaderRole(self)
        self.checkpoints = CheckpointManager(self)
        self.checkpoints.adopt_genesis(genesis)
        if not preserve_recovery:
            self.recovery = RecoveryCoordinator(self)
        # A fresh engine means fresh progress bookkeeping; the old monitor's
        # timers notice the swap (stale callbacks check identity) and die.
        self.progress_monitor = ViewProgressMonitor(self)

    def begin_recovery(self) -> None:
        """Start fetching the partition state from cluster peers."""
        self.env.obs.event(
            str(self.node_id),
            "recovery-begin",
            "info",
            {"partition": int(self.partition)},
        )
        self.recovery.begin()

    def install_snapshot(
        self,
        image: SnapshotImage,
        certificate: Optional[CheckpointCertificate],
    ) -> None:
        """Replace this (empty) replica's state with a verified checkpoint image."""
        self.store.restore_image(image.store_image())
        self.merkle = self._make_merkle_store(image.values(), base_batch=image.seq)
        self.log.reset_base(image.seq + 1)
        for number, records in image.prepared:
            self.prepared_batches.add_group(number, list(records))
            for record in records:
                self.prepared_index.add(record.txn)
        for commit_batch, record in image.decisions:
            self.decided[record.txn.txn_id] = (commit_batch, record)
        if image.header is not None:
            from repro.recovery.transfer import StateTransferError

            if self.merkle.root != image.header.merkle_root:
                raise StateTransferError(
                    "image values do not match the certified header's Merkle root"
                )
            # The carried prepare-batch headers are digest-excluded, so a
            # byzantine image source could have substituted them — each must
            # prove itself through its own consensus certificate before the
            # 2PC resumption machinery is allowed to trust it.
            members = self.topology.members(self.partition)
            restored = [image.header]
            for header in image.prepared_headers:
                if header.number >= image.seq:
                    continue  # the checkpoint header already covers it
                if not header.verify(
                    self.verifier, members, self.config.certificate_size
                ):
                    raise StateTransferError(
                        f"carried prepare-batch header {header.number} fails "
                        f"certificate verification"
                    )
                restored.append(header)
            restored.sort(key=lambda h: h.number)
            self.headers = restored
            self._header_lces = [h.lce for h in restored]
            self._header_numbers = [h.number for h in restored]
            self.last_header = image.header
        self.engine.install_checkpoint(image.seq)
        if certificate is not None:
            self.checkpoints.adopt(image, certificate)

    def apply_recovered_entry(self, entry: LogEntry) -> None:
        """Replay one verified log entry fetched through state transfer."""
        from repro.recovery.transfer import StateTransferError

        batch: Batch = entry.value
        self._apply_batch(entry.seq, batch, entry.certificate)
        if self.merkle.root != batch.read_only.merkle_root:
            raise StateTransferError(
                f"replaying batch {entry.seq} diverged from its certified Merkle root"
            )
        self.checkpoints.on_batch_delivered(entry.seq)
        self._serve_deferred_snapshots()

    # ------------------------------------------------------------------
    # client-facing handlers
    # ------------------------------------------------------------------

    def _on_bft_message(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, BftMessage)
        self.engine.handle(message, src)
        # Consensus traffic both creates and resolves progress evidence
        # (a vote for an unseen instance arms the monitor; a delivery or a
        # view change resets it).
        self.progress_monitor.poke()

    def _on_checkpoint_vote(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, CheckpointVote)
        self.checkpoints.on_vote(message, src)

    def _on_state_transfer_request(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, StateTransferRequest)
        if message.partition != self.partition:
            return
        self.counters.state_transfers_served += 1
        image = None
        certificate = None
        start = message.have_seq + 1
        stable = self.checkpoints.stable_image
        if stable is not None and self.checkpoints.stable_seq > message.have_seq:
            image = stable
            certificate = self.checkpoints.stable_certificate
            start = stable.seq + 1
        elif message.have_seq < self.log.first_seq:
            # Nothing stable yet but the requester is behind our first entry:
            # base the transfer on the (uncertified) genesis image, which the
            # requester validates by replaying batch 0's certified root.
            image = self.checkpoints.snapshots.genesis
            start = 0
        self.send(
            src,
            StateTransferReply(
                partition=self.partition,
                image=image,
                certificate=certificate,
                entries=self.log.entries_from(start),
                # Current view plus the quorum certificate that elected it, so
                # the rejoiner can follow the live leader immediately.
                view=self.engine.view,
                view_certificate=self.engine.view_certificate,
                responder_tip=self.log.last_seq,
            ),
        )

    def _on_state_transfer_reply(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, StateTransferReply)
        self.recovery.on_reply(message, src)

    def _on_read_request(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, ReadRequest)
        values: Dict[Key, Value] = {}
        versions: Dict[Key, BatchNumber] = {}
        for key in message.keys:
            versioned = self.store.get(key)
            if versioned is None:
                continue
            values[key] = versioned.value
            versions[key] = versioned.version
        self.send(
            src,
            ReadReply(
                request_id=message.request_id,
                values=values,
                versions=versions,
                partition=self.partition,
            ),
        )

    def _on_read_only_request(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, ReadOnlyRequest)
        self.counters.read_only_served += 1
        values, versions, proofs = self._collect_reads(
            message.keys, self.merkle.tree, as_of=None
        )
        self.send(
            src,
            ReadOnlyReply(
                request_id=message.request_id,
                partition=self.partition,
                values=values,
                versions=versions,
                proofs=proofs,
                header=self.last_header,
            ),
        )

    def _on_snapshot_request(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, SnapshotRequest)
        header = self._earliest_header_with_lce(message.required_prepare_batch)
        if header is None:
            # The required dependency has not committed locally yet; park the
            # request and answer as soon as the batch is delivered.
            self._deferred_snapshots.append((message, src))
            return
        self._answer_snapshot(message, src, header)

    def _answer_snapshot(self, message: SnapshotRequest, src: NodeId, header: CertifiedHeader) -> None:
        # Fast path: the archive resolves the tree of any recent batch as a
        # copy-on-write view, so serving the request costs O(read · log K)
        # instead of materialising the partition and rebuilding an O(K) tree.
        tree = self.merkle.tree_at(header.number)
        if tree is not None:
            self.counters.snapshot_fast_path += 1
        elif self.config.perf.snapshot_rebuild_fallback:
            tree = MerkleTree(self.store.snapshot_as_of(header.number))
            self.counters.snapshot_rebuilds += 1
        else:
            # The archive cannot answer and rebuilds are disabled: refuse
            # (the client times out and retries elsewhere) rather than serve
            # a different snapshot.  Only the *earliest* dependency-
            # satisfying header is covered by the two-round consistency
            # argument (Theorem 4.6); substituting a newer one could carry
            # fresh cross-partition dependencies the client never rechecks.
            self.counters.snapshot_refused += 1
            return
        self.counters.snapshot_requests_served += 1
        values, versions, proofs = self._collect_reads(
            message.keys, tree, as_of=header.number
        )
        self.send(
            src,
            SnapshotReply(
                request_id=message.request_id,
                partition=self.partition,
                values=values,
                versions=versions,
                proofs=proofs,
                header=header,
            ),
        )

    def _earliest_header_with_lce(self, required: BatchNumber) -> Optional[CertifiedHeader]:
        # LCEs are non-decreasing, so the earliest satisfying header is found
        # by bisection instead of a linear scan over the retained headers.
        index = bisect.bisect_left(self._header_lces, required)
        if index >= len(self.headers):
            return None
        return self.headers[index]

    def prune_headers_below(self, retain_from: BatchNumber) -> None:
        """Checkpoint GC: drop certified headers (and their parallel indexes) below the window.

        Headers of still-undecided prepare batches are pinned past the
        window: a coordinator rebuilds its 2PC vote from exactly that header
        (see ``LeaderRole._redrive_coordinated``), and they are what
        ``SnapshotImage.capture`` carries so a restored successor can do the
        same.
        """
        pinned = set(self.prepared_batches.group_numbers())
        self.headers = [
            h for h in self.headers if h.number >= retain_from or h.number in pinned
        ]
        self._header_lces = [h.lce for h in self.headers]
        self._header_numbers = [h.number for h in self.headers]

    def prune_decisions_below(self, retain_from: BatchNumber) -> None:
        """Checkpoint GC: forget 2PC decisions committed below the window."""
        self.decided = {
            txn_id: (commit_batch, record)
            for txn_id, (commit_batch, record) in self.decided.items()
            if commit_batch >= retain_from
        }
        self.local_decided = {
            txn_id: commit_batch
            for txn_id, commit_batch in self.local_decided.items()
            if commit_batch >= retain_from
        }

    def requestable_header_batches(self) -> "set[BatchNumber]":
        """Batches a round-2 snapshot request can still name.

        ``_earliest_header_with_lce`` bisects for the *first* retained header
        whose LCE reaches the requirement, so only the earliest header of
        each LCE run (plus the retention floor itself) is ever returned; the
        archive uses this set to compact everything else.
        """
        requestable: "set[BatchNumber]" = set()
        previous_lce: Optional[BatchNumber] = None
        for header in self.headers:
            if previous_lce is None or header.lce > previous_lce:
                requestable.add(header.number)
            previous_lce = header.lce
        return requestable

    def header_at(self, number: BatchNumber) -> Optional[CertifiedHeader]:
        """The retained certified header of batch ``number`` (None if pruned).

        Headers are appended in batch order, so this is a bisect over the
        parallel number index; the leader role uses it to rebuild 2PC votes
        (the vote's proof is the header of the batch that wrote the prepare).
        """
        index = bisect.bisect_left(self._header_numbers, number)
        if index < len(self.headers) and self._header_numbers[index] == number:
            return self.headers[index]
        return None

    def _serve_deferred_snapshots(self) -> None:
        if not self._deferred_snapshots:
            return
        still_waiting: List[Tuple[SnapshotRequest, NodeId]] = []
        for message, src in self._deferred_snapshots:
            header = self._earliest_header_with_lce(message.required_prepare_batch)
            if header is None:
                still_waiting.append((message, src))
            else:
                self._answer_snapshot(message, src, header)
        self._deferred_snapshots = still_waiting

    def _collect_reads(self, keys, tree, as_of: Optional[BatchNumber]):
        """Values, versions and proofs for ``keys`` against one tree.

        ``tree`` is anything with ``__contains__``/``prove`` — the live
        :class:`MerkleTree`, an archived
        :class:`~repro.crypto.archive.HistoricalTreeView`, or a rebuilt
        historical tree.  ``as_of`` bounds the store lookup to the tree's
        batch (None reads the latest version).
        """
        values: Dict[Key, Value] = {}
        versions: Dict[Key, BatchNumber] = {}
        proofs = {}
        for key in keys:
            versioned = (
                self.store.get(key) if as_of is None else self.store.as_of(key, as_of)
            )
            if versioned is None:
                continue
            values[key] = versioned.value
            versions[key] = versioned.version
            if key in tree:
                proofs[key] = tree.prove(key)
        return values, versions, proofs

    # ------------------------------------------------------------------
    # Augustus baseline handlers (quorum shared-lock reads)
    # ------------------------------------------------------------------

    def _on_lock_read_request(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, LockReadRequest)
        local_keys = [key for key in message.keys if key in self.store]
        granted = self.locks.try_acquire(message.txn_id, local_keys, LockMode.SHARED)
        values: Dict[Key, Value] = {}
        versions: Dict[Key, BatchNumber] = {}
        if granted:
            for key in local_keys:
                versioned = self.store.get(key)
                if versioned is not None:
                    values[key] = versioned.value
                    versions[key] = versioned.version
        self.send(
            src,
            LockReadReply(
                request_id=message.request_id,
                partition=self.partition,
                granted=granted,
                values=values,
                versions=versions,
            ),
        )

    def _on_lock_release(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, LockReleaseMessage)
        self.locks.release_all(message.txn_id)

    # ------------------------------------------------------------------
    # leader-only handlers (delegated to the leader role)
    # ------------------------------------------------------------------

    def _on_commit_request(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, CommitRequest)
        self.leader_role.on_commit_request(message, src)

    def _on_coordinator_prepare(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, CoordinatorPrepare)
        self.leader_role.on_coordinator_prepare(message, src)

    def _on_participant_prepared(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, ParticipantPrepared)
        self.leader_role.on_participant_prepared(message, src)

    def _on_decision(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, DecisionMessage)
        self.leader_role.on_decision(message, src)
        self.progress_monitor.poke()

    # ------------------------------------------------------------------
    # decision resolution and leader-failure evidence (repro.recovery PR 3)
    # ------------------------------------------------------------------

    def _on_decision_query(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, DecisionQuery)
        if message.partition != self.partition:
            return
        entry = self.decided.get(message.txn_id)
        if entry is None:
            # Not decided here (yet).  If this replica is the cluster's
            # current leader and still coordinates the transaction, the query
            # doubles as a nudge to re-drive the vote collection.
            if self.is_leader:
                self.leader_role.nudge_two_pc()
            return
        commit_batch, record = entry
        self.counters.decision_queries_served += 1
        self.send(src, DecisionReply(record=record, commit_batch=commit_batch))

    def _on_decision_reply(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, DecisionReply)
        record = message.record
        if record is None or not self.is_leader:
            return
        group = self.prepared_batches.group_of_txn(record.txn.txn_id)
        if group is None or record.txn.txn_id in group.decisions:
            return  # never prepared here, or already resolved
        # The responder is a single (possibly byzantine) replica: accept the
        # record only on the same proof a committed-segment entry would need.
        if not self._validate_commit_record(record):
            return
        self.counters.decisions_resolved_remotely += 1
        self.leader_role.on_decision(
            DecisionMessage(record=record, commit_batch=message.commit_batch), src
        )
        self.progress_monitor.poke()

    def _on_leader_complaint(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, LeaderComplaint)
        if message.partition != self.partition or self.is_leader:
            return
        if not self.config.reliability.enabled:
            # Legacy behaviour: any complaint counts as evidence.
            self.progress_monitor.note_complaint(src)
            return
        txn = message.txn
        if txn is None:
            # Evidence-free complaint: nothing to corroborate, nothing to do.
            self.env.obs.event(
                str(self.node_id),
                "complaint-dismissed",
                "info",
                {"partition": int(self.partition), "reason": "no forwarded request"},
            )
            return
        if txn.txn_id in self.decided or txn.txn_id in self.local_decided:
            # The cluster already answered this transaction; the complaint is
            # stale (or lying).  The client's retry gets the decided answer.
            self.env.obs.event(
                str(self.node_id),
                "complaint-dismissed",
                "info",
                {"partition": int(self.partition), "reason": "already decided"},
            )
            return
        self.progress_monitor.note_complaint(src, probe_txn_id=txn.txn_id)
        self.send(
            self.engine.current_leader,
            ComplaintProbe(partition=self.partition, txn=txn),
        )

    def _on_complaint_probe(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, ComplaintProbe)
        if message.partition != self.partition or not self.is_leader:
            return  # deposed (or never the leader): silence leaves the complaint standing
        txn = message.txn
        if txn is None:
            return
        self.send(
            src, ComplaintProbeAck(partition=self.partition, txn_id=txn.txn_id)
        )

    def _on_complaint_probe_ack(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, ComplaintProbeAck)
        if message.partition != self.partition:
            return
        if src != self.engine.current_leader:
            return  # only the leader under suspicion can clear its complaints
        self.progress_monitor.note_probe_ack(message.txn_id)
