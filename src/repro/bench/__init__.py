"""Experiment harness regenerating the paper's figures and tables."""

from repro.bench.drivers import (
    WorkloadRunResult,
    execute_concurrent_workloads,
    execute_workload,
)
from repro.bench.experiments import EXPERIMENTS
from repro.bench.scale import scale_factor, scaled

__all__ = [
    "EXPERIMENTS",
    "WorkloadRunResult",
    "execute_concurrent_workloads",
    "execute_workload",
    "scale_factor",
    "scaled",
]
