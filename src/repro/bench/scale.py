"""Benchmark scaling knobs.

The paper's experiments process hundreds of thousands of transactions on a
35-machine testbed; a laptop-scale simulation reproduces the same protocol
behaviour with far fewer transactions per data point.  The ``REPRO_BENCH_SCALE``
environment variable multiplies per-point transaction counts:

* ``REPRO_BENCH_SCALE=1`` (default) — quick runs suitable for CI;
* ``REPRO_BENCH_SCALE=4`` (or higher) — longer runs with tighter confidence
  intervals, closer to the paper's sample sizes.

Every experiment records the actual counts it used in its result notes, and
EXPERIMENTS.md documents the scale used for the committed numbers.
"""

from __future__ import annotations

import os


def scale_factor() -> float:
    """Multiplier applied to per-point transaction counts (env-controlled)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return max(0.1, value)


def scaled(count: int, minimum: int = 4) -> int:
    """Scale a per-point transaction count, never below ``minimum``."""
    return max(minimum, int(round(count * scale_factor())))
