"""Workload drivers: run transaction streams against a simulated deployment.

The experiment functions in :mod:`repro.bench.experiments` all reduce to the
same pattern — build a system, run a stream of transaction specifications
with some concurrency, and collect metrics — which this module implements
once.

Concurrency model: ``concurrency`` driver processes are spawned across
``num_clients`` client nodes; each process repeatedly takes the next
specification from the shared stream and executes it (closed loop).  With a
concurrency at least as large as the configured batch size, leaders operate
at their batching limit, which is how the paper's throughput-versus-batch-
size experiments are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.baselines.protocols import ReadOnlyProtocol, protocol_by_name
from repro.common.types import TxnKind
from repro.core.client import TransEdgeClient
from repro.core.system import SystemCounters, TransEdgeSystem
from repro.metrics.collector import MetricsCollector
from repro.workload.generator import TxnSpec


#: Metric operation labels, keyed by transaction kind.
OPERATION_LABELS = {
    TxnKind.LOCAL_WRITE_ONLY: "local-write-only",
    TxnKind.LOCAL_READ_WRITE: "local-read-write",
    TxnKind.DISTRIBUTED_READ_WRITE: "distributed-read-write",
    TxnKind.READ_ONLY: "read-only",
}


@dataclass
class WorkloadRunResult:
    """Everything an experiment needs from one workload execution."""

    metrics: MetricsCollector
    counters: SystemCounters
    elapsed_ms: float
    executed: int = 0

    def throughput_tps(self, label: Optional[str] = None) -> float:
        return self.metrics.throughput_tps(label)

    def mean_latency_ms(self, label: str) -> float:
        return self.metrics.operation(label).summary().mean_ms

    def abort_rate(self, label: str) -> float:
        return self.metrics.operation(label).abort_rate()


def execute_workload(
    system: TransEdgeSystem,
    specs: Iterable[TxnSpec],
    concurrency: int = 8,
    num_clients: int = 2,
    read_only_protocol: "str | ReadOnlyProtocol" = "transedge",
    metrics: Optional[MetricsCollector] = None,
    client_prefix: str = "driver",
    client_kwargs: Optional[dict] = None,
) -> WorkloadRunResult:
    """Execute ``specs`` on ``system`` and return metrics.

    Read-only specifications are executed with ``read_only_protocol``;
    read-write specifications always use the TransEdge commit path (the
    2PC/BFT baseline shares it, per Section 3.5 of the paper).
    """
    if isinstance(read_only_protocol, str):
        protocol = protocol_by_name(read_only_protocol)
    else:
        protocol = read_only_protocol
    metrics = metrics if metrics is not None else MetricsCollector()
    spec_iterator: Iterator[TxnSpec] = iter(specs)
    executed = {"count": 0}

    clients: List[TransEdgeClient] = [
        system.create_client(f"{client_prefix}-{index}", **(client_kwargs or {}))
        for index in range(max(1, num_clients))
    ]

    def driver_body(client: TransEdgeClient):
        while True:
            try:
                spec = next(spec_iterator)
            except StopIteration:
                return
            label = OPERATION_LABELS[spec.kind]
            metrics.mark_start(client.now)
            if spec.kind is TxnKind.READ_ONLY:
                result = yield from protocol.run(client, list(spec.read_keys))
                metrics.record_read_only(
                    label,
                    result.latency_ms,
                    rounds=result.rounds,
                    round2_latency_ms=result.round2_latency_ms,
                    served_by_edge=result.served_by_edge,
                )
            else:
                result = yield from client.read_write_txn(list(spec.read_keys), dict(spec.writes))
                if result.committed:
                    metrics.record_commit(label, result.latency_ms)
                else:
                    metrics.record_abort(label, result.latency_ms, reason=result.abort_reason)
            executed["count"] += 1
            metrics.mark_end(client.now)

    for index in range(max(1, concurrency)):
        client = clients[index % len(clients)]
        client.spawn(driver_body(client), name=f"{client_prefix}-proc-{index}")

    system.run_until_idle()
    return WorkloadRunResult(
        metrics=metrics,
        counters=system.counters(),
        elapsed_ms=metrics.elapsed_ms,
        executed=executed["count"],
    )


def execute_concurrent_workloads(
    system: TransEdgeSystem,
    foreground: Iterable[TxnSpec],
    background: Iterable[TxnSpec],
    foreground_protocol: "str | ReadOnlyProtocol" = "transedge",
    foreground_concurrency: int = 4,
    background_concurrency: int = 4,
    foreground_pacing_ms: float = 0.0,
) -> WorkloadRunResult:
    """Run a measured foreground stream while a background stream executes.

    Used by the experiments where read-only transactions are measured under
    concurrent read-write traffic (Figures 5, 7 and Table 1): the background
    read-write stream creates the cross-partition dependencies (and, for the
    Augustus baseline, the lock conflicts) whose cost is being measured.
    Both streams are recorded into the same collector under their own
    operation labels.

    ``foreground_pacing_ms`` spaces out the measured (foreground) operations
    so they overlap the whole background run instead of finishing in its
    first few milliseconds — read-only operations are much faster than
    distributed commits, so without pacing they would never observe the
    concurrency being studied.
    """
    metrics = MetricsCollector()
    if isinstance(foreground_protocol, str):
        protocol = protocol_by_name(foreground_protocol)
    else:
        protocol = foreground_protocol

    foreground_iter = iter(foreground)
    background_iter = iter(background)
    executed = {"count": 0}

    fg_clients = [system.create_client(f"fg-{index}") for index in range(2)]
    bg_clients = [system.create_client(f"bg-{index}") for index in range(2)]

    from repro.simnet.proc import Sleep

    def make_body(client, iterator, is_foreground):
        def body():
            while True:
                try:
                    spec = next(iterator)
                except StopIteration:
                    return
                if is_foreground and foreground_pacing_ms > 0:
                    yield Sleep(foreground_pacing_ms)
                label = OPERATION_LABELS[spec.kind]
                metrics.mark_start(client.now)
                if spec.kind is TxnKind.READ_ONLY:
                    runner = protocol if is_foreground else protocol_by_name("transedge")
                    result = yield from runner.run(client, list(spec.read_keys))
                    metrics.record_read_only(
                        label,
                        result.latency_ms,
                        rounds=result.rounds,
                        round2_latency_ms=result.round2_latency_ms,
                        served_by_edge=result.served_by_edge,
                    )
                else:
                    result = yield from client.read_write_txn(
                        list(spec.read_keys), dict(spec.writes)
                    )
                    if result.committed:
                        metrics.record_commit(label, result.latency_ms)
                    else:
                        metrics.record_abort(label, result.latency_ms, reason=result.abort_reason)
                executed["count"] += 1
                metrics.mark_end(client.now)

        return body

    for index in range(max(1, foreground_concurrency)):
        client = fg_clients[index % len(fg_clients)]
        client.spawn(make_body(client, foreground_iter, True)())
    for index in range(max(1, background_concurrency)):
        client = bg_clients[index % len(bg_clients)]
        client.spawn(make_body(client, background_iter, False)())

    system.run_until_idle()
    return WorkloadRunResult(
        metrics=metrics,
        counters=system.counters(),
        elapsed_ms=metrics.elapsed_ms,
        executed=executed["count"],
    )
