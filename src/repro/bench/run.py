"""Command-line entry point for regenerating the paper's figures and tables.

Usage::

    python -m repro.bench.run --list
    python -m repro.bench.run fig4 fig6
    python -m repro.bench.run all
    REPRO_BENCH_SCALE=4 python -m repro.bench.run table1

Each experiment prints the reproduced rows/series as an aligned text table.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scale import scale_factor


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="transedge-bench",
        description="Regenerate the TransEdge paper's figures and tables from the simulation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig4..fig15, table1, ablation-*) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments (pass ids or 'all'):")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    requested = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    print(f"scale factor: {scale_factor()} (set REPRO_BENCH_SCALE to change)")
    for name in requested:
        started = time.time()
        result = EXPERIMENTS[name]()
        elapsed = time.time() - started
        print()
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s wall clock]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
