"""Command-line entry point for regenerating the paper's figures and tables.

Usage::

    python -m repro.bench.run --list
    python -m repro.bench.run fig4 fig6
    python -m repro.bench.run all --json BENCH_results.json
    REPRO_BENCH_SCALE=4 python -m repro.bench.run table1

Each experiment prints the reproduced rows/series as an aligned text table.
With ``--json <path>`` the results are additionally written as a
machine-readable JSON document (one entry per experiment, with wall-clock
times and the scale factor), which is how the perf trajectory collects
``BENCH_*.json`` files across runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List

from repro.bench.experiments import EXPERIMENTS
from repro.bench.scale import scale_factor


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="transedge-bench",
        description="Regenerate the TransEdge paper's figures and tables from the simulation.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (fig4..fig16, table1, ablation-*) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write results as machine-readable JSON to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "enable causal tracing (repro.obs) in every experiment deployment "
            "and write the last traced run's Chrome-trace JSON to PATH"
        ),
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments (pass ids or 'all'):")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    requested = list(EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [name for name in requested if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.json:
        # Fail fast on an unwritable path instead of after the experiments.
        try:
            with open(args.json, "a", encoding="utf-8"):
                pass
        except OSError as error:
            print(f"cannot write JSON results to {args.json}: {error}", file=sys.stderr)
            return 2

    if args.trace:
        from repro.obs import runtime

        runtime.enable_trace_mode(True)

    print(f"scale factor: {scale_factor()} (set REPRO_BENCH_SCALE to change)")
    document = {
        "scale_factor": scale_factor(),
        "unix_time": time.time(),
        "experiments": {},
    }
    for name in requested:
        started = time.time()
        result = EXPERIMENTS[name]()
        elapsed = time.time() - started
        print()
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s wall clock]")
        document["experiments"][name] = {
            "elapsed_s": round(elapsed, 3),
            "result": result.to_dict(),
        }

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote JSON results to {args.json}")

    if args.trace:
        from repro.obs import runtime
        from repro.obs.export import chrome_trace_document, write_json

        obs = runtime.last_observability()
        if obs is None:
            print("--trace: no experiment built a traced deployment", file=sys.stderr)
        else:
            chrome = chrome_trace_document(obs)
            write_json(chrome, args.trace)
            print(
                f"wrote Chrome trace ({len(chrome['traceEvents'])} events, "
                f"digest {obs.tracer.digest()[:16]}…) to {args.trace}"
            )
        runtime.reset()  # don't leak trace mode into later in-process calls
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
