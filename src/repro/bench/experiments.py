"""One experiment function per figure/table of the paper's evaluation.

Every function builds the deployment it needs, runs the matching workload and
returns a :class:`~repro.metrics.tables.FigureResult` or
:class:`~repro.metrics.tables.TableResult` whose rendered text lists the same
rows/series the paper reports.  Absolute numbers are simulated milliseconds
and simulated transactions per second; EXPERIMENTS.md records how they
compare to the paper's measurements.

The mapping from experiment to paper artefact is in DESIGN.md §4.
"""

from __future__ import annotations

import itertools
import random
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.baselines.protocols import protocol_by_name
from repro.bench.drivers import execute_concurrent_workloads, execute_workload
from repro.bench.scale import scaled
from repro.common.config import (
    BatchConfig,
    CheckpointConfig,
    EdgeConfig,
    FreshnessConfig,
    LatencyConfig,
    SystemConfig,
)
from repro.common.types import TxnKind
from repro.core.system import TransEdgeSystem
from repro.crypto.archive import MerkleTreeArchive
from repro.crypto.merkle import MerkleStore, MerkleTree
from repro.edge.byzantine import BEHAVIOURS, install_byzantine
from repro.metrics.collector import MetricsCollector
from repro.metrics.tables import FigureResult, TableResult
from repro.storage.mvstore import MultiVersionStore
from repro.verification.history import ExecutionHistory, version_order_from_system
from repro.workload.generator import WorkloadGenerator, WorkloadProfile

#: Batch sizes swept by the paper's throughput experiments (Figures 9-15).
PAPER_BATCH_SIZES = (1000, 1500, 2000, 2500, 3000, 3500)

#: Batch-size sweep used by default: the paper's sweep scaled down 10x, with
#: the key space scaled by the same factor so that the contention ratio
#: (in-flight writes / key space) matches the paper's 1M-key setup.
DEFAULT_BATCH_SIZES = (100, 200, 300, 350)

#: Key-space size used by the throughput experiments (see note above).
THROUGHPUT_KEYS = 60_000


# ---------------------------------------------------------------------------
# deployment builders
# ---------------------------------------------------------------------------


def latency_config(extra_ms: float = 0.0) -> LatencyConfig:
    """Edge-site latencies.

    The paper's testbed places all clusters in one facility (ChameleonCloud),
    so the baseline inter-cluster delay is small; the geo-distribution
    experiments add latency explicitly (``extra_ms``), exactly like the
    paper's "additional latency between clusters" knob.
    """
    return LatencyConfig(
        intra_cluster_ms=0.3,
        inter_cluster_ms=1.0,
        client_to_cluster_ms=0.5,
        inter_cluster_extra_ms=extra_ms,
        jitter_fraction=0.1,
    )


def build_system(
    num_partitions: int = 5,
    fault_tolerance: int = 2,
    batch_size: int = 100,
    batch_timeout_ms: float = 5.0,
    initial_keys: int = 600,
    extra_latency_ms: float = 0.0,
    seed: int = 7,
    value_size: int = 64,
    traced: bool = False,
) -> TransEdgeSystem:
    """A deployment mirroring Section 5.1 (5 clusters of ``3f+1`` replicas)."""
    config = SystemConfig(
        num_partitions=num_partitions,
        fault_tolerance=fault_tolerance,
        batch=BatchConfig(max_size=batch_size, timeout_ms=batch_timeout_ms),
        latency=latency_config(extra_latency_ms),
        initial_keys=initial_keys,
        value_size=value_size,
        seed=seed,
    )
    if traced:
        config = config.with_tracing(True, max_traces=20_000)
    return TransEdgeSystem(config)


def make_generator(system: TransEdgeSystem, seed: int = 11, **profile_kwargs) -> WorkloadGenerator:
    profile = WorkloadProfile(value_size=min(system.config.value_size, 64), **profile_kwargs)
    return WorkloadGenerator(
        sorted(system.initial_data), system.partitioner, profile=profile, seed=seed
    )


# ---------------------------------------------------------------------------
# Figure 4 — read-only latency: TransEdge vs 2PC/BFT
# ---------------------------------------------------------------------------


def fig4_read_only_latency(txns_per_point: Optional[int] = None) -> FigureResult:
    """Average read-only latency versus accessed clusters (Figure 4)."""
    txns = scaled(txns_per_point or 30)
    figure = FigureResult(
        figure_id="Figure 4",
        title="Read-only transaction latency, TransEdge vs 2PC/BFT",
        x_label="clusters accessed",
        y_label="latency (ms)",
    )
    series = {name: figure.add_series(name) for name in ("2PC/BFT", "TransEdge")}
    for clusters in range(1, 6):
        for protocol, label in (("2pc-bft", "2PC/BFT"), ("transedge", "TransEdge")):
            system = build_system(fault_tolerance=2)
            generator = make_generator(system)
            specs = [generator.read_only(clusters=clusters) for _ in range(txns)]
            result = execute_workload(
                system, specs, concurrency=4, read_only_protocol=protocol
            )
            series[label].add(clusters, result.mean_latency_ms("read-only"))
    figure.notes.append(f"{txns} read-only transactions per point, f=2 (7 replicas/cluster)")
    return figure


# ---------------------------------------------------------------------------
# Figure 5 — read-only latency split into rounds, vs Augustus
# ---------------------------------------------------------------------------


def fig5_read_only_rounds(txns_per_point: Optional[int] = None) -> FigureResult:
    """Round-1 latency, effective round-2 latency and Augustus (Figure 5)."""
    txns = scaled(txns_per_point or 30)
    background_txns = scaled(40)
    figure = FigureResult(
        figure_id="Figure 5",
        title="Read-only latency by round, TransEdge vs Augustus",
        x_label="clusters accessed",
        y_label="latency (ms)",
    )
    round1 = figure.add_series("TransEdge round 1")
    round2 = figure.add_series("TransEdge round 2 (effective)")
    augustus = figure.add_series("Augustus")
    for clusters in range(1, 6):
        for protocol in ("transedge", "augustus"):
            system = build_system(fault_tolerance=2)
            generator = make_generator(system)
            foreground = [generator.read_only(clusters=clusters) for _ in range(txns)]
            background = [generator.distributed_read_write() for _ in range(background_txns)]
            result = execute_concurrent_workloads(
                system,
                foreground,
                background,
                foreground_protocol=protocol,
                foreground_concurrency=4,
                background_concurrency=4,
                foreground_pacing_ms=12.0,
            )
            mean_total = result.mean_latency_ms("read-only")
            if protocol == "transedge":
                effective_round2 = result.metrics.effective_round2_ms("read-only")
                round1.add(clusters, max(0.0, mean_total - effective_round2))
                round2.add(clusters, effective_round2)
            else:
                augustus.add(clusters, mean_total)
    figure.notes.append(
        f"{txns} read-only txns per point with {background_txns} concurrent distributed writers"
    )
    return figure


# ---------------------------------------------------------------------------
# Figure 6 — read-only throughput: TransEdge vs Augustus
# ---------------------------------------------------------------------------


def fig6_read_only_throughput(txns_per_point: Optional[int] = None) -> FigureResult:
    txns = scaled(txns_per_point or 160)
    figure = FigureResult(
        figure_id="Figure 6",
        title="Read-only throughput, TransEdge vs Augustus",
        x_label="clusters accessed",
        y_label="throughput (txns/s, simulated)",
    )
    series = {name: figure.add_series(name) for name in ("TransEdge", "Augustus")}
    for clusters in range(1, 6):
        for protocol, label in (("transedge", "TransEdge"), ("augustus", "Augustus")):
            system = build_system(fault_tolerance=2)
            generator = make_generator(system)
            specs = [generator.read_only(clusters=clusters) for _ in range(txns)]
            result = execute_workload(
                system, specs, concurrency=24, num_clients=4, read_only_protocol=protocol
            )
            series[label].add(clusters, result.throughput_tps("read-only"))
    figure.notes.append(f"{txns} read-only transactions per point, 24 concurrent clients")
    return figure


# ---------------------------------------------------------------------------
# Figure 7 — long-running read-only transactions
# ---------------------------------------------------------------------------


def fig7_long_read_only(txns_per_point: Optional[int] = None) -> FigureResult:
    txns = scaled(txns_per_point or 8)
    background_txns = scaled(30)
    figure = FigureResult(
        figure_id="Figure 7",
        title="Long-running read-only transaction latency",
        x_label="read operations per read-only transaction",
        y_label="latency (ms)",
    )
    series = {name: figure.add_series(name) for name in ("TransEdge", "Augustus")}
    for ops in (250, 500, 1000, 1500, 2000):
        for protocol, label in (("transedge", "TransEdge"), ("augustus", "Augustus")):
            system = build_system(fault_tolerance=2, initial_keys=2500)
            generator = make_generator(system)
            foreground = [generator.read_only(clusters=5, ops=ops) for _ in range(txns)]
            background = [generator.distributed_read_write() for _ in range(background_txns)]
            result = execute_concurrent_workloads(
                system,
                foreground,
                background,
                foreground_protocol=protocol,
                foreground_concurrency=2,
                background_concurrency=4,
                foreground_pacing_ms=10.0,
            )
            series[label].add(ops, result.mean_latency_ms("read-only"))
    figure.notes.append(
        f"{txns} long read-only txns per point under concurrent distributed writers"
    )
    return figure


# ---------------------------------------------------------------------------
# Figure 8 — read-only throughput vs inter-cluster latency
# ---------------------------------------------------------------------------


def fig8_read_only_latency_sweep(txns_per_point: Optional[int] = None) -> FigureResult:
    txns = scaled(txns_per_point or 120)
    figure = FigureResult(
        figure_id="Figure 8",
        title="Read-only throughput as inter-cluster latency grows",
        x_label="clusters accessed",
        y_label="throughput (txns/s, simulated)",
    )
    for extra in (0, 20, 70, 150):
        series = figure.add_series(f"+{extra}ms between clusters")
        for clusters in range(1, 6):
            system = build_system(fault_tolerance=2, extra_latency_ms=float(extra))
            generator = make_generator(system)
            specs = [generator.read_only(clusters=clusters) for _ in range(txns)]
            result = execute_workload(
                system, specs, concurrency=24, num_clients=4, read_only_protocol="transedge"
            )
            series.add(clusters, result.throughput_tps("read-only"))
    figure.notes.append(f"{txns} read-only transactions per point")
    return figure


# ---------------------------------------------------------------------------
# Figures 9-15 and Table 1: read-write experiments
# ---------------------------------------------------------------------------


def _run_local_throughput(
    system: TransEdgeSystem, kind: TxnKind, count: int, concurrency: int
) -> float:
    generator = make_generator(system)
    specs = list(generator.stream_of(count, kind))
    label = {
        TxnKind.LOCAL_WRITE_ONLY: "local-write-only",
        TxnKind.LOCAL_READ_WRITE: "local-read-write",
    }[kind]
    result = execute_workload(system, specs, concurrency=concurrency, num_clients=4)
    return result.throughput_tps(label)


def fig9_local_throughput(
    txns_per_point: Optional[int] = None,
    batch_sizes: Iterable[int] = DEFAULT_BATCH_SIZES,
) -> FigureResult:
    """Throughput of write-only and local read-write transactions (Figure 9).

    The 2PC/BFT baseline shares TransEdge's read-write path (Section 3.5), so
    its local read-write series is obtained from the same machinery with the
    read-only bookkeeping disabled being unnecessary — the paper itself
    reports the two systems as performing similarly here.
    """
    figure = FigureResult(
        figure_id="Figure 9",
        title="Local transaction throughput vs batch size",
        x_label="transaction batch size",
        y_label="throughput (txns/s, simulated)",
    )
    write_only = figure.add_series("Write-only (TransEdge)")
    local_rw = figure.add_series("Local read-write (TransEdge)")
    local_rw_baseline = figure.add_series("Local read-write (2PC/BFT)")
    for batch_size in batch_sizes:
        # The batch fills at every one of the 5 partitions, so the driver keeps
        # roughly (5 x batch size) transactions outstanding.
        count = scaled(txns_per_point or batch_size * 8, minimum=batch_size * 5)
        concurrency = min(batch_size * 5, count)
        for series_obj, kind in (
            (write_only, TxnKind.LOCAL_WRITE_ONLY),
            (local_rw, TxnKind.LOCAL_READ_WRITE),
            (local_rw_baseline, TxnKind.LOCAL_READ_WRITE),
        ):
            system = build_system(
                fault_tolerance=1,
                batch_size=batch_size,
                batch_timeout_ms=20.0,
                initial_keys=THROUGHPUT_KEYS,
            )
            series_obj.add(
                batch_size, _run_local_throughput(system, kind, count, concurrency)
            )
    figure.notes.append(
        "f=1 clusters; batch sizes are the paper's sweep scaled 10x down, "
        "key space scaled to preserve the contention ratio"
    )
    return figure


def _distributed_run(
    batch_size: int,
    count: int,
    read_ops: int,
    write_ops: int,
    extra_latency_ms: float = 0.0,
    initial_keys: int = THROUGHPUT_KEYS,
    skewed: bool = False,
):
    system = build_system(
        fault_tolerance=1,
        batch_size=batch_size,
        batch_timeout_ms=10.0,
        extra_latency_ms=extra_latency_ms,
        initial_keys=initial_keys,
    )
    generator = make_generator(system)
    if skewed:
        specs = [
            generator.skewed_read_write(read_ops=read_ops, write_ops=write_ops)
            for _ in range(count)
        ]
    else:
        specs = [
            generator.distributed_read_write(read_ops=read_ops, write_ops=write_ops)
            for _ in range(count)
        ]
    concurrency = min(max(16, batch_size), count)
    result = execute_workload(system, specs, concurrency=concurrency, num_clients=4)
    return result


def _skew_metrics(result):
    """Combined latency/throughput over the local + distributed labels.

    The skew sweep's W=1 point is a purely local transaction (the paper makes
    the same observation), so its samples land under the local label.
    """
    latencies = []
    committed = 0
    for label in ("local-read-write", "distributed-read-write"):
        metrics = result.metrics.operation(label)
        latencies.extend(metrics.latencies_ms)
        committed += metrics.committed
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    elapsed_s = result.elapsed_ms / 1000.0
    throughput = committed / elapsed_s if elapsed_s > 0 else 0.0
    return mean_latency, throughput


def fig10_distributed_latency(
    txns_per_point: Optional[int] = None,
    batch_sizes: Iterable[int] = (90, 250),
) -> FigureResult:
    figure = FigureResult(
        figure_id="Figure 10",
        title="Distributed read-write latency vs read/write skew",
        x_label="write operations per transaction (of 6 total)",
        y_label="latency (ms)",
    )
    skews = [(5, 1), (4, 2), (3, 3), (2, 4), (1, 5)]
    for batch_size in batch_sizes:
        series = figure.add_series(f"batch size {batch_size}")
        for read_ops, write_ops in skews:
            count = scaled(txns_per_point or 250)
            result = _distributed_run(batch_size, count, read_ops, write_ops, skewed=True)
            latency, _ = _skew_metrics(result)
            series.add(write_ops, latency)
    figure.notes.append("x-axis encodes the skew R=5,W=1 ... R=1,W=5 by its write count")
    return figure


def fig11_distributed_throughput(
    txns_per_point: Optional[int] = None,
    batch_sizes: Iterable[int] = (90, 250),
) -> FigureResult:
    figure = FigureResult(
        figure_id="Figure 11",
        title="Distributed read-write throughput vs read/write skew",
        x_label="write operations per transaction (of 6 total)",
        y_label="throughput (txns/s, simulated)",
    )
    skews = [(5, 1), (4, 2), (3, 3), (2, 4), (1, 5)]
    for batch_size in batch_sizes:
        series = figure.add_series(f"batch size {batch_size}")
        for read_ops, write_ops in skews:
            count = scaled(txns_per_point or 250)
            result = _distributed_run(batch_size, count, read_ops, write_ops, skewed=True)
            _, throughput = _skew_metrics(result)
            series.add(write_ops, throughput)
    return figure


def fig12_distributed_latency_sweep(
    txns_per_point: Optional[int] = None,
    batch_sizes: Iterable[int] = (90, 250),
) -> FigureResult:
    figure = FigureResult(
        figure_id="Figure 12",
        title="Distributed read-write throughput vs added inter-cluster latency",
        x_label="additional latency between clusters (ms)",
        y_label="throughput (txns/s, simulated)",
    )
    for batch_size in batch_sizes:
        series = figure.add_series(f"batch size {batch_size}")
        for extra in (0, 20, 70, 150, 300, 500):
            count = scaled(txns_per_point or 200)
            result = _distributed_run(batch_size, count, read_ops=5, write_ops=3, extra_latency_ms=extra)
            series.add(extra, result.throughput_tps("distributed-read-write"))
    return figure


def fig13_abort_rates(
    txns_per_point: Optional[int] = None,
    batch_sizes: Iterable[int] = DEFAULT_BATCH_SIZES,
) -> FigureResult:
    figure = FigureResult(
        figure_id="Figure 13",
        title="Read-write transaction abort rate",
        x_label="transaction batch size",
        y_label="% of aborted transactions",
    )
    for extra in (0, 20, 70):
        series = figure.add_series(f"+{extra}ms between clusters")
        for batch_size in batch_sizes:
            count = scaled(txns_per_point or max(250, batch_size * 2))
            result = _distributed_run(
                batch_size, count, read_ops=5, write_ops=3, extra_latency_ms=extra,
            )
            series.add(batch_size, 100.0 * result.abort_rate("distributed-read-write"))
    return figure


def fig14_mix_throughput(
    txns_per_point: Optional[int] = None,
    batch_sizes: Iterable[int] = (100, 250),
) -> FigureResult:
    figure = FigureResult(
        figure_id="Figure 14",
        title="Throughput vs local/distributed read-write mix",
        x_label="% distributed read-write transactions",
        y_label="throughput (txns/s, simulated)",
    )
    for batch_size in batch_sizes:
        series = figure.add_series(f"batch size {batch_size}")
        for distributed_pct in (0, 20, 40, 60, 80, 100):
            count = scaled(txns_per_point or 400)
            system = build_system(
                fault_tolerance=1,
                batch_size=batch_size,
                batch_timeout_ms=10.0,
                initial_keys=THROUGHPUT_KEYS,
            )
            generator = make_generator(system)
            distributed_count = count * distributed_pct // 100
            local_count = count - distributed_count
            specs = list(
                itertools.chain(
                    generator.stream_of(local_count, TxnKind.LOCAL_READ_WRITE),
                    generator.stream_of(distributed_count, TxnKind.DISTRIBUTED_READ_WRITE),
                )
            )
            concurrency = min(max(32, batch_size), count)
            result = execute_workload(system, specs, concurrency=concurrency, num_clients=4)
            committed = sum(
                result.metrics.operation(label).committed
                for label in ("local-read-write", "distributed-read-write")
            )
            elapsed_s = result.elapsed_ms / 1000.0
            series.add(distributed_pct, committed / elapsed_s if elapsed_s > 0 else 0.0)
    return figure


def fig15_fault_tolerance(
    txns_per_point: Optional[int] = None,
    batch_sizes: Iterable[int] = (90, 150, 300),
) -> FigureResult:
    figure = FigureResult(
        figure_id="Figure 15",
        title="Effect of the per-cluster fault-tolerance level f",
        x_label="transaction batch size",
        y_label="latency (ms)",
    )
    for fault_tolerance in (1, 2, 3):
        series = figure.add_series(f"f={fault_tolerance} ({3 * fault_tolerance + 1} replicas)")
        for batch_size in batch_sizes:
            count = scaled(txns_per_point or 300)
            system = build_system(
                fault_tolerance=fault_tolerance,
                batch_size=batch_size,
                batch_timeout_ms=10.0,
                initial_keys=THROUGHPUT_KEYS,
            )
            generator = make_generator(system)
            specs = [generator.distributed_read_write() for _ in range(count)]
            concurrency = min(max(16, batch_size), count)
            result = execute_workload(system, specs, concurrency=concurrency, num_clients=4)
            series.add(batch_size, result.mean_latency_ms("distributed-read-write"))
    figure.notes.append(
        "the paper's caption reports throughput while its axis reports latency; latency is shown"
    )
    return figure


def table1_read_only_interference(txns_per_point: Optional[int] = None) -> TableResult:
    """Table 1: % of read-write aborts caused by conflicting read-only txns."""
    ro_txns = scaled(txns_per_point or 60)
    rw_txns = scaled(80)
    table = TableResult(
        table_id="Table 1",
        title="% of read-write transactions aborted by read-only transactions",
        columns=[1, 2, 3, 4, 5],
    )
    for clusters in range(1, 6):
        for protocol, row in (("augustus", "Augustus"), ("transedge", "TransEdge")):
            system = build_system(fault_tolerance=2, initial_keys=200)
            generator = make_generator(system)
            foreground = [generator.read_only(clusters=clusters, ops=clusters * 3) for _ in range(ro_txns)]
            background = [generator.distributed_read_write() for _ in range(rw_txns)]
            result = execute_concurrent_workloads(
                system,
                foreground,
                background,
                foreground_protocol=protocol,
                foreground_concurrency=6,
                background_concurrency=6,
                foreground_pacing_ms=6.0,
            )
            rw_metrics = result.metrics.operation("distributed-read-write")
            interference = result.counters.lock_interference_aborts
            total = max(1, rw_metrics.total)
            table.set(row, clusters, round(100.0 * min(interference, rw_metrics.aborted) / total, 2))
    table.notes.append(
        f"{ro_txns} read-only and {rw_txns} read-write transactions per cell"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 16 — checkpointing, log compaction and crash recovery
# ---------------------------------------------------------------------------


def fig16_crash_recovery(txns_per_point: Optional[int] = None) -> FigureResult:
    """Crash-and-recover replicas (follower *and* leader) under checkpointing.

    Not a figure of the paper: this exercises the ``repro.recovery``
    subsystem.  For each checkpoint interval a write-heavy workload runs while
    one follower of partition 0 is crashed mid-run and restarted later; the
    figure reports the end-of-run SMR log length with and without
    checkpointing, the longest version chain, and how far the restarted
    replica still trails its leader once the run drains.

    A final *leader-crash* run (mixed local + distributed workload) crashes
    the partition-0 **leader** mid-run with no manual view-change trigger:
    survivors detect the dead leader (progress monitor + client complaints),
    rotate views, the new leader resumes the predecessor's unfinished 2PC,
    and the restarted ex-leader rejoins through state transfer *adopting the
    current view*.  The run reports recoveries completed, automatic view
    changes, stranded prepared transactions (must be zero) and the per-node
    signature verify-cache hit rates.
    """
    txns = scaled(txns_per_point or 300)
    figure = FigureResult(
        figure_id="Figure 16",
        title="Checkpoint interval vs log growth and crash recovery",
        x_label="checkpoint interval (batches)",
        y_label="count (batches / versions)",
    )
    bounded_log = figure.add_series("max SMR log length (checkpointing)")
    unbounded_log = figure.add_series("max SMR log length (disabled)")
    chains = figure.add_series("max version-chain length (checkpointing)")
    lag = figure.add_series("restarted replica lag (batches)")
    events = MetricsCollector()
    intervals = (5, 10, 20)
    baseline_length = None
    for interval in intervals:
        for enabled in (True, False):
            if not enabled and baseline_length is not None:
                continue  # the interval is unused when disabled: one run suffices
            config = SystemConfig(
                num_partitions=2,
                fault_tolerance=1,
                batch=BatchConfig(max_size=8, timeout_ms=2.0),
                latency=latency_config(0.0),
                initial_keys=400,
                value_size=64,
                checkpoint=CheckpointConfig(
                    enabled=enabled,
                    interval_batches=interval,
                    retention_batches=interval,
                ),
            )
            system = TransEdgeSystem(config)
            generator = make_generator(system)
            specs = list(generator.stream_of(txns, TxnKind.LOCAL_READ_WRITE))
            victim = system.topology.members(0)[2]  # a follower: the cluster stays live
            if enabled:
                system.env.simulator.schedule(
                    25.0, lambda s=system, v=victim: s.crash_replica(v)
                )
                system.env.simulator.schedule(
                    70.0, lambda s=system, v=victim: s.restart_replica(v)
                )
            execute_workload(
                system, specs, concurrency=16, num_clients=4, metrics=events
            )
            if enabled:
                counters = system.counters()
                events.record_event("checkpoints-stable", counters.checkpoints_stable)
                events.record_event("log-entries-truncated", counters.log_entries_truncated)
                events.record_event("versions-pruned", counters.versions_pruned)
                victim_replica = system.replicas[victim]
                events.record_event(
                    "recoveries-completed", victim_replica.counters.recoveries_completed
                )
                bounded_log.add(interval, system.max_log_length())
                chains.add(interval, system.max_version_chain_length())
                lag.add(
                    interval,
                    system.leader_replica(0).log.last_seq - victim_replica.log.last_seq,
                )
            else:
                baseline_length = system.max_log_length()
    for interval in intervals:
        unbounded_log.add(interval, baseline_length)

    # Leader-crash variant: no manual suspect anywhere — convergence relies
    # entirely on the automatic failure detection added in PR 3.
    leader_series = figure.add_series("leader crash: recoveries / view changes / stranded")
    config = SystemConfig(
        num_partitions=2,
        fault_tolerance=1,
        batch=BatchConfig(max_size=8, timeout_ms=2.0),
        latency=latency_config(0.0),
        initial_keys=400,
        value_size=64,
        checkpoint=CheckpointConfig(
            enabled=True, interval_batches=10, retention_batches=10
        ),
    )
    system = TransEdgeSystem(config)
    generator = make_generator(system)
    locals_stream = generator.stream_of(txns * 2 // 3, TxnKind.LOCAL_READ_WRITE)
    dist_stream = generator.stream_of(txns // 3, TxnKind.DISTRIBUTED_READ_WRITE)
    # Interleave 2 local : 1 distributed so 2PC is in flight when the leader
    # dies (that is the hard case the recovery overhaul must converge from).
    mixed = []
    for spec in locals_stream:
        mixed.append(spec)
        if len(mixed) % 3 == 2:
            nxt = next(dist_stream, None)
            if nxt is not None:
                mixed.append(nxt)
    mixed.extend(dist_stream)
    victim = system.topology.leader(0)
    system.env.simulator.schedule(30.0, lambda: system.crash_replica(victim))
    # Restart well after the clients' commit timeout so the complaint-driven
    # view change happens first and the ex-leader rejoins a *newer* view.
    system.env.simulator.schedule(2_000.0, lambda: system.restart_replica(victim))
    result = execute_workload(
        system,
        mixed,
        concurrency=16,
        num_clients=4,
        metrics=events,
        client_prefix="leadercrash",
        # Short commit timeout: clients stuck on the dead leader complain
        # (and their aborted attempts terminate) quickly instead of at the
        # default 120 s, which keeps the run short.
        client_kwargs={"commit_timeout_ms": 500.0},
    )
    counters = system.counters()
    ex_leader = system.replicas[victim]
    stranded = system.stranded_prepared_transactions()
    events.record_event("leader-crash-recoveries-completed",
                        ex_leader.counters.recoveries_completed)
    events.record_event("leader-crash-view-changes", counters.view_changes)
    events.record_event("leader-crash-views-adopted", counters.views_adopted)
    events.record_event("leader-crash-decision-queries", counters.decision_queries_served)
    events.record_event("stranded-prepared", stranded)
    events.record_cache_snapshot(system.cache_snapshot(record_event=True))
    cache_hits, cache_misses = events.verify_cache_totals()
    leader_series.add(0, ex_leader.counters.recoveries_completed)
    leader_series.add(1, counters.view_changes)
    leader_series.add(2, stranded)

    figure.notes.append(
        f"{txns} local read-write txns per point; one partition-0 follower crashed at "
        "t=25ms and restarted (with state transfer) at t=70ms in the checkpointing runs"
    )
    figure.notes.append(
        "leader-crash run: partition-0 leader crashed at t=30ms, restarted at "
        f"t=2000ms; {result.executed} mixed txns executed; automatic view "
        f"change only (no manual suspect); stranded prepared txns = {stranded}; "
        f"ex-leader rejoined in view {ex_leader.engine.view}"
    )
    figure.notes.append(
        f"per-node verify caches: {100.0 * cache_hits / max(1, cache_hits + cache_misses):.1f}% "
        f"aggregate hit rate over {len(events.verify_cache_stats())} nodes"
    )
    figure.notes.append(
        "recovery events: "
        + ", ".join(f"{name}={count}" for name, count in sorted(events.events().items()))
    )
    transport = events.transport_counters()
    if transport:
        # The crash windows are where the reliable channel earns its keep:
        # retransmissions towards the dead node until the per-link cap
        # abandons its window, duplicate-drops as redeliveries race restarts.
        figure.notes.append(
            "reliable channel: "
            + ", ".join(f"{name}={count}" for name, count in sorted(transport.items()))
        )
    return figure


# ---------------------------------------------------------------------------
# Edge — the untrusted edge read-proxy tier (repro.edge)
# ---------------------------------------------------------------------------


def edge_latency_config() -> LatencyConfig:
    """A genuinely geo-distributed profile: clients far from every core
    cluster but one short hop from a same-region edge proxy — the setting in
    which TransEdge's verified edge caching pays off."""
    return LatencyConfig(
        intra_cluster_ms=0.3,
        inter_cluster_ms=2.0,
        client_to_cluster_ms=6.0,
        client_to_edge_ms=0.25,
        jitter_fraction=0.1,
    )


def _edge_system(
    num_proxies: int,
    num_partitions: int = 3,
    initial_keys: int = 300,
    **config_kwargs,
) -> TransEdgeSystem:
    edge = EdgeConfig(enabled=num_proxies > 0, num_proxies=max(1, num_proxies))
    config = SystemConfig(
        num_partitions=num_partitions,
        fault_tolerance=1,
        batch=BatchConfig(max_size=50, timeout_ms=5.0),
        latency=edge_latency_config(),
        initial_keys=initial_keys,
        value_size=64,
        edge=edge,
        **config_kwargs,
    )
    return TransEdgeSystem(config)


def _edge_byzantine_scenario(behaviour_name: str, reads: int) -> Dict[str, float]:
    """One byzantine-proxy containment run; returns the numbers CI gates on.

    A single proxy serves a client re-reading a fixed key set while a writer
    keeps committing to the same keys.  The proxy misbehaves per
    ``behaviour_name`` (tampered value / tampered proof / stale header); the
    client must catch it through verification, blacklist it, and finish the
    run on correct, fully verified core-served snapshots.
    ``accepted_invalid`` counts results that passed client verification yet
    contradict the committed history — the number that must be zero for the
    "a byzantine proxy can only be caught, never believed" claim.
    """
    config = SystemConfig(
        num_partitions=2,
        fault_tolerance=1,
        batch=BatchConfig(max_size=10, timeout_ms=2.0),
        latency=edge_latency_config(),
        initial_keys=80,
        value_size=64,
        freshness=FreshnessConfig(client_staleness_bound_ms=40.0),
        edge=EdgeConfig(enabled=True, num_proxies=1),
    )
    from repro.simnet.proc import Sleep

    system = TransEdgeSystem(config)
    behaviour = install_byzantine(system.proxies[0], behaviour_name)
    history = ExecutionHistory(system.initial_data)
    reader = system.create_client("edge-reader")
    writer = system.create_client("edge-writer")
    read_keys = sorted(system.keys_of_partition(0)[:2] + system.keys_of_partition(1)[:2])
    # The writer touches both partitions so every honest header stays within
    # the freshness bound — only the byzantine replay can go stale.
    write_keys = [system.keys_of_partition(0)[0], system.keys_of_partition(1)[0]]
    results = []

    def reader_body():
        # Warm-up: let the writer commit to both partitions first, so every
        # honest header is younger than the staleness bound when reads begin
        # (the bound would otherwise flag genesis-era headers of a cluster
        # that has not sealed a batch since bootstrap).
        yield Sleep(60.0)
        for _ in range(reads):
            yield Sleep(5.0)
            result = yield from reader.read_only_txn(read_keys)
            results.append(result)
            if result.verified:
                history.record_read_only(result.txn_id, result.values, result.versions)

    def writer_body():
        counter = itertools.count()
        for _ in range(reads * 2):
            yield Sleep(2.5)
            stamp = next(counter)
            writes = {
                key: f"edge-w{stamp}-{position}".encode().ljust(32, b"x")
                for position, key in enumerate(write_keys)
            }
            outcome = yield from writer.read_write_txn([], writes)
            if outcome.committed:
                history.record_commit(outcome.txn_id, {}, writes)

    reader.spawn(reader_body())
    writer.spawn(writer_body())
    system.run_until_idle()

    from repro.common.errors import VerificationError

    accepted_invalid = 0
    try:
        history.check_read_only_values()
        history.check_serializable(version_order_from_system(system))
    except VerificationError:  # an accepted (verified=True) result was wrong
        accepted_invalid = 1
    return {
        "reads": len(results),
        "blacklisted": float(len(reader.edge_router.blacklisted())),
        "verification_failures": float(reader.stats.edge_verification_failures),
        "edge_served": float(reader.stats.edge_reads_served),
        "accepted_invalid": float(accepted_invalid),
        "mutations": float(
            getattr(behaviour, "mutations", 0) or getattr(behaviour, "replays", 0)
        ),
    }


def fig_edge(txns_per_point: Optional[int] = None) -> FigureResult:
    """Edge read-proxy tier: latency win, cache efficacy, byzantine containment.

    Not a figure of the paper: this exercises the ``repro.edge`` subsystem.
    Three parts:

    1. a proxy-count sweep under a read-heavy mixed workload with the
       near-edge/far-core latency profile — proxy-served reads must come out
       faster on average than core-served reads (0 proxies is the no-edge
       baseline);
    2. a read-fraction sweep at a fixed proxy count — cache hit rate as the
       write rate (header churn) varies;
    3. one containment run per byzantine-proxy behaviour (tampered value,
       tampered proof, stale header) — each must end with the proxy
       blacklisted and zero accepted-but-invalid reads.
    """
    txns = scaled(txns_per_point or 150)
    figure = FigureResult(
        figure_id="Edge",
        title="Edge proxy tier: read latency, cache hit rate, byzantine containment",
        x_label="edge proxies (part 1) / read fraction % (part 2) / scenario (part 3)",
        y_label="latency (ms) / percent / flag",
    )
    edge_latency = figure.add_series("proxy-served mean latency (ms)")
    core_latency = figure.add_series("core-served mean latency (ms)")
    hit_rate_series = figure.add_series("proxy cache hit rate (%)")

    for num_proxies in (0, 1, 2, 4):
        system = _edge_system(num_proxies)
        # Zipfian reads: edge caches live off skewed popularity, and a skewed
        # working set is what makes the per-proxy caches warm within the run.
        generator = make_generator(
            system, read_only_fraction=0.9, distribution="zipfian"
        )
        specs = generator.mixed_stream(txns)
        result = execute_workload(system, specs, concurrency=8, num_clients=4)
        edge_mean, core_mean, edge_count, core_count = result.metrics.edge_latency_split(
            "read-only"
        )
        if edge_count:
            edge_latency.add(num_proxies, round(edge_mean, 3))
        if core_count:
            core_latency.add(num_proxies, round(core_mean, 3))
        counters = result.counters
        result.metrics.record_cache_snapshot(system.cache_snapshot(record_event=True))
        hits, misses = result.metrics.edge_cache_totals()
        lookups = hits + misses
        if num_proxies > 0:
            hit_rate_series.add(
                num_proxies, round(100.0 * hits / max(1, lookups), 2)
            )
            figure.notes.append(
                f"{num_proxies} proxies: {edge_count} proxy-served / {core_count} "
                f"core-served reads, cache {hits}/{lookups} hits, "
                f"{counters.edge_core_fetches} core fetches, "
                f"{counters.headers_announced} headers announced"
            )

    fraction_hits = figure.add_series("cache hit rate vs read fraction (%)")
    for read_fraction in (0.6, 0.9, 1.0):
        system = _edge_system(2)
        generator = make_generator(
            system, read_only_fraction=read_fraction, distribution="zipfian"
        )
        specs = generator.mixed_stream(txns)
        result = execute_workload(system, specs, concurrency=8, num_clients=4)
        result.metrics.record_cache_snapshot(system.cache_snapshot(record_event=True))
        hits, misses = result.metrics.edge_cache_totals()
        fraction_hits.add(
            round(100 * read_fraction),
            round(100.0 * hits / max(1, hits + misses), 2),
        )

    blacklisted = figure.add_series("byzantine scenario: proxy blacklisted (1=yes)")
    invalid = figure.add_series("byzantine scenario: accepted-but-invalid reads")
    byz_reads = scaled(txns_per_point or 30, minimum=20)
    for position, behaviour_name in enumerate(sorted(BEHAVIOURS)):
        outcome = _edge_byzantine_scenario(behaviour_name, reads=byz_reads)
        blacklisted.add(position, 1.0 if outcome["blacklisted"] else 0.0)
        invalid.add(position, outcome["accepted_invalid"])
        figure.notes.append(
            f"byzantine {behaviour_name}: {outcome['reads']:.0f} reads, "
            f"{outcome['edge_served']:.0f} edge-served before detection, "
            f"{outcome['verification_failures']:.0f} verification failures, "
            f"blacklisted={outcome['blacklisted']:.0f}, "
            f"accepted_invalid={outcome['accepted_invalid']:.0f}"
        )
    figure.notes.append(
        f"{txns} mixed txns per part-1/2 point (90% read-only in part 1); "
        "near-edge/far-core latency profile "
        "(client→edge 0.25 ms, client→core 6 ms one-way)"
    )
    return figure


# ---------------------------------------------------------------------------
# Obs — phase-level latency attribution from causal traces (repro.obs)
# ---------------------------------------------------------------------------


def _phase_note(aggregate) -> str:
    """One-line phase breakdown (p50/p95 ms and share) for figure notes."""
    parts = []
    for phase in aggregate.phases():
        summary = aggregate.summary(phase)
        parts.append(
            f"{phase} {summary.p50_ms:.2f}/{summary.p95_ms:.2f}ms p50/p95 "
            f"({100.0 * aggregate.share(phase):.0f}%)"
        )
    return f"phase breakdown over {aggregate.traces} traced txns: " + ", ".join(parts)


def obs_phase_attribution(txns_per_point: Optional[int] = None) -> TableResult:
    """Per-phase latency table from causal traces (fig10-style workload).

    Not a figure of the paper: this is the observability layer
    (:mod:`repro.obs`) surfaced as a benchmark entry.  A traced
    distributed read-write run (the Figure 10 shape) is attributed
    phase-by-phase by partitioning each transaction's root interval
    (:func:`repro.obs.attribution.phase_breakdown`), so the per-phase sums
    reconcile with the end-to-end latency by construction — the note below
    records the reconciliation error, which a test pins at ±1%.  The trace
    digest is also recorded: same seed ⇒ byte-identical digest, which is
    the regression oracle the CI ``obs-smoke`` job checks.
    """
    from repro.obs.attribution import (
        PhaseAggregate,
        phase_breakdown,
        reconciliation_error,
    )

    txns = scaled(txns_per_point or 200)
    system = build_system(fault_tolerance=1, batch_timeout_ms=10.0, traced=True)
    generator = make_generator(system)
    specs = [generator.distributed_read_write() for _ in range(txns)]
    result = execute_workload(system, specs, concurrency=16, num_clients=4)

    obs = system.env.obs
    aggregate = PhaseAggregate()
    root_durations: List[float] = []
    worst_error = 0.0
    for trace in obs.tracer.completed_traces():
        aggregate.add_trace(trace)
        worst_error = max(worst_error, reconciliation_error(trace))
        root = trace.root
        if root is not None and root.closed:
            root_durations.append(root.duration_ms)
            for phase, ms in phase_breakdown(trace).items():
                result.metrics.record_phase_sample(phase, ms)

    table = TableResult(
        table_id="Obs",
        title="Phase-level latency attribution (distributed read-write)",
        columns=["count", "total ms", "share %", "p50 ms", "p95 ms", "p99 ms"],
    )
    for phase in aggregate.phases():
        summary = aggregate.summary(phase)
        table.set(phase, "count", summary.count)
        table.set(phase, "total ms", round(aggregate.total_ms(phase), 2))
        table.set(phase, "share %", round(100.0 * aggregate.share(phase), 1))
        table.set(phase, "p50 ms", round(summary.p50_ms, 3))
        table.set(phase, "p95 ms", round(summary.p95_ms, 3))
        table.set(phase, "p99 ms", round(summary.p99_ms, 3))
    from repro.metrics.collector import summarize_latencies

    end_to_end = summarize_latencies(root_durations)
    table.set("end-to-end", "count", end_to_end.count)
    table.set("end-to-end", "total ms", round(sum(root_durations), 2))
    table.set("end-to-end", "share %", 100.0)
    table.set("end-to-end", "p50 ms", round(end_to_end.p50_ms, 3))
    table.set("end-to-end", "p95 ms", round(end_to_end.p95_ms, 3))
    table.set("end-to-end", "p99 ms", round(end_to_end.p99_ms, 3))

    attributed = sum(aggregate.total_ms(phase) for phase in aggregate.phases())
    table.notes.append(
        f"{txns} distributed read-write txns, {aggregate.traces} complete traces; "
        f"attributed {attributed:.2f} ms vs end-to-end {sum(root_durations):.2f} ms "
        f"(worst per-trace reconciliation error {100.0 * worst_error:.4f}%)"
    )
    table.notes.append(
        f"{obs.tracer.spans_recorded} spans recorded; trace digest {obs.tracer.digest()}"
    )
    return table


# ---------------------------------------------------------------------------
# SLO — monitoring timeline graded against declarative objectives
# ---------------------------------------------------------------------------


def fig_slo(txns_per_point: Optional[int] = None) -> TableResult:
    """Per-objective SLO grades over the live monitoring timeline.

    Not a figure of the paper: this surfaces the monitoring layer
    (:mod:`repro.obs.monitor`) as a benchmark entry.  A monitored mixed
    run samples windowed metric deltas on simulated time; each default
    objective (:func:`repro.obs.slo.default_slos`) is then graded window
    by window with error-budget burn accounting.  One row per objective;
    the notes carry the rendered SLO table, the node-health summary and
    the trace digest (same seed ⇒ byte-identical digest — monitoring is
    provably neutral, which the CI ``monitor-smoke`` job asserts).
    """
    from repro.common.config import MonitorConfig
    from repro.obs.slo import default_slos, evaluate_slos, render_slo_table

    txns = scaled(txns_per_point or 200)
    system = build_system(fault_tolerance=1, batch_timeout_ms=10.0, traced=True)
    system = TransEdgeSystem(
        system.config.with_updates(
            monitor=MonitorConfig(enabled=True, window_ms=50.0)
        )
    )
    generator = make_generator(system, read_only_fraction=0.4)
    specs = list(generator.mixed_stream(txns))
    execute_workload(system, specs, concurrency=8, num_clients=4)
    system.monitor.flush(system.now)

    samples = system.monitor.timeline.samples()
    results = evaluate_slos(samples, default_slos())

    table = TableResult(
        table_id="SLO",
        title="Service-level objectives over the monitoring timeline",
        columns=["windows", "violations", "budget %", "burn", "worst", "ok"],
    )
    for result in results:
        row = result.spec.name
        table.set(row, "windows", result.windows_evaluated)
        table.set(row, "violations", result.violations)
        table.set(row, "budget %", round(100.0 * result.spec.budget_fraction, 1))
        table.set(row, "burn", round(result.burn_rate, 2))
        worst = result.worst_value
        table.set(row, "worst", None if worst is None else round(worst, 3))
        table.set(row, "ok", "yes" if result.ok else "NO")

    health = system.monitor.health.summary()
    table.notes.append(
        f"{txns} mixed txns over {len(samples)} monitor windows "
        f"({system.config.monitor.window_ms:g}ms); "
        f"{len(health['transitions'])} health transitions, "
        f"terminal states {health['counts'] or '{all healthy}'}"
    )
    table.notes.append(render_slo_table(results))
    table.notes.append(
        f"trace digest {system.env.obs.tracer.digest()} "
        f"(byte-identical with monitoring disabled)"
    )
    return table


# ---------------------------------------------------------------------------
# Perf — hot-path wall-clock baseline (BENCH_perf.json)
# ---------------------------------------------------------------------------


#: Partition sizes swept by the snapshot-read service-time measurement; the
#: largest is 10x the smallest, which is the flatness claim the perf baseline
#: records.
PERF_KEY_COUNTS = (500, 1000, 2000, 5000)


def _mean_call_us(fn: Callable[[], None], reps: int) -> float:
    """Mean wall-clock microseconds per call over ``reps`` calls (1 warm-up)."""
    fn()
    started = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - started) / reps * 1e6


def perf_snapshot_hotpaths(txns_per_point: Optional[int] = None) -> FigureResult:
    """Snapshot-read service time vs partition size, plus verify-cache hit rate.

    Not a figure of the paper: this is the repo's machine-readable perf
    baseline (``BENCH_perf.json``).  It times the two implementations of
    round-2 snapshot-read service against the same state:

    * ``archive prove_at`` — the :class:`MerkleTreeArchive` fast path, which
      resolves the historical tree as a copy-on-write view and proves only the
      requested keys (O(read · log K));
    * ``rebuild (pre-archive path)`` — the original implementation that
      materialises the historical snapshot and rebuilds a full tree per
      request (O(K)).

    The y-values are wall-clock microseconds per served request, so absolute
    numbers are machine-dependent; the CI regression gate therefore compares
    the per-point *speedup* (rebuild / fast, both timed on the same machine)
    against the committed baseline's speedup, with a generous 2x budget.  A
    short end-to-end run also records the shared signature verify-cache hit
    rate in the notes.
    """
    reps_fast = scaled(txns_per_point or 300)
    reps_rebuild = max(5, reps_fast // 10)
    figure = FigureResult(
        figure_id="Perf",
        title="Snapshot-read service time: archive fast path vs full rebuild",
        x_label="partition keys",
        y_label="service time per request (µs, wall-clock)",
    )
    fast_series = figure.add_series("archive prove_at")
    rebuild_series = figure.add_series("rebuild (pre-archive path)")
    batches = 32
    writes_per_batch = 8
    request_size = 4
    for key_count in PERF_KEY_COUNTS:
        rng = random.Random(key_count)
        items = {f"key-{i:06d}": b"value-" + bytes(26) for i in range(key_count)}
        keys = sorted(items)
        store = MultiVersionStore(items)
        merkle = MerkleStore(items, archive=MerkleTreeArchive(max_batches=2 * batches))
        for batch in range(1, batches + 1):
            updates = {
                rng.choice(keys): f"batch-{batch}-{i}".encode()
                for i in range(writes_per_batch)
            }
            store.apply(updates, batch)
            merkle.apply(updates, batch=batch)
        target = batches // 2
        request = [rng.choice(keys) for _ in range(request_size)]

        def serve_fast() -> None:
            tree = merkle.tree_at(target)
            for key in request:
                store.as_of(key, target)
                tree.prove(key)

        def serve_rebuild() -> None:
            tree = MerkleTree(store.snapshot_as_of(target))
            for key in request:
                store.as_of(key, target)
                tree.prove(key)

        fast_series.add(key_count, _mean_call_us(serve_fast, reps_fast))
        rebuild_series.add(key_count, _mean_call_us(serve_rebuild, reps_rebuild))

    # Verify-cache effectiveness, measured on a real (small) deployment under
    # a read-only + distributed-writer mix that exercises the round-2 path.
    # Traced, so the perf baseline also records a phase breakdown note.
    system = build_system(fault_tolerance=1, initial_keys=300, traced=True)
    generator = make_generator(system)
    foreground = [generator.read_only(clusters=5) for _ in range(scaled(20))]
    background = [generator.distributed_read_write() for _ in range(scaled(40))]
    execute_concurrent_workloads(
        system,
        foreground,
        background,
        foreground_protocol="transedge",
        foreground_concurrency=4,
        background_concurrency=6,
        foreground_pacing_ms=8.0,
    )
    counters = system.counters()
    # Sum over every node's private cache — replicas *and* clients (the
    # replica-only totals live in SystemCounters.verify_cache_hits/misses).
    snapshot = system.cache_snapshot(record_event=True)
    cache_stats = {**snapshot["verify_replicas"], **snapshot["verify_clients"]}
    cache_hits = sum(entry["hits"] for entry in cache_stats.values())
    cache_misses = sum(entry["misses"] for entry in cache_stats.values())
    cache_total = max(1, cache_hits + cache_misses)
    figure.notes.append(
        f"verify-cache hit rate {100.0 * cache_hits / cache_total:.1f}% "
        f"({cache_hits} hits / {cache_misses} misses, summed over "
        f"{len(cache_stats)} per-node caches) on a 5-cluster f=1 run"
    )
    figure.notes.append(
        f"snapshot requests served {counters.snapshot_requests_served} "
        f"(fast path {counters.snapshot_fast_path}, rebuilds {counters.snapshot_rebuilds})"
    )
    if snapshot["transport"]:
        figure.notes.append(
            "reliable channel: "
            + ", ".join(
                f"{name}={count}" for name, count in sorted(snapshot["transport"].items())
            )
        )
    figure.notes.append(
        f"{batches} batches of {writes_per_batch} writes archived per point; "
        f"requests read {request_size} keys; {reps_fast}/{reps_rebuild} timed "
        "repetitions (fast/rebuild)"
    )
    aggregate = system.env.obs.phase_aggregate()
    if aggregate.traces:
        figure.notes.append(_phase_note(aggregate))
    return figure


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def ablation_untracked_dependencies(txns_per_point: Optional[int] = None) -> FigureResult:
    """How often would naive (CD-vector-free) reads return inconsistent snapshots?

    The fraction of read-only transactions that need TransEdge's second round
    is exactly the fraction whose round-1 responses were cross-partition
    inconsistent — i.e. the anomaly rate a Merkle-tree-only design (Figure 1)
    would silently expose.
    """
    txns = scaled(txns_per_point or 40)
    background = scaled(60)
    figure = FigureResult(
        figure_id="Ablation A1",
        title="Round-2 rate = inconsistent snapshots prevented by CD vectors",
        x_label="clusters accessed",
        y_label="% of read-only transactions",
    )
    series = figure.add_series("round-2 (anomaly prevented)")
    for clusters in range(2, 6):
        system = build_system(fault_tolerance=1, initial_keys=200)
        generator = make_generator(system)
        foreground = [generator.read_only(clusters=clusters) for _ in range(txns)]
        writers = [generator.distributed_read_write() for _ in range(background)]
        result = execute_concurrent_workloads(
            system, foreground, writers,
            foreground_protocol="transedge",
            foreground_concurrency=4,
            background_concurrency=6,
            foreground_pacing_ms=8.0,
        )
        series.add(clusters, 100.0 * result.metrics.second_round_fraction("read-only"))
    return figure


def ablation_round2_vs_write_rate(txns_per_point: Optional[int] = None) -> FigureResult:
    """Second-round frequency as the concurrent write rate grows."""
    txns = scaled(txns_per_point or 40)
    figure = FigureResult(
        figure_id="Ablation A2",
        title="Second-round frequency vs concurrent distributed writers",
        x_label="concurrent writer processes",
        y_label="% of read-only transactions needing round 2",
    )
    series = figure.add_series("TransEdge")
    for writers in (0, 2, 4, 8):
        system = build_system(fault_tolerance=1, initial_keys=200)
        generator = make_generator(system)
        foreground = [generator.read_only(clusters=5) for _ in range(txns)]
        background = [generator.distributed_read_write() for _ in range(scaled(20) * writers)]
        result = execute_concurrent_workloads(
            system, foreground, background,
            foreground_protocol="transedge",
            foreground_concurrency=4,
            background_concurrency=max(1, writers),
            foreground_pacing_ms=8.0,
        )
        series.add(writers, 100.0 * result.metrics.second_round_fraction("read-only"))
    return figure


def chaos_sweep(seeds: Optional[int] = None) -> TableResult:
    """Seeded chaos runs judged by the full invariant oracle suite.

    Not a figure of the paper: this is the chaos engine
    (:mod:`repro.chaos`) surfaced as a benchmark entry, so the ``--json``
    pipeline records, per seed, how much work the generated scenario did
    (commits, verified reads, crash/restart cycles, simulator events) and —
    the headline number — ``oracle_failures = 0``.  The CI ``chaos-smoke``
    job runs a wider sweep through the CLI; this entry keeps a small fixed
    window in the benchmark trajectory.
    """
    from repro.chaos import run_seed

    count = seeds if seeds is not None else scaled(4)
    table = TableResult(
        table_id="Chaos",
        title="Deterministic chaos runs: all invariant oracles must pass",
        columns=list(range(count)),
    )
    failures_total = 0
    for seed in range(count):
        report = run_seed(seed)
        failures_total += len(report.failures)
        table.set("oracle_failures", seed, len(report.failures))
        table.set("commits", seed, report.committed)
        table.set("verified_reads", seed, report.read_only_recorded)
        table.set("crashes", seed, report.crashes)
        table.set("restarts", seed, report.restarts)
        table.set("fault_events", seed, report.fault_events)
        table.set("sim_events", seed, report.events_processed)
        for failure in report.failures:
            table.notes.append(f"seed {seed}: [{failure.oracle}] {failure.description}")
    table.notes.append(
        f"{count} seeds, {failures_total} oracle failure(s); "
        "replay any seed with: python -m repro.chaos --seed N"
    )
    return table


#: Registry used by the CLI and the pytest-benchmark wrappers.
EXPERIMENTS = {
    "fig4": fig4_read_only_latency,
    "fig5": fig5_read_only_rounds,
    "fig6": fig6_read_only_throughput,
    "fig7": fig7_long_read_only,
    "fig8": fig8_read_only_latency_sweep,
    "fig9": fig9_local_throughput,
    "fig10": fig10_distributed_latency,
    "fig11": fig11_distributed_throughput,
    "fig12": fig12_distributed_latency_sweep,
    "fig13": fig13_abort_rates,
    "fig14": fig14_mix_throughput,
    "fig15": fig15_fault_tolerance,
    "fig16": fig16_crash_recovery,
    "fig_edge": fig_edge,
    "obs": obs_phase_attribution,
    "slo": fig_slo,
    "perf": perf_snapshot_hotpaths,
    "chaos": chaos_sweep,
    "table1": table1_read_only_interference,
    "ablation-untracked": ablation_untracked_dependencies,
    "ablation-round2": ablation_round2_vs_write_rate,
}
