"""PBFT-style consensus engine embedded in each cluster replica.

The engine orders opaque proposals (TransEdge batches) within one cluster.
It is deliberately structured as a passive component owned by a
:class:`~repro.simnet.node.SimNode`: the owning replica forwards consensus
messages to :meth:`PbftEngine.handle` and the engine calls back into an
application object for proposal validation and delivery.  This mirrors how
TransEdge layers its transaction-processing logic on top of BFT-SMaRt.

Protocol per instance (sequence number):

1. the leader of the current view signs and broadcasts ``PrePrepare`` with
   the proposal and its digest;
2. every replica that accepts the proposal (signature valid, sender is the
   view's leader, application validation passes) broadcasts a signed
   ``Prepare`` for the digest;
3. on a prepare quorum of ``2f + 1`` (counting the leader's pre-prepare as
   its prepare), replicas broadcast ``Commit``;
4. on a commit quorum of ``2f + 1``, the value is decided; the collected
   commit signatures are re-issued over the decision payload and form the
   :class:`~repro.bft.quorum.CommitCertificate` stored in the log and shared
   with other clusters and clients.

A lightweight view change replaces a leader that stops making progress:
replicas that suspect the leader broadcast ``ViewChange`` for view ``v + 1``
and move to the new view once ``2f + 1`` replicas agree; in-flight instances
of the old view are abandoned and it is up to the application (the TransEdge
partition leader) to re-propose its pending batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.common.errors import ConsensusError, NotLeaderError
from repro.common.ids import PartitionId, ReplicaId
from repro.crypto.signatures import KeyRegistry
from repro.bft.messages import (
    BftMessage,
    CertificateRebroadcast,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    ViewChange,
)
from repro.bft.quorum import CommitCertificate, ViewChangeCertificate, VoteTracker

#: Consecutive certificate-rebroadcast rounds without delivery progress
#: before the engine stands down (bounds simulation work when a cluster has
#: genuinely lost liveness; view change and state transfer take over).
_REBROADCAST_ROUND_LIMIT = 10


class ConsensusApplication(Protocol):
    """Callbacks the owning replica provides to the engine."""

    def validate_proposal(self, seq: int, proposal: object) -> bool:
        """Return True when the proposal is acceptable to this replica."""
        ...  # pragma: no cover - protocol definition

    def deliver(self, seq: int, proposal: object, certificate: CommitCertificate) -> None:
        """Apply a decided proposal (called in strict sequence order)."""
        ...  # pragma: no cover - protocol definition

    def on_view_change(self, new_view: int, new_leader: ReplicaId) -> None:
        """Notification that the cluster moved to a new view/leader."""
        ...  # pragma: no cover - protocol definition


@dataclass
class _Instance:
    """Book-keeping for one consensus sequence number."""

    seq: int
    view: int
    digest: bytes = b""
    proposal: object = None
    pre_prepared: bool = False
    prepares: VoteTracker = field(default_factory=VoteTracker)
    commits: VoteTracker = field(default_factory=VoteTracker)
    prepare_sent: bool = False
    commit_sent: bool = False
    decided: bool = False


class PbftEngine:
    """One cluster member's view of the intra-cluster ordering protocol."""

    def __init__(
        self,
        owner,  # SimNode providing .node_id, .send, .broadcast, .signer, .env
        partition: PartitionId,
        members: Sequence[ReplicaId],
        fault_tolerance: int,
        application: ConsensusApplication,
        digest_fn: Callable[[object], bytes],
    ) -> None:
        self._owner = owner
        self._partition = partition
        self._members: Tuple[ReplicaId, ...] = tuple(members)
        self._f = fault_tolerance
        self._application = application
        self._digest_fn = digest_fn
        # Verify through the owner's per-node cache when it has one (every
        # SimNode does); the raw registry is the fallback for bare owners.
        self._registry: KeyRegistry = getattr(owner, "verifier", None) or owner.env.registry

        self.view = 0
        self._instances: Dict[int, _Instance] = {}
        self._next_proposal_seq = 0
        self._next_deliver_seq = 0
        self._pending_deliveries: Dict[int, Tuple[object, CommitCertificate]] = {}
        self._buffered_pre_prepares: Dict[int, Tuple[PrePrepare, object]] = {}
        self._view_change_votes: Dict[int, VoteTracker] = {}
        # last_delivered advertised by each view-change vote, kept alongside
        # the tracker so a quorum can be re-issued as a transferable
        # :class:`ViewChangeCertificate`.
        self._view_change_tips: Dict[int, Dict[str, int]] = {}
        #: Proof of how this replica reached its current view (None at view 0).
        self.view_certificate: Optional[ViewChangeCertificate] = None
        self.decided_count = 0

        # Certificate-rebroadcast fallback (ReliabilityConfig): while this
        # replica is stalled behind a delivery gap it periodically gossips
        # its highest decided certificate; peers that are ahead answer with
        # the instance it needs next.  Disabled (timer never armed) when the
        # owner has no environment or reliability is off.
        env = getattr(owner, "env", None)
        env_config = getattr(env, "config", None)
        self._reliability = getattr(env_config, "reliability", None)
        self._rebroadcast_timer = None
        self._rebroadcast_rounds = 0
        self._rebroadcast_marker = -1
        self.certificates_rebroadcast = 0

        if len(self._members) < 3 * self._f + 1:
            raise ConsensusError(
                f"cluster of {len(self._members)} members cannot tolerate f={self._f}"
            )

    # -- topology helpers ----------------------------------------------------

    @property
    def members(self) -> Tuple[ReplicaId, ...]:
        return self._members

    @property
    def quorum(self) -> int:
        return 2 * self._f + 1

    def leader_of_view(self, view: int) -> ReplicaId:
        return self._members[view % len(self._members)]

    @property
    def current_leader(self) -> ReplicaId:
        return self.leader_of_view(self.view)

    @property
    def is_leader(self) -> bool:
        return self._owner.node_id == self.current_leader

    @property
    def last_delivered_seq(self) -> int:
        return self._next_deliver_seq - 1

    # -- proposing -------------------------------------------------------------

    def propose(self, proposal: object) -> int:
        """Leader entry point: start consensus on ``proposal``.

        Returns the sequence number assigned to the proposal.
        """
        if not self.is_leader:
            raise NotLeaderError(
                f"{self._owner.node_id} is not the leader of view {self.view}"
            )
        seq = max(self._next_proposal_seq, self._next_deliver_seq)
        self._next_proposal_seq = seq + 1
        digest = self._digest_fn(proposal)
        message = PrePrepare(view=self.view, seq=seq, digest=digest, proposal=proposal)
        message.signature = self._owner.signer.sign(message.signing_payload())
        self._owner.broadcast(self._other_members(), message)
        # The leader processes its own pre-prepare locally (no self-message).
        self._accept_pre_prepare(message, self._owner.node_id)
        return seq

    def re_propose_after_view_change(self, proposal: object) -> int:
        """Propose again in the new view (used after a leader change)."""
        self._next_proposal_seq = max(self._next_proposal_seq, self._next_deliver_seq)
        return self.propose(proposal)

    # -- message handling -------------------------------------------------------

    def handle(self, message: BftMessage, src) -> bool:
        """Process a consensus message; returns False for non-consensus types."""
        if isinstance(message, PrePrepare):
            self._on_pre_prepare(message, src)
        elif isinstance(message, Prepare):
            self._on_prepare(message, src)
        elif isinstance(message, Commit):
            self._on_commit(message, src)
        elif isinstance(message, CertificateRebroadcast):
            self._on_certificate_rebroadcast(message, src)
        elif isinstance(message, ViewChange):
            self._on_view_change_msg(message, src)
        elif isinstance(message, NewView):
            self._on_new_view(message, src)
        else:
            return False
        self._maybe_arm_rebroadcast()
        return True

    # -- pre-prepare -------------------------------------------------------------

    def _on_pre_prepare(self, message: PrePrepare, src: ReplicaId) -> None:
        if message.view != self.view:
            return
        if src != self.leader_of_view(message.view):
            return  # only the leader of the view may propose
        if not self._verify(message, src):
            return
        if message.digest != self._digest_fn(message.proposal):
            return  # digest does not match the carried proposal
        self._accept_pre_prepare(message, src)

    def _accept_pre_prepare(self, message: PrePrepare, src) -> None:
        if message.seq > self._next_deliver_seq:
            # Batches are validated against the delivered prefix (the paper
            # writes batches one-by-one); hold this proposal until its
            # predecessor has been delivered locally.
            self._buffered_pre_prepares[message.seq] = (message, src)
            return
        instance = self._instance(message.seq, message.view)
        if instance.pre_prepared:
            return
        if not self._application.validate_proposal(message.seq, message.proposal):
            return
        instance.pre_prepared = True
        instance.digest = message.digest
        instance.proposal = message.proposal
        # The leader's pre-prepare doubles as its prepare vote.
        leader_prepare = Prepare(view=message.view, seq=message.seq, digest=message.digest)
        leader_signature = (
            message.signature
            if src != self._owner.node_id
            else self._owner.signer.sign(leader_prepare.signing_payload())
        )
        instance.prepares.add(str(src), leader_signature)
        self._send_prepare(instance)
        self._maybe_advance(instance)

    def _send_prepare(self, instance: _Instance) -> None:
        if instance.prepare_sent:
            return
        instance.prepare_sent = True
        if self._owner.node_id == self.leader_of_view(instance.view):
            return  # leader's pre-prepare already counted as its prepare
        prepare = Prepare(view=instance.view, seq=instance.seq, digest=instance.digest)
        prepare.signature = self._owner.signer.sign(prepare.signing_payload())
        self._owner.broadcast(self._other_members(), prepare)
        instance.prepares.add(str(self._owner.node_id), prepare.signature)
        self._maybe_advance(instance)

    # -- prepare -----------------------------------------------------------------

    def _on_prepare(self, message: Prepare, src: ReplicaId) -> None:
        if message.view != self.view or not self._is_member(src):
            return
        if not self._verify(message, src):
            return
        instance = self._instance(message.seq, message.view)
        if instance.digest and message.digest != instance.digest:
            return
        instance.prepares.add(str(src), message.signature)
        self._maybe_advance(instance)

    # -- commit ------------------------------------------------------------------

    def _on_commit(self, message: Commit, src: ReplicaId) -> None:
        if message.view != self.view or not self._is_member(src):
            return
        if not self._verify(message, src):
            return
        instance = self._instance(message.seq, message.view)
        if instance.digest and message.digest != instance.digest:
            return
        instance.commits.add(str(src), message.signature)
        self._maybe_advance(instance)

    def _maybe_advance(self, instance: _Instance) -> None:
        if (
            instance.pre_prepared
            and not instance.commit_sent
            and instance.prepares.reached(self.quorum)
        ):
            instance.commit_sent = True
            commit = Commit(view=instance.view, seq=instance.seq, digest=instance.digest)
            commit.signature = self._owner.signer.sign(commit.signing_payload())
            self._owner.broadcast(self._other_members(), commit)
            instance.commits.add(str(self._owner.node_id), commit.signature)
        if (
            instance.pre_prepared
            and not instance.decided
            and instance.commits.reached(self.quorum)
        ):
            instance.decided = True
            self.decided_count += 1
            certificate = self._build_certificate(instance)
            self._pending_deliveries[instance.seq] = (instance.proposal, certificate)
            self._deliver_ready()

    def _build_certificate(self, instance: _Instance) -> CommitCertificate:
        # The 2f + 1 commit votes collected while deciding are transferable
        # proof of agreement: their signatures cover exactly the certificate
        # payload, so they are reused as-is (the paper's "f + 1 signatures
        # collected during consensus are added to the batch", with margin).
        return CommitCertificate(
            partition=self._partition,
            view=instance.view,
            seq=instance.seq,
            digest=instance.digest,
            signatures=instance.commits.signatures(),
        )

    def _deliver_ready(self) -> None:
        while self._next_deliver_seq in self._pending_deliveries:
            seq = self._next_deliver_seq
            proposal, certificate = self._pending_deliveries.pop(seq)
            self._next_deliver_seq += 1
            self._application.deliver(seq, proposal, certificate)
        buffered = self._buffered_pre_prepares.pop(self._next_deliver_seq, None)
        if buffered is not None:
            message, src = buffered
            if message.view == self.view:
                self._accept_pre_prepare(message, src)

    # -- checkpoint / recovery hooks -------------------------------------------------

    def install_checkpoint(self, last_delivered: int) -> None:
        """Fast-forward delivery past state installed out of band.

        A recovering replica that restored a checkpoint image (and possibly
        replayed a log suffix) through :mod:`repro.recovery` did not run these
        instances through consensus; this realigns the engine so that the next
        live instance it participates in is ``last_delivered + 1``.  Votes
        already collected for newer instances are kept, so an instance whose
        consensus messages partly arrived during recovery can still decide.
        """
        if last_delivered < self._next_deliver_seq - 1:
            return
        self._next_deliver_seq = last_delivered + 1
        self._next_proposal_seq = max(self._next_proposal_seq, self._next_deliver_seq)
        self.compact_below(self._next_deliver_seq)
        for seq in [s for s in self._pending_deliveries if s <= last_delivered]:
            del self._pending_deliveries[seq]
        self._deliver_ready()

    def has_pending_work(self) -> bool:
        """Evidence that this cluster should be making progress but is not.

        True while any current-view instance has started (a pre-prepare was
        accepted, or prepare/commit votes arrived for an instance whose
        proposal this replica never saw), a pre-prepare is buffered behind a
        delivery gap, or a decided value waits on an undelivered predecessor.
        The replica's progress monitor arms its leader-suspicion timer on
        exactly this predicate — votes spread the evidence, so a leader that
        crashed after reaching only one follower is still suspected by a
        quorum (that follower's prepares create instances everywhere).
        """
        if self._buffered_pre_prepares or self._pending_deliveries:
            return True
        for seq, instance in self._instances.items():
            if seq < self._next_deliver_seq or instance.decided:
                continue
            if instance.view != self.view:
                continue
            if (
                instance.pre_prepared
                or instance.prepares.count() > 0
                or instance.commits.count() > 0
            ):
                return True
        return False

    def is_behind(self) -> bool:
        """True when the cluster demonstrably progressed past this replica.

        Evidence: a pre-prepare buffered behind a delivery gap (the live
        leader proposed an instance whose predecessor this replica never
        delivered), a commit quorum collected for an instance whose
        proposal this replica never saw, or a decided certificate parked
        in ``_pending_deliveries`` waiting for an earlier instance this
        replica missed (anything still parked is strictly beyond
        ``_next_deliver_seq`` — consecutive entries deliver immediately —
        and its certificate was quorum-verified on arrival, so it is
        unforgeable proof the cluster decided past us).  All of these
        mean the quorum moved on without us — typically because instances
        were decided while this replica was crashed or mid-recovery — and
        no amount of suspecting the (healthy, progressing) leader will
        close the gap; only state transfer will.  The progress monitor
        uses this to pick catch-up recovery over a futile view-change
        vote.  The pending-deliveries clause matters most when the
        stalled replica is itself the leader (elected by a view change
        while it was crashed): peers that delivered the missing instance
        may have no commit certificate left to re-serve, so certificate
        rebroadcast cannot close the gap and catch-up is the only exit.
        """
        if self._buffered_pre_prepares or self._pending_deliveries:
            return True
        for seq, instance in self._instances.items():
            if seq < self._next_deliver_seq or instance.decided:
                continue
            if not instance.pre_prepared and instance.commits.reached(self.quorum):
                return True
        return False

    def compact_below(self, seq: int) -> None:
        """Drop bookkeeping for instances below ``seq`` (stable-checkpoint GC).

        Without compaction every decided instance lives forever; the
        checkpoint manager calls this when a checkpoint becomes stable so
        that engine memory, like the log, stays bounded by the checkpoint
        interval.
        """
        self._instances = {s: inst for s, inst in self._instances.items() if s >= seq}
        for buffered_seq in [s for s in self._buffered_pre_prepares if s < seq]:
            del self._buffered_pre_prepares[buffered_seq]

    # -- certificate rebroadcast (reliable-delivery fallback) -----------------------

    def _stalled_behind_gap(self) -> bool:
        """True while deliveries are wedged on an instance this replica missed."""
        return bool(self._buffered_pre_prepares or self._pending_deliveries) or self.is_behind()

    def _maybe_arm_rebroadcast(self) -> None:
        if self._reliability is None or not self._reliability.enabled:
            return
        if self._rebroadcast_timer is not None or not self._stalled_behind_gap():
            return
        schedule = getattr(self._owner, "schedule", None)
        if schedule is None:
            return
        self._rebroadcast_timer = schedule(
            self._reliability.rebroadcast_interval_ms, self._on_rebroadcast_timer
        )

    def _on_rebroadcast_timer(self) -> None:
        self._rebroadcast_timer = None
        if not self._stalled_behind_gap():
            self._rebroadcast_rounds = 0
            return
        if self._next_deliver_seq > self._rebroadcast_marker:
            # Delivery progressed since the last round; start counting afresh.
            self._rebroadcast_rounds = 0
        self._rebroadcast_marker = self._next_deliver_seq
        if self._rebroadcast_rounds >= _REBROADCAST_ROUND_LIMIT:
            return  # stand down; view change / state transfer take over
        self._rebroadcast_rounds += 1
        message = self._make_rebroadcast()
        message.signature = self._owner.signer.sign(message.signing_payload())
        self.certificates_rebroadcast += 1
        self._owner.broadcast(self._other_members(), message)
        self._maybe_arm_rebroadcast()

    def _make_rebroadcast(self) -> CertificateRebroadcast:
        """Build gossip around this replica's highest decided instance."""
        best_seq = -1
        proposal = None
        certificate: Optional[CommitCertificate] = None
        for seq in self._pending_deliveries:
            if seq > best_seq:
                best_seq = seq
                proposal, certificate = self._pending_deliveries[seq]
        for seq, instance in self._instances.items():
            if (
                seq > best_seq
                and instance.decided
                and instance.proposal is not None
                and instance.commits.reached(self.quorum)
            ):
                best_seq = seq
                proposal = instance.proposal
                certificate = self._build_certificate(instance)
        return CertificateRebroadcast(
            view=self.view,
            seq=best_seq,
            digest=certificate.digest if certificate is not None else b"",
            proposal=proposal,
            certificate=certificate,
            last_delivered=self.last_delivered_seq,
        )

    def _on_certificate_rebroadcast(self, message: CertificateRebroadcast, src: ReplicaId) -> None:
        if not self._is_member(src):
            return
        if not self._verify(message, src):
            return
        self._adopt_certificate(message.seq, message.proposal, message.certificate)
        if message.last_delivered >= self.last_delivered_seq:
            return
        # The sender is behind us: answer with the instance it needs next
        # (if checkpoint GC has not compacted it away yet — past that,
        # catch-up state transfer is the designed fallback).
        needed = message.last_delivered + 1
        instance = self._instances.get(needed)
        if (
            instance is None
            or not instance.decided
            or instance.proposal is None
            or not instance.commits.reached(self.quorum)
        ):
            return
        reply = CertificateRebroadcast(
            view=self.view,
            seq=needed,
            digest=instance.digest,
            proposal=instance.proposal,
            certificate=self._build_certificate(instance),
            last_delivered=self.last_delivered_seq,
        )
        reply.signature = self._owner.signer.sign(reply.signing_payload())
        self.certificates_rebroadcast += 1
        self._owner.send(src, reply)

    def _adopt_certificate(
        self,
        seq: int,
        proposal: object,
        certificate: Optional[CommitCertificate],
    ) -> None:
        """Accept a gossiped decision after full verification."""
        if certificate is None or proposal is None or seq < 0:
            return
        if seq < self._next_deliver_seq or seq in self._pending_deliveries:
            return
        if certificate.partition != self._partition or certificate.seq != seq:
            return
        if certificate.digest != self._digest_fn(proposal):
            return
        if not certificate.verify(self._registry, self._members, self.quorum):
            return
        instance = self._instances.get(seq)
        if instance is not None and instance.decided:
            return
        if instance is None:
            instance = _Instance(seq=seq, view=certificate.view)
            self._instances[seq] = instance
        instance.digest = certificate.digest
        instance.proposal = proposal
        instance.pre_prepared = True
        instance.prepare_sent = True
        instance.commit_sent = True
        instance.decided = True
        self.decided_count += 1
        self._pending_deliveries[seq] = (proposal, certificate)
        self._deliver_ready()

    # -- view change ---------------------------------------------------------------

    def suspect_leader(self) -> None:
        """Vote to replace the current leader (progress timeout expired)."""
        new_view = self.view + 1
        message = ViewChange(view=new_view, last_delivered=self.last_delivered_seq)
        message.signature = self._owner.signer.sign(message.signing_payload())
        self._owner.broadcast(self._other_members(), message)
        self._record_view_change_vote(
            new_view, str(self._owner.node_id), message.signature, self.last_delivered_seq
        )

    def _on_view_change_msg(self, message: ViewChange, src: ReplicaId) -> None:
        if message.view <= self.view or not self._is_member(src):
            return
        if not self._verify(message, src):
            return
        self._record_view_change_vote(
            message.view, str(src), message.signature, message.last_delivered
        )

    def _record_view_change_vote(
        self, new_view: int, sender: str, signature, last_delivered: int
    ) -> None:
        tracker = self._view_change_votes.setdefault(new_view, VoteTracker())
        if tracker.add(sender, signature):
            self._view_change_tips.setdefault(new_view, {})[sender] = last_delivered
        if tracker.reached(self.quorum) and new_view > self.view:
            certificate = self._certificate_from_votes(new_view)
            self.view_certificate = certificate
            self._enter_view(new_view)
            if self.is_leader:
                announce = NewView(view=new_view, votes=certificate.votes)
                announce.signature = self._owner.signer.sign(announce.signing_payload())
                self._owner.broadcast(self._other_members(), announce)

    def _certificate_from_votes(self, view: int) -> ViewChangeCertificate:
        tracker = self._view_change_votes[view]
        tips = self._view_change_tips.get(view, {})
        votes = tuple(
            (tips.get(sender, -1), signature)
            for sender, signature in zip(tracker.voters(), tracker.signatures())
        )
        return ViewChangeCertificate(view=view, votes=votes)

    def _on_new_view(self, message: NewView, src: ReplicaId) -> None:
        if message.view <= self.view or not self._is_member(src):
            return
        if src != self.leader_of_view(message.view):
            return
        if not self._verify(message, src):
            return
        # The announcement alone is not proof: the carried view-change votes
        # must form a real quorum certificate for this view.
        certificate = ViewChangeCertificate(view=message.view, votes=tuple(message.votes))
        if not certificate.verify(self._registry, self._members, self.quorum):
            return
        self.view_certificate = certificate
        self._enter_view(message.view)

    def adopt_view(
        self, view: int, certificate: Optional[ViewChangeCertificate]
    ) -> bool:
        """Jump to ``view`` on transferable proof (state-transfer rejoin).

        A recovering replica restarts in view 0; the peer that answered its
        state transfer advertises the cluster's current view together with
        the quorum certificate that elected it.  Verifying that certificate
        lets the rejoiner follow the live leader immediately — accepting its
        very next ``PrePrepare`` — instead of ignoring proposals until the
        next organic view change.  Returns True when the view was adopted
        (or already current).
        """
        if view < self.view:
            return False
        if view == self.view:
            return True
        if certificate is None or certificate.view != view:
            return False
        if not certificate.verify(self._registry, self._members, self.quorum):
            return False
        self.view_certificate = certificate
        self._enter_view(view)
        return True

    def _enter_view(self, new_view: int) -> None:
        self.view = new_view
        # Abandon undecided instances of older views; the application
        # re-proposes whatever it still needs ordered.
        self._instances = {
            seq: inst for seq, inst in self._instances.items() if inst.decided
        }
        self._buffered_pre_prepares.clear()
        self._next_proposal_seq = self._next_deliver_seq
        # Drop vote bookkeeping for views the cluster has moved past; the
        # current view's certificate is retained in ``view_certificate``.
        for view in [v for v in self._view_change_votes if v <= new_view]:
            del self._view_change_votes[view]
            self._view_change_tips.pop(view, None)
        self._application.on_view_change(new_view, self.current_leader)

    # -- helpers --------------------------------------------------------------------

    def _instance(self, seq: int, view: int) -> _Instance:
        instance = self._instances.get(seq)
        if instance is None or instance.view != view:
            instance = _Instance(seq=seq, view=view)
            self._instances[seq] = instance
        return instance

    def _other_members(self) -> List[ReplicaId]:
        return [member for member in self._members if member != self._owner.node_id]

    def _is_member(self, node: ReplicaId) -> bool:
        return node in self._members

    def _verify(self, message: BftMessage, src) -> bool:
        if message.signature is None:
            return False
        if message.signature.signer != str(src):
            return False
        # The registry memoizes verification verdicts (keyed by a digest it
        # computes itself from the received payload — never trusted from the
        # message), so repeated checks of the same vote skip the MAC/RSA work.
        return self._registry.verify(message.signing_payload(), message.signature)
