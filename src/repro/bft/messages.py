"""Messages of the intra-cluster BFT agreement protocol.

The cluster-internal ordering protocol follows the classic PBFT message
pattern that BFT-SMaRt also implements: the leader broadcasts a signed
``PrePrepare`` carrying the proposal (a TransEdge batch), replicas exchange
``Prepare`` and ``Commit`` votes on the proposal digest, and an instance is
decided once a ``2f + 1`` commit quorum exists.  All messages are signed by
their sender; votes only ever reference the proposal digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bft.quorum import CommitCertificate, checkpoint_payload, view_change_payload
from repro.crypto.signatures import Signature
from repro.simnet.messages import Message


@dataclass
class BftMessage(Message):
    """Common fields of every consensus message.

    Note: nothing verification-related is ever memoized *on* a message.
    Messages travel by reference and their contents are sender-controlled, so
    any carried digest could be poisoned to alias a different payload in the
    verify cache; verifiers (the :class:`~repro.crypto.signatures.KeyRegistry`)
    always canonicalise what they actually received.
    """

    view: int = 0
    seq: int = 0
    signature: Optional[Signature] = field(default=None, kw_only=True)

    def signing_payload(self) -> object:
        """Canonical payload covered by the sender's signature."""
        raise NotImplementedError


@dataclass
class PrePrepare(BftMessage):
    """Leader's proposal for sequence number ``seq`` in ``view``."""

    digest: bytes = b""
    proposal: object = None

    def signing_payload(self) -> object:
        return ["pre-prepare", self.view, self.seq, self.digest]


@dataclass
class Prepare(BftMessage):
    """A replica's vote that it received the leader's proposal."""

    digest: bytes = b""

    def signing_payload(self) -> object:
        return ["prepare", self.view, self.seq, self.digest]


@dataclass
class Commit(BftMessage):
    """A replica's vote that a prepare quorum exists for the proposal."""

    digest: bytes = b""

    def signing_payload(self) -> object:
        return ["commit", self.view, self.seq, self.digest]


@dataclass
class CheckpointVote(BftMessage):
    """A replica's vote that its partition state at ``seq`` digests to ``digest``.

    Periodic checkpoints follow the classic PBFT pattern: every
    ``CheckpointConfig.interval_batches`` delivered batches each replica
    digests a restorable image of its state and broadcasts this vote.
    ``2f + 1`` matching votes form a checkpoint certificate that makes the
    checkpoint *stable*, allowing the SMR log below it to be truncated and
    the image to be served to recovering replicas (see ``repro.recovery``).
    Checkpoints are view-independent, so ``view`` is not signed.
    """

    digest: bytes = b""

    def signing_payload(self) -> object:
        return checkpoint_payload(self.seq, self.digest)


@dataclass
class CertificateRebroadcast(BftMessage):
    """Periodic catch-up gossip for instances a peer may have missed entirely.

    A replica stalled behind a delivery gap broadcasts its highest decided
    instance — proposal, digest and transferable
    :class:`~repro.bft.quorum.CommitCertificate` — together with its own
    delivery tip (``last_delivered``).  A peer that is *ahead* answers with
    the same message shaped around the instance the sender needs next, which
    lets a replica that missed a whole instance (e.g. past the reliable
    channel's abandonment cap) converge one instance per round without a
    full state transfer.  The carried certificate is self-certifying:
    receivers verify the digest against the proposal and the certificate
    against the cluster's quorum before adopting anything; the outer
    signature merely authenticates the gossiping sender.
    """

    digest: bytes = b""
    proposal: object = None
    certificate: Optional[CommitCertificate] = None
    last_delivered: int = -1

    def signing_payload(self) -> object:
        return ["cert-rebroadcast", self.view, self.seq, self.digest, self.last_delivered]


@dataclass
class ViewChange(BftMessage):
    """A replica's declaration that the current leader is suspected faulty.

    ``view`` carries the *new* view the sender wants to move to and
    ``last_delivered`` the highest sequence number it has delivered, which the
    new leader uses to know where to resume proposing.
    """

    last_delivered: int = -1

    def signing_payload(self) -> object:
        return view_change_payload(self.view, self.last_delivered)


@dataclass
class NewView(BftMessage):
    """The new leader's announcement that the view change is complete.

    ``votes`` carries the ``(last_delivered, signature)`` view-change votes
    that elected this view (a :class:`~repro.bft.quorum.ViewChangeCertificate`
    in wire form; the supporters are the votes' signers).  Receivers verify
    the votes rather than trusting the announcement: a byzantine replica
    whose turn the rotation has not reached cannot move the cluster to "its"
    view without ``2f + 1`` real votes, and every replica that follows the
    announcement ends up holding the same transferable certificate it can
    later hand to rejoining peers.
    """

    votes: Tuple[Tuple[int, Signature], ...] = ()

    def signing_payload(self) -> object:
        return ["new-view", self.view]
