"""BFT state-machine-replication substrate (PBFT-style, per cluster)."""

from repro.bft.byzantine import (
    ByzantineBehaviour,
    make_equivocating_leader,
    make_receive_blind,
    make_silent,
    make_value_tamperer,
    make_vote_forger,
)
from repro.bft.engine import ConsensusApplication, PbftEngine
from repro.bft.log import LogEntry, ReplicatedLog
from repro.bft.messages import (
    BftMessage,
    Commit,
    NewView,
    PrePrepare,
    Prepare,
    ViewChange,
)
from repro.bft.quorum import (
    CommitCertificate,
    ViewChangeCertificate,
    VoteTracker,
    certificate_payload,
    view_change_payload,
)

__all__ = [
    "BftMessage",
    "ByzantineBehaviour",
    "Commit",
    "CommitCertificate",
    "ConsensusApplication",
    "LogEntry",
    "NewView",
    "PbftEngine",
    "PrePrepare",
    "Prepare",
    "ReplicatedLog",
    "ViewChange",
    "ViewChangeCertificate",
    "VoteTracker",
    "certificate_payload",
    "view_change_payload",
    "make_equivocating_leader",
    "make_receive_blind",
    "make_silent",
    "make_value_tamperer",
    "make_vote_forger",
]
