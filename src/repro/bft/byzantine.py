"""Byzantine behaviour library for fault-injection tests and experiments.

TransEdge's guarantees are only interesting if the reproduction can actually
exercise misbehaving nodes.  This module offers ready-made behaviours at the
consensus/transport level, built on top of the network fault-injection hooks:

* :func:`make_silent` — a crashed (fail-stop) replica: all of its outgoing
  traffic is dropped.
* :func:`make_equivocating_leader` — a leader that sends conflicting
  proposals to different halves of its cluster; honest replicas never reach a
  quorum on either proposal, so nothing unsafe is delivered.
* :func:`make_vote_forger` — a replica that tampers with its own votes'
  digests; honest replicas discard them during signature/digest checks.
* :func:`make_value_tamperer` — corrupts a chosen field of application-level
  responses (used to show read-only clients detect forged values through
  Merkle proofs).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Type

from repro.common.ids import NodeId, ReplicaId
from repro.simnet.faults import FaultInjector, FaultRule
from repro.simnet.messages import Message
from repro.bft.messages import Commit, PrePrepare, Prepare


@dataclass
class ByzantineBehaviour:
    """Handle describing an installed behaviour (useful for assertions)."""

    description: str
    node: NodeId
    injector: FaultInjector


def make_silent(injector: FaultInjector, node: NodeId) -> ByzantineBehaviour:
    """Make ``node`` fail-stop: none of its messages reach anyone."""
    injector.drop(FaultRule(src=node))
    return ByzantineBehaviour(description="silent", node=node, injector=injector)


def make_receive_blind(injector: FaultInjector, node: NodeId) -> ByzantineBehaviour:
    """Make ``node`` deaf: it never receives anything (network partition)."""
    injector.drop(FaultRule(dst=node))
    return ByzantineBehaviour(description="receive-blind", node=node, injector=injector)


def make_equivocating_leader(
    injector: FaultInjector,
    leader: ReplicaId,
    confused_replicas: List[ReplicaId],
    corrupt_proposal: Callable[[object], object],
) -> ByzantineBehaviour:
    """Send a different proposal to ``confused_replicas`` than to the rest.

    ``corrupt_proposal`` receives a deep copy of the proposal carried by the
    leader's ``PrePrepare`` and returns the conflicting proposal delivered to
    the confused replicas.  The digest is left untouched, so honest replicas
    detect the mismatch and refuse to prepare.
    """
    confused = set(confused_replicas)

    def mutate(message: Message) -> Message:
        assert isinstance(message, PrePrepare)
        message.proposal = corrupt_proposal(copy.deepcopy(message.proposal))
        return message

    for replica in sorted(confused):
        injector.tamper(FaultRule(src=leader, dst=replica, message_type=PrePrepare), mutate)
    return ByzantineBehaviour(description="equivocating-leader", node=leader, injector=injector)


def make_vote_forger(
    injector: FaultInjector,
    replica: ReplicaId,
    vote_types: Optional[List[Type[Message]]] = None,
) -> ByzantineBehaviour:
    """Corrupt the digests inside ``replica``'s outgoing votes.

    The vote signatures no longer match the tampered content, so honest
    replicas ignore them; the forger merely wastes its own voting power.
    """
    vote_types = vote_types or [Prepare, Commit]

    def mutate(message: Message) -> Message:
        message.digest = b"forged:" + bytes(reversed(message.digest))  # type: ignore[attr-defined]
        return message

    for vote_type in vote_types:
        injector.tamper(FaultRule(src=replica, message_type=vote_type), mutate)
    return ByzantineBehaviour(description="vote-forger", node=replica, injector=injector)


def make_value_tamperer(
    injector: FaultInjector,
    node: NodeId,
    message_type: Type[Message],
    mutate: Callable[[Message], Message],
) -> ByzantineBehaviour:
    """Corrupt application-level responses sent by ``node``.

    Typical use: flip bytes of the values carried in a read-only response so
    that tests can assert the client's Merkle-proof verification rejects the
    response.
    """
    injector.tamper(FaultRule(src=node, message_type=message_type), mutate)
    return ByzantineBehaviour(description="value-tamperer", node=node, injector=injector)
