"""Replicated state-machine log.

Each replica appends decided consensus values (TransEdge batches) to a
:class:`ReplicatedLog` in strict sequence order together with the commit
certificate proving agreement.  The log is the "SMR log" of Figure 2 in the
paper: committed local transactions, prepared records and commit records all
live in the batches stored here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.common.errors import ConsensusError
from repro.bft.quorum import CommitCertificate


@dataclass(frozen=True)
class LogEntry:
    """One decided value with its proof of agreement."""

    seq: int
    value: object
    certificate: CommitCertificate


class ReplicatedLog:
    """Append-only, gap-free sequence of decided values."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []

    def append(self, seq: int, value: object, certificate: CommitCertificate) -> LogEntry:
        """Append the decision for ``seq``; sequence numbers must be contiguous."""
        expected = len(self._entries)
        if seq != expected:
            raise ConsensusError(
                f"log append out of order: got seq {seq}, expected {expected}"
            )
        entry = LogEntry(seq=seq, value=value, certificate=certificate)
        self._entries.append(entry)
        return entry

    def get(self, seq: int) -> LogEntry:
        if not 0 <= seq < len(self._entries):
            raise ConsensusError(f"no log entry at seq {seq}")
        return self._entries[seq]

    def try_get(self, seq: int) -> Optional[LogEntry]:
        if 0 <= seq < len(self._entries):
            return self._entries[seq]
        return None

    @property
    def last_seq(self) -> int:
        """Highest decided sequence number (-1 when empty)."""
        return len(self._entries) - 1

    @property
    def next_seq(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)
