"""Replicated state-machine log.

Each replica appends decided consensus values (TransEdge batches) to a
:class:`ReplicatedLog` in strict sequence order together with the commit
certificate proving agreement.  The log is the "SMR log" of Figure 2 in the
paper: committed local transactions, prepared records and commit records all
live in the batches stored here.

The log is *compactable*: once a quorum-certified checkpoint covers a prefix
(see :mod:`repro.recovery`), :meth:`ReplicatedLog.truncate_prefix` discards
the entries below it while sequence numbering continues unchanged — the log
keeps a base offset, so ``append``/``get`` still speak global sequence
numbers after compaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ConsensusError
from repro.bft.quorum import CommitCertificate


@dataclass(frozen=True)
class LogEntry:
    """One decided value with its proof of agreement."""

    seq: int
    value: object
    certificate: CommitCertificate


class ReplicatedLog:
    """Append-only, gap-free sequence of decided values with prefix compaction."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self._base = 0

    def append(self, seq: int, value: object, certificate: CommitCertificate) -> LogEntry:
        """Append the decision for ``seq``; sequence numbers must be contiguous."""
        expected = self.next_seq
        if seq != expected:
            raise ConsensusError(
                f"log append out of order: got seq {seq}, expected {expected}"
            )
        entry = LogEntry(seq=seq, value=value, certificate=certificate)
        self._entries.append(entry)
        return entry

    def get(self, seq: int) -> LogEntry:
        entry = self.try_get(seq)
        if entry is None:
            raise ConsensusError(f"no log entry at seq {seq}")
        return entry

    def try_get(self, seq: int) -> Optional[LogEntry]:
        index = seq - self._base
        if 0 <= index < len(self._entries):
            return self._entries[index]
        return None

    @property
    def first_seq(self) -> int:
        """Lowest sequence number still stored (``next_seq`` when empty)."""
        return self._base

    @property
    def last_seq(self) -> int:
        """Highest decided sequence number (``first_seq - 1`` when empty)."""
        return self._base + len(self._entries) - 1

    @property
    def next_seq(self) -> int:
        return self._base + len(self._entries)

    # -- compaction ---------------------------------------------------------

    def truncate_prefix(self, first_retained: int) -> int:
        """Discard entries below ``first_retained``; returns how many were dropped.

        Truncation never removes undecided sequence numbers: the cut is
        clamped to ``[first_seq, next_seq]``, so truncating "past the end"
        just empties the log and numbering continues from ``next_seq``.
        """
        cut = min(max(first_retained, self._base), self.next_seq) - self._base
        if cut <= 0:
            return 0
        del self._entries[:cut]
        self._base += cut
        return cut

    def reset_base(self, next_seq: int) -> None:
        """Re-anchor an empty log to continue at ``next_seq``.

        Used when a recovering replica installs a checkpoint image: the
        entries below the checkpoint no longer exist anywhere, so the log
        restarts right above it.
        """
        if self._entries:
            raise ConsensusError("reset_base requires an empty log")
        self._base = next_seq

    def entries_from(self, start_seq: int) -> Tuple[LogEntry, ...]:
        """All stored entries with ``seq >= start_seq`` (the state-transfer suffix)."""
        index = max(0, start_seq - self._base)
        return tuple(self._entries[index:])

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)
