"""Quorum tracking and commit certificates.

A :class:`CommitCertificate` is the transferable proof that a cluster agreed
on a value: at least ``f + 1`` (by default ``2f + 1``) signatures from
distinct cluster members over the decided ``(view, seq, digest)``.  TransEdge
attaches these certificates to batches, to 2PC prepare/commit messages sent
across clusters, and to read-only responses so that a single node can prove
to a client that the data it returns was agreed on by its cluster
(Sections 3.3 and 4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.common.ids import PartitionId, ReplicaId
from repro.crypto.signatures import KeyRegistry, Signature


def certificate_payload(view: int, seq: int, digest: bytes) -> object:
    """Canonical payload that certificate signatures cover.

    This is exactly the payload of a PBFT ``Commit`` vote, so the ``2f + 1``
    commit signatures a replica collects while deciding double as the
    transferable certificate — no extra signing round is needed.
    """
    return ["commit", view, seq, digest]


def checkpoint_payload(seq: int, digest: bytes) -> object:
    """Canonical payload checkpoint-vote signatures cover.

    Shared by ``CheckpointVote.signing_payload`` and
    ``CheckpointCertificate.payload`` (``repro.recovery``): votes are signed
    and certificates verified over the same bytes by construction.
    """
    return ["checkpoint", int(seq), digest]


def view_change_payload(view: int, last_delivered: int) -> object:
    """Canonical payload a ``ViewChange`` vote's signature covers.

    Shared by ``ViewChange.signing_payload`` and
    :meth:`ViewChangeCertificate.verify`: each vote signs its sender's own
    ``last_delivered``, so a certificate is a *set* of individually signed
    votes rather than one payload signed by a quorum.
    """
    return ["view-change", view, last_delivered]


@dataclass(frozen=True)
class ViewChangeCertificate:
    """Transferable proof that ``2f + 1`` cluster members voted for ``view``.

    ``votes`` holds ``(last_delivered, signature)`` pairs — each signature
    covers :func:`view_change_payload` for its sender's own delivery tip, so
    verification checks every vote against its own payload and counts
    distinct valid member signers.  The certificate travels in ``NewView``
    announcements (a byzantine "leader" of a higher view cannot summon the
    cluster without real votes) and in state-transfer replies (a rejoining
    replica adopts the cluster's current view only against this proof).
    """

    view: int
    votes: Tuple[Tuple[int, Signature], ...]

    def signers(self) -> Tuple[str, ...]:
        return tuple(signature.signer for _, signature in self.votes)

    def verify(
        self,
        registry: KeyRegistry,
        cluster_members: Iterable[ReplicaId],
        required: int,
    ) -> bool:
        """Check ``required`` distinct members validly voted for ``view``."""
        allowed = {str(member) for member in cluster_members}
        valid_signers = set()
        for last_delivered, signature in self.votes:
            if signature is None or signature.signer not in allowed:
                continue
            if signature.signer in valid_signers:
                continue
            payload = view_change_payload(self.view, last_delivered)
            if registry.verify(payload, signature):
                valid_signers.add(signature.signer)
        return len(valid_signers) >= required


@dataclass(frozen=True)
class CommitCertificate:
    """Proof that a cluster decided ``digest`` at sequence ``seq``."""

    partition: PartitionId
    view: int
    seq: int
    digest: bytes
    signatures: Tuple[Signature, ...]

    def payload(self) -> object:
        return certificate_payload(self.view, self.seq, self.digest)

    def signers(self) -> Tuple[str, ...]:
        return tuple(signature.signer for signature in self.signatures)

    def verify(
        self,
        registry: KeyRegistry,
        cluster_members: Iterable[ReplicaId],
        required: int,
    ) -> bool:
        """Check the certificate carries ``required`` valid member signatures."""
        allowed = {str(member) for member in cluster_members}
        return registry.verify_quorum(
            self.payload(), self.signatures, required=required, allowed_signers=allowed
        )


class VoteTracker:
    """Collects signed votes for one ``(view, seq, digest)`` from distinct senders."""

    def __init__(self) -> None:
        self._votes: Dict[str, Signature] = {}

    def add(self, sender: str, signature: Optional[Signature]) -> bool:
        """Record a vote; returns False for duplicate senders."""
        if sender in self._votes:
            return False
        if signature is None:
            return False
        self._votes[sender] = signature
        return True

    def count(self) -> int:
        return len(self._votes)

    def reached(self, threshold: int) -> bool:
        return len(self._votes) >= threshold

    def voters(self) -> Tuple[str, ...]:
        return tuple(sorted(self._votes))

    def signatures(self, limit: Optional[int] = None) -> Tuple[Signature, ...]:
        ordered = [self._votes[name] for name in sorted(self._votes)]
        if limit is not None:
            ordered = ordered[:limit]
        return tuple(ordered)
