"""Comparator systems used in the paper's evaluation (2PC/BFT, Augustus)."""

from repro.baselines.protocols import (
    AugustusReadOnly,
    ReadOnlyProtocol,
    TransEdgeReadOnly,
    TwoPCBftReadOnly,
    protocol_by_name,
)

__all__ = [
    "AugustusReadOnly",
    "ReadOnlyProtocol",
    "TransEdgeReadOnly",
    "TwoPCBftReadOnly",
    "protocol_by_name",
]
