"""Read-only protocol strategies: TransEdge and the two baselines.

The paper evaluates three ways of executing a distributed read-only
transaction on top of the same hierarchical 2PC/BFT read-write machinery:

* **TransEdge** (the contribution) — commit-free, non-interfering snapshot
  reads with CD-vector dependency tracking (Section 4);
* **2PC/BFT** — the read-only transaction is executed as a regular
  transaction: validated by consensus in every accessed cluster and
  coordinated with 2PC (Section 3.5);
* **Augustus** — quorum reads that take shared locks at ``2f + 1`` replicas
  of every accessed partition, interfering with read-write transactions
  (Padilha & Pedone, EuroSys'13; Section 6.2 of the paper).

Each strategy exposes the same ``run(client, keys)`` generator interface so
experiments and examples can swap protocols without touching driver code.
"""

from __future__ import annotations

from typing import Generator, Protocol, Sequence

from repro.common.types import Key, ReadOnlyResult
from repro.core.client import TransEdgeClient


class ReadOnlyProtocol(Protocol):
    """A strategy for executing distributed read-only transactions."""

    name: str

    def run(
        self, client: TransEdgeClient, keys: Sequence[Key]
    ) -> Generator[object, object, ReadOnlyResult]:
        """Run one read-only transaction over ``keys`` on behalf of ``client``."""
        ...  # pragma: no cover - protocol definition


class TransEdgeReadOnly:
    """The paper's contribution: snapshot reads with dependency tracking."""

    name = "transedge"

    def run(self, client: TransEdgeClient, keys: Sequence[Key]):
        return client.read_only_txn(keys)


class TwoPCBftReadOnly:
    """Baseline: read-only transactions as coordinated read-write transactions."""

    name = "2pc-bft"

    def run(self, client: TransEdgeClient, keys: Sequence[Key]):
        return client.read_only_as_regular_txn(keys)


class AugustusReadOnly:
    """Baseline: quorum reads with shared locks (Augustus)."""

    name = "augustus"

    def run(self, client: TransEdgeClient, keys: Sequence[Key]):
        return client.augustus_read_only_txn(keys)


_PROTOCOLS = {
    "transedge": TransEdgeReadOnly,
    "2pc-bft": TwoPCBftReadOnly,
    "2pc/bft": TwoPCBftReadOnly,
    "augustus": AugustusReadOnly,
}


def protocol_by_name(name: str) -> ReadOnlyProtocol:
    """Look up a read-only protocol strategy by name (case-insensitive)."""
    try:
        return _PROTOCOLS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(set(_PROTOCOLS)))
        raise ValueError(f"unknown read-only protocol {name!r}; expected one of {known}")
