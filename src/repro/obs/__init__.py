"""Observability: causal tracing, phase attribution and a flight recorder.

See :mod:`repro.obs.trace` (spans + deterministic digests),
:mod:`repro.obs.recorder` (bounded per-node event rings),
:mod:`repro.obs.attribution` (phase-level latency breakdown that always
reconciles with end-to-end latency), :mod:`repro.obs.export`
(trace trees, Chrome-trace JSON, run dumps), :mod:`repro.obs.monitor`
(live sim-time metrics timelines + per-node health tracking) and
:mod:`repro.obs.slo` (declarative objectives graded per timeline window).
``python -m repro.obs`` runs a small traced workload and renders/exports
its traces; ``--timeline`` adds the monitoring view.
"""

from repro.obs.hub import Observability
from repro.obs.monitor import HEALTH_STATES, HealthTracker, MetricsTimeline, Monitor, WindowSample
from repro.obs.phases import MESSAGE_PHASES, PHASES, phase_for
from repro.obs.recorder import FlightRecorder, ObsEvent
from repro.obs.slo import SloResult, SloSpec, default_slos, evaluate_slos, render_slo_table
from repro.obs.trace import Span, TraceContext, TraceData, Tracer

__all__ = [
    "Observability",
    "FlightRecorder",
    "ObsEvent",
    "Span",
    "TraceContext",
    "TraceData",
    "Tracer",
    "PHASES",
    "MESSAGE_PHASES",
    "phase_for",
    "Monitor",
    "MetricsTimeline",
    "HealthTracker",
    "WindowSample",
    "HEALTH_STATES",
    "SloSpec",
    "SloResult",
    "default_slos",
    "evaluate_slos",
    "render_slo_table",
]
