"""Observability: causal tracing, phase attribution and a flight recorder.

See :mod:`repro.obs.trace` (spans + deterministic digests),
:mod:`repro.obs.recorder` (bounded per-node event rings),
:mod:`repro.obs.attribution` (phase-level latency breakdown that always
reconciles with end-to-end latency) and :mod:`repro.obs.export`
(trace trees, Chrome-trace JSON, run dumps).  ``python -m repro.obs`` runs
a small traced workload and renders/exports its traces.
"""

from repro.obs.hub import Observability
from repro.obs.phases import MESSAGE_PHASES, PHASES, phase_for
from repro.obs.recorder import FlightRecorder, ObsEvent
from repro.obs.trace import Span, TraceContext, TraceData, Tracer

__all__ = [
    "Observability",
    "FlightRecorder",
    "ObsEvent",
    "Span",
    "TraceContext",
    "TraceData",
    "Tracer",
    "PHASES",
    "MESSAGE_PHASES",
    "phase_for",
]
