"""The phase vocabulary of latency attribution.

Every span carries exactly one *phase tag*; the attribution pass
(:mod:`repro.obs.attribution`) slices a transaction's end-to-end latency
into per-phase time, so the breakdown always reconciles with the root
span's duration.  The vocabulary is deliberately small — the goal is "where
does a p99 commit spend its time", not a profiler:

``client``
    Time the client's own workflow is the innermost active span — building
    the transaction, verifying nothing, waiting on nothing traced.
``queue``
    Waiting behind other work in a node's single-server FIFO queue (the
    gap between a message's arrival and the start of its handling), and the
    leader-side wait for the next batch to seal.
``net``
    In flight on a simulated network link.
``verify``
    Serving or verifying reads: Merkle proofs, certified headers, snapshot
    assembly.
``consensus``
    Intra-cluster BFT ordering and cross-cluster 2PC (prepares, votes,
    decisions).
``lock``
    Admission and conflict checking of commit requests (OCC validation and
    the Augustus baseline's shared locks).
``apply``
    Applying decided state: commit acks, state transfer, everything not
    otherwise classified.
``edge-refresh``
    Edge-proxy work: cache lookups, core refresh rounds, header
    announcements.

The mapping below is keyed by *message type name* (not type objects) so the
obs layer never imports protocol packages — no circular imports, and
protocol messages unknown to the table degrade to ``apply``.
"""

from __future__ import annotations

from typing import Dict

#: Every phase a span may carry, in the fixed priority order used by the
#: attribution tie-break (earlier = more specific).
PHASES = (
    "queue",
    "net",
    "verify",
    "consensus",
    "lock",
    "apply",
    "edge-refresh",
    "client",
)

#: Handling phase per message type name (see module docstring).
MESSAGE_PHASES: Dict[str, str] = {
    # intra-cluster consensus + cross-cluster 2PC
    "PrePrepare": "consensus",
    "Prepare": "consensus",
    "Commit": "consensus",
    "CheckpointVote": "consensus",
    "ViewChange": "consensus",
    "NewView": "consensus",
    "CoordinatorPrepare": "consensus",
    "ParticipantPrepared": "consensus",
    "DecisionMessage": "consensus",
    "DecisionQuery": "consensus",
    "DecisionReply": "consensus",
    # read serving and client-side re-verification
    "ReadRequest": "verify",
    "ReadReply": "verify",
    "ReadOnlyRequest": "verify",
    "ReadOnlyReply": "verify",
    "SnapshotRequest": "verify",
    "SnapshotReply": "verify",
    "EdgeReadReply": "verify",
    # commit admission and the Augustus lock baseline
    "CommitRequest": "lock",
    "LockReadRequest": "lock",
    "LockReadReply": "lock",
    "LockReleaseMessage": "lock",
    # decided state propagation
    "CommitReply": "apply",
    "StateTransferRequest": "apply",
    "StateTransferReply": "apply",
    # edge tier
    "EdgeReadRequest": "edge-refresh",
    "HeaderAnnouncement": "edge-refresh",
    "LeaderComplaint": "apply",
}


def phase_for(message_type_name: str, default: str = "apply") -> str:
    """The handling phase of a message type (``apply`` when unknown)."""
    return MESSAGE_PHASES.get(message_type_name, default)
