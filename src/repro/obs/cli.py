"""Command-line interface: ``python -m repro.obs``.

Runs a small traced workload (a mix of distributed read-write and
read-only transactions on a 3-partition deployment) and renders what the
observability layer captured::

    python -m repro.obs                       # trace trees + phase table
    python -m repro.obs --txns 40 --seed 3
    python -m repro.obs --chrome trace.json   # Chrome/Perfetto export
    python -m repro.obs --export run.json     # full run dump (CI artifact)
    python -m repro.obs --digest              # print only the trace digest
    python -m repro.obs --timeline            # monitor windows + health + SLOs

The run is deterministic: the same ``--txns``/``--seed`` always produce the
same spans and therefore the same digest — which is exactly what the CI
``obs-smoke`` job asserts by running this twice and comparing.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.common.config import BatchConfig, MonitorConfig, SystemConfig
from repro.obs.attribution import PhaseAggregate, reconciliation_error
from repro.obs.export import (
    chrome_trace_document,
    render_trace_tree,
    run_document,
    write_json,
)
from repro.obs.hub import Observability
from repro.obs.slo import default_slos, evaluate_slos, render_slo_table


def traced_workload(txns: int, seed: int) -> Observability:
    """Run a small traced deployment and return its observability hub."""
    return _run_workload(txns, seed, monitor=False).env.obs


def monitored_workload(txns: int, seed: int, window_ms: float = 25.0):
    """Run the traced deployment with the monitor armed; return the system."""
    return _run_workload(txns, seed, monitor=True, window_ms=window_ms)


def _run_workload(txns: int, seed: int, monitor: bool, window_ms: float = 25.0):
    from repro.bench.drivers import execute_workload
    from repro.core.system import TransEdgeSystem
    from repro.workload.generator import WorkloadGenerator, WorkloadProfile

    config = SystemConfig(
        num_partitions=3,
        fault_tolerance=1,
        batch=BatchConfig(max_size=20, timeout_ms=5.0),
        initial_keys=120,
        value_size=64,
        seed=seed,
        monitor=MonitorConfig(enabled=monitor, window_ms=window_ms),
    ).with_tracing(True, max_traces=max(4 * txns, 64))
    system = TransEdgeSystem(config)
    generator = WorkloadGenerator(
        sorted(system.initial_data),
        system.partitioner,
        profile=WorkloadProfile(value_size=32, read_only_fraction=0.4),
        seed=seed + 1,
    )
    specs = list(generator.mixed_stream(txns))
    execute_workload(system, specs, concurrency=8, num_clients=2)
    if system.monitor is not None:
        system.monitor.flush(system.now)
    return system


def render_phase_table(obs: Observability) -> str:
    """The per-phase attribution table over every completed trace."""
    aggregate = PhaseAggregate()
    worst = 0.0
    for trace in obs.tracer.completed_traces():
        aggregate.add_trace(trace)
        worst = max(worst, reconciliation_error(trace))
    if not aggregate.traces:
        return "no completed traces"
    header = f"{'phase':<14}{'total ms':>10}{'share %':>9}{'p50 ms':>9}{'p95 ms':>9}"
    lines = [header, "-" * len(header)]
    for phase in aggregate.phases():
        summary = aggregate.summary(phase)
        lines.append(
            f"{phase:<14}{aggregate.total_ms(phase):>10.2f}"
            f"{100.0 * aggregate.share(phase):>9.1f}"
            f"{summary.p50_ms:>9.3f}{summary.p95_ms:>9.3f}"
        )
    lines.append(
        f"({aggregate.traces} traces; worst reconciliation error "
        f"{100.0 * worst:.4f}%)"
    )
    return "\n".join(lines)


def render_timeline_table(samples) -> str:
    """One row per closed monitor window: throughput, latency, health fuel."""
    if not samples:
        return "no closed monitor windows"
    header = (
        f"{'window':>7}{'start ms':>10}{'commits':>9}{'aborts':>8}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'retx':>6}{'handled':>9}"
    )
    lines = [header, "-" * len(header)]
    from repro.metrics.collector import percentile

    for sample in samples:
        latencies = sorted(sample.latencies)
        p50 = percentile(latencies, 0.50) if latencies else 0.0
        p95 = percentile(latencies, 0.95) if latencies else 0.0
        retx = int(sample.transport.get("messages_retransmitted", 0))
        handled = sum(sample.node_handled.values())
        lines.append(
            f"{sample.index:>7}{sample.start_ms:>10.1f}{sample.commits:>9}"
            f"{sample.aborts:>8}{p50:>9.2f}{p95:>9.2f}{retx:>6}{handled:>9}"
        )
    return "\n".join(lines)


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Run a small traced workload and render/export its causal traces.",
    )
    parser.add_argument("--txns", type=int, default=20,
                        help="transactions to run (default 20)")
    parser.add_argument("--seed", type=int, default=7,
                        help="deployment + workload seed (default 7)")
    parser.add_argument("--trees", type=int, default=2, metavar="N",
                        help="render the first N trace trees (default 2)")
    parser.add_argument("--chrome", metavar="PATH", default=None,
                        help="write Chrome-trace JSON (load in ui.perfetto.dev)")
    parser.add_argument("--export", metavar="PATH", default=None,
                        help="write the full run dump (traces + flight recorder)")
    parser.add_argument("--digest", action="store_true",
                        help="print only the trace digest and exit")
    parser.add_argument("--timeline", action="store_true",
                        help="run with the monitor armed and print the window "
                             "timeline, node health and SLO tables")
    parser.add_argument("--window-ms", type=float, default=25.0,
                        help="monitor sampling window in sim-ms (default 25)")
    args = parser.parse_args(argv)
    if args.txns < 1:
        parser.error("--txns must be >= 1")
    if args.window_ms <= 0:
        parser.error("--window-ms must be > 0")

    if args.timeline:
        system = monitored_workload(args.txns, args.seed, window_ms=args.window_ms)
        monitor = system.monitor
        samples = monitor.timeline.samples()
        print(
            f"{args.txns} txns monitored: {len(samples)} closed windows of "
            f"{args.window_ms:g}ms (sim time {system.now:.1f}ms), "
            f"digest {system.env.obs.tracer.digest()}"
        )
        print()
        print(render_timeline_table(samples))
        health = monitor.health.summary()
        print(f"\nnode health ({len(health['transitions'])} transitions):")
        if health["states"]:
            for node, state in sorted(health["states"].items()):
                print(f"  {node:<14}{state}")
        else:
            print("  all nodes healthy (no node ever left the healthy state)")
        print()
        print(render_slo_table(evaluate_slos(samples, default_slos())))
        return 0

    obs = traced_workload(args.txns, args.seed)

    if args.digest:
        print(obs.tracer.digest())
        return 0

    completed = obs.tracer.completed_traces()
    print(
        f"{args.txns} txns traced: {len(completed)} complete traces, "
        f"{obs.tracer.spans_recorded} spans, digest {obs.tracer.digest()}"
    )
    for trace in completed[: max(0, args.trees)]:
        print()
        print(render_trace_tree(trace))
    print()
    print(render_phase_table(obs))

    events = obs.recorder.timeline()
    if events:
        print(f"\nflight recorder ({len(events)} events):")
        for event in events[-10:]:
            print(f"  {event.time_ms:10.3f}ms  [{event.severity}] {event.node}: {event.kind}")

    if args.chrome:
        write_json(chrome_trace_document(obs), args.chrome)
        print(f"\nwrote Chrome trace to {args.chrome}")
    if args.export:
        write_json(run_document(obs), args.export)
        print(f"wrote run dump to {args.export}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
