"""Live monitoring: sim-time metrics timelines and per-node health states.

PR 6's observability is *post-hoc*: traces and flight-recorder rings are
read once the run is over.  This module watches the system *while it runs*:

* :class:`MetricsTimeline` — windowed deltas of the deployment's cumulative
  counters (system counters, per-node handled counts, transport stats,
  client verify caches) sampled every ``MonitorConfig.window_ms`` of
  *simulated* time, plus per-window phase attribution and end-to-end
  latency samples folded in from the causal tracer's span-close stream.
* :class:`HealthTracker` — per-node timestamped health states (healthy /
  degraded / suspected / recovering / crashed) derived from the flight
  recorder's typed events, with quiet-window decay back to healthy.
* :class:`Monitor` — the glue object a deployment installs on its
  :class:`~repro.simnet.node.SimEnvironment`.

Determinism and neutrality are the design constraints, exactly as for the
tracer: the monitor schedules **zero** simulator events (window boundaries
are noticed lazily on existing dispatches, the way ``_dispatch_in_span``
piggybacks on dispatch), draws no randomness, and only ever *reads*
counters.  Enabling monitoring therefore cannot change what a run does —
chaos fingerprints and trace digests are byte-identical with monitoring on
or off, which ``tests/obs/test_monitor.py`` and the CI ``monitor-smoke``
job pin.

The timeline's accounting discipline mirrors PR 6's phase attribution:
windowed deltas *telescope*.  Each closed window's delta is the cumulative
snapshot at close time minus the previous close's snapshot, so the sum of
all window deltas (retained windows plus the evicted-totals accumulator
plus the flushed tail) equals final-minus-initial exactly — the timeline
can never invent or lose a counted event.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.config import MonitorConfig
from repro.obs.attribution import phase_breakdown
from repro.obs.recorder import ObsEvent
from repro.obs.trace import Span, Tracer

#: Health states, ordered from best to worst; transitions always move a
#: node between two of these.
HEALTH_STATES = ("healthy", "degraded", "suspected", "recovering", "crashed")

#: Severity rank of each health state: a weaker signal never downgrades a
#: stronger one (a retransmit to a crashed node does not "degrade" it).
_HEALTH_RANK = {state: rank for rank, state in enumerate(HEALTH_STATES)}

#: Flight-recorder kinds that mark the *destination* node of a lossy link
#: as degraded (the peer is not acking / not receiving).
_DEGRADING_KINDS = ("message-retransmit", "retransmit-abandoned", "link-abandoned")


@dataclass
class WindowSample:
    """One closed timeline window: deltas plus per-window latency detail.

    ``start_ms``/``end_ms`` are *nominal* window boundaries (multiples of
    ``window_ms``); a sample may span several idle windows when nothing
    dispatched in between (the timeline is sparse — empty windows are never
    materialised).  ``closed_at_ms`` is the simulated time the boundary was
    actually noticed.  Delta dicts store only non-zero entries.
    """

    index: int
    start_ms: float
    end_ms: float
    closed_at_ms: float
    #: SystemCounters deltas over the window (non-zero entries only).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Reliable-transport counter deltas (empty when the channel is off).
    transport: Dict[str, int] = field(default_factory=dict)
    #: Client verify-cache ``hits``/``misses`` deltas.
    client_verify: Dict[str, int] = field(default_factory=dict)
    #: Per-node ``messages_handled`` deltas.
    node_handled: Dict[str, int] = field(default_factory=dict)
    #: Exclusive per-phase attribution (ms) of transactions finishing here.
    phase_ms: Dict[str, float] = field(default_factory=dict)
    phase_counts: Dict[str, int] = field(default_factory=dict)
    #: Transactions whose root span closed in this window, by outcome.
    commits: int = 0
    aborts: int = 0
    #: Raw end-to-end latencies of the window's commits, capped at
    #: ``latency_samples_per_window`` (``commits`` stays exact past the cap).
    latencies: List[float] = field(default_factory=list)
    samples_dropped: int = 0
    #: Earliest root-span *start* among the transactions that finished in
    #: this window (``None`` when none did).  A long-stuck transaction ends
    #: far from where it began; comparisons that exclude time intervals
    #: (the phase-latency oracle's fault windows) need to know how far back
    #: a window's latencies reach.
    earliest_root_start_ms: Optional[float] = None

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "closed_at_ms": self.closed_at_ms,
            "counters": dict(self.counters),
            "transport": dict(self.transport),
            "client_verify": dict(self.client_verify),
            "node_handled": dict(self.node_handled),
            "phase_ms": {k: self.phase_ms[k] for k in sorted(self.phase_ms)},
            "phase_counts": dict(self.phase_counts),
            "commits": self.commits,
            "aborts": self.aborts,
            "latencies": list(self.latencies),
            "samples_dropped": self.samples_dropped,
            "earliest_root_start_ms": self.earliest_root_start_ms,
        }


class _PendingWindow:
    """Span-derived data accumulated for a window that has not closed yet."""

    __slots__ = (
        "phase_ms",
        "phase_counts",
        "commits",
        "aborts",
        "latencies",
        "dropped",
        "earliest_start",
    )

    def __init__(self) -> None:
        self.phase_ms: Dict[str, float] = {}
        self.phase_counts: Dict[str, int] = {}
        self.commits = 0
        self.aborts = 0
        self.latencies: List[float] = []
        self.dropped = 0
        self.earliest_start: Optional[float] = None


def _delta(new: Dict[str, int], old: Dict[str, int]) -> Dict[str, int]:
    """Non-zero differences ``new - old`` (keys drawn from ``new``)."""
    out: Dict[str, int] = {}
    for key in sorted(new):
        diff = new[key] - old.get(key, 0)
        if diff:
            out[key] = diff
    return out


def _merge_int(total: Dict[str, int], part: Dict[str, int]) -> None:
    for key in sorted(part):
        total[key] = total.get(key, 0) + part[key]


def _merge_float(total: Dict[str, float], part: Dict[str, float]) -> None:
    for key in sorted(part):
        total[key] = total.get(key, 0.0) + part[key]


class MetricsTimeline:
    """Ring-bounded windowed counter deltas on simulated time.

    ``snapshot_fn`` returns the deployment's *cumulative* counters as::

        {"counters": {...}, "transport": {...},
         "client_verify": {"hits": h, "misses": m}, "node_handled": {...}}

    The timeline never calls it outside :meth:`note_time`/:meth:`flush`, and
    those only read — sampling is free of simulation side effects.
    """

    def __init__(
        self, config: MonitorConfig, snapshot_fn: Callable[[], Dict[str, Dict[str, int]]]
    ) -> None:
        self.config = config
        self._snapshot_fn = snapshot_fn
        self._window_ms = config.window_ms
        #: Cumulative counters at construction: the exactness invariant's
        #: left edge (window deltas sum to final minus *this*).
        self.initial = snapshot_fn()
        self._baseline = self.initial
        self._current_index = 0
        self._samples: "deque[WindowSample]" = deque()
        self._pending: Dict[int, _PendingWindow] = {}
        self.windows_closed = 0
        #: Deltas of windows evicted from the bounded ring, folded so that
        #: aggregate accounting stays exact forever.
        self.evicted: Dict[str, object] = {
            "windows": 0,
            "counters": {},
            "transport": {},
            "client_verify": {},
            "node_handled": {},
            "phase_ms": {},
            "phase_counts": {},
            "commits": 0,
            "aborts": 0,
            "samples_dropped": 0,
        }

    # -- sampling ----------------------------------------------------------

    def note_time(self, now_ms: float) -> Optional[float]:
        """Close windows the clock has moved past; called on every dispatch.

        Returns the nominal start of the newly opened window when a
        boundary was crossed (the health tracker decays on that signal),
        ``None`` otherwise.
        """
        index = int(now_ms // self._window_ms)
        if index <= self._current_index:
            return None
        self._close_through(index, now_ms)
        return index * self._window_ms

    def record_root(
        self, end_ms: float, duration_ms: float, ok: bool, breakdown: Dict[str, float]
    ) -> None:
        """Fold one finished transaction into its window (by root-close time)."""
        index = max(self._current_index, int(end_ms // self._window_ms))
        pending = self._pending.get(index)
        if pending is None:
            pending = self._pending[index] = _PendingWindow()
        start_ms = end_ms - duration_ms
        if pending.earliest_start is None or start_ms < pending.earliest_start:
            pending.earliest_start = start_ms
        if ok:
            pending.commits += 1
            if len(pending.latencies) < self.config.latency_samples_per_window:
                pending.latencies.append(duration_ms)
            else:
                pending.dropped += 1
            for phase in sorted(breakdown):
                pending.phase_ms[phase] = pending.phase_ms.get(phase, 0.0) + breakdown[phase]
                pending.phase_counts[phase] = pending.phase_counts.get(phase, 0) + 1
        else:
            pending.aborts += 1

    def flush(self, now_ms: float) -> None:
        """Close the open tail window so aggregate accounting reconciles."""
        upto = int(now_ms // self._window_ms) + 1
        if self._pending:
            upto = max(upto, max(self._pending) + 1)
        self._close_through(upto, now_ms)

    # -- queries -----------------------------------------------------------

    def samples(self) -> List[WindowSample]:
        """Retained windows, oldest first."""
        return list(self._samples)

    def current_snapshot(self) -> Dict[str, Dict[str, int]]:
        """The cumulative counters right now (reads only, samples nothing)."""
        return self._snapshot_fn()

    def totals(self) -> Dict[str, object]:
        """Aggregate deltas over evicted plus retained windows.

        After :meth:`flush`, every section equals the cumulative snapshot
        minus :attr:`initial` — the exactness invariant the tests pin.
        """
        totals: Dict[str, object] = {
            "counters": dict(self.evicted["counters"]),
            "transport": dict(self.evicted["transport"]),
            "client_verify": dict(self.evicted["client_verify"]),
            "node_handled": dict(self.evicted["node_handled"]),
            "phase_ms": dict(self.evicted["phase_ms"]),
            "commits": self.evicted["commits"],
            "aborts": self.evicted["aborts"],
        }
        for sample in self._samples:
            _merge_int(totals["counters"], sample.counters)
            _merge_int(totals["transport"], sample.transport)
            _merge_int(totals["client_verify"], sample.client_verify)
            _merge_int(totals["node_handled"], sample.node_handled)
            _merge_float(totals["phase_ms"], sample.phase_ms)
            totals["commits"] += sample.commits
            totals["aborts"] += sample.aborts
        return totals

    # -- internals ---------------------------------------------------------

    def _close_through(self, index: int, now_ms: float) -> None:
        """Close the open window ``[current, index)`` as one sparse sample.

        One snapshot covers the whole jump: work done in windows nothing
        dispatched in lands in the closing sample (boundaries are noticed
        lazily, so attribution granularity is bounded by dispatch density —
        the deltas themselves stay exact regardless).
        """
        snapshot = self._snapshot_fn()
        sample = WindowSample(
            index=self._current_index,
            start_ms=self._current_index * self._window_ms,
            end_ms=index * self._window_ms,
            closed_at_ms=now_ms,
            counters=_delta(snapshot["counters"], self._baseline["counters"]),
            transport=_delta(snapshot["transport"], self._baseline["transport"]),
            client_verify=_delta(
                snapshot["client_verify"], self._baseline["client_verify"]
            ),
            node_handled=_delta(
                snapshot["node_handled"], self._baseline["node_handled"]
            ),
        )
        for key in sorted(k for k in self._pending if k < index):
            pending = self._pending.pop(key)
            _merge_float(sample.phase_ms, pending.phase_ms)
            _merge_int(sample.phase_counts, pending.phase_counts)
            sample.commits += pending.commits
            sample.aborts += pending.aborts
            if pending.earliest_start is not None and (
                sample.earliest_root_start_ms is None
                or pending.earliest_start < sample.earliest_root_start_ms
            ):
                sample.earliest_root_start_ms = pending.earliest_start
            room = self.config.latency_samples_per_window - len(sample.latencies)
            sample.latencies.extend(pending.latencies[: max(0, room)])
            sample.samples_dropped += pending.dropped + max(
                0, len(pending.latencies) - max(0, room)
            )
        self._baseline = snapshot
        self._current_index = index
        if self._has_content(sample):
            self._samples.append(sample)
            self.windows_closed += 1
            while len(self._samples) > self.config.max_windows:
                self._evict(self._samples.popleft())

    @staticmethod
    def _has_content(sample: WindowSample) -> bool:
        return bool(
            sample.counters
            or sample.transport
            or sample.client_verify
            or sample.node_handled
            or sample.commits
            or sample.aborts
        )

    def _evict(self, sample: WindowSample) -> None:
        self.evicted["windows"] += 1
        _merge_int(self.evicted["counters"], sample.counters)
        _merge_int(self.evicted["transport"], sample.transport)
        _merge_int(self.evicted["client_verify"], sample.client_verify)
        _merge_int(self.evicted["node_handled"], sample.node_handled)
        _merge_float(self.evicted["phase_ms"], sample.phase_ms)
        _merge_int(self.evicted["phase_counts"], sample.phase_counts)
        self.evicted["commits"] += sample.commits
        self.evicted["aborts"] += sample.aborts
        self.evicted["samples_dropped"] += sample.samples_dropped + len(sample.latencies)


class HealthTracker:
    """Per-node health states derived from the flight-recorder event stream.

    State machine (rank-ordered; weaker signals never downgrade stronger
    states):

    * ``replica-crash`` → **crashed**
    * ``replica-restart`` / ``recovery-begin`` → **recovering**
    * ``recovery-complete`` → **healthy**
    * ``leader-suspected`` → the partition's current leader (resolved via
      ``leader_of`` at event time, i.e. before the view rotates) becomes
      **suspected**
    * retransmit-family events → the destination node becomes **degraded**
    * ``healthy_after_quiet_windows`` windows without a new degrading
      signal decay degraded/suspected nodes back to **healthy**
      (crashed/recovering only leave through restart/recovery events).

    Transitions are timestamped with simulated time and kept in a bounded
    log, so "node X was degraded between t=400ms and t=900ms" is a direct
    read of the record.
    """

    def __init__(
        self,
        config: MonitorConfig,
        leader_of: Optional[Callable[[int], str]] = None,
    ) -> None:
        self.config = config
        self._leader_of = leader_of
        self._quiet_ms = config.healthy_after_quiet_windows * config.window_ms
        self._states: Dict[str, str] = {}
        self._last_signal_ms: Dict[str, float] = {}
        self.transitions: "deque[Dict[str, object]]" = deque(
            maxlen=config.max_health_transitions
        )

    # -- event feed --------------------------------------------------------

    def on_event(self, event: ObsEvent) -> None:
        kind = event.kind
        detail = event.detail or {}
        when = event.time_ms
        if kind == "replica-crash":
            self._set(event.node, "crashed", when, kind)
        elif kind == "replica-restart":
            self._set(event.node, "recovering", when, kind)
        elif kind == "recovery-begin":
            if self.state(event.node) != "crashed":
                self._set(event.node, "recovering", when, kind)
        elif kind == "recovery-complete":
            self._set(event.node, "healthy", when, kind)
        elif kind == "leader-suspected":
            partition = detail.get("partition")
            if self._leader_of is not None and partition is not None:
                self._raise_to(self._leader_of(partition), "suspected", when, kind)
        elif kind in _DEGRADING_KINDS:
            dst = detail.get("dst")
            if dst is not None:
                self._raise_to(str(dst), "degraded", when, kind)

    def decay(self, now_ms: float) -> None:
        """Degraded/suspected nodes quiet long enough return to healthy."""
        for node in sorted(self._states):
            if self._states[node] not in ("degraded", "suspected"):
                continue
            if now_ms - self._last_signal_ms.get(node, 0.0) >= self._quiet_ms:
                self._set(node, "healthy", now_ms, "quiet")

    # -- queries -----------------------------------------------------------

    def state(self, node: str) -> str:
        return self._states.get(node, "healthy")

    def snapshot(self) -> Dict[str, str]:
        """Current state of every node that ever left ``healthy``."""
        return {node: self._states[node] for node in sorted(self._states)}

    def summary(self) -> Dict[str, object]:
        states = self.snapshot()
        counts: Dict[str, int] = {}
        for state in states.values():
            counts[state] = counts.get(state, 0) + 1
        return {
            "states": states,
            "counts": counts,
            "transitions": [dict(entry) for entry in self.transitions],
        }

    # -- internals ---------------------------------------------------------

    def _raise_to(self, node: str, state: str, when: float, reason: str) -> None:
        """Apply ``state`` only if it is at least as severe as the current one."""
        current = self.state(node)
        if _HEALTH_RANK[state] < _HEALTH_RANK[current]:
            # Weaker signal: refresh the quiet clock, keep the state.
            self._last_signal_ms[node] = when
            return
        self._set(node, state, when, reason)

    def _set(self, node: str, state: str, when: float, reason: str) -> None:
        previous = self.state(node)
        self._last_signal_ms[node] = when
        if previous == state:
            return
        self._states[node] = state
        self.transitions.append(
            {
                "time_ms": when,
                "node": node,
                "from": previous,
                "to": state,
                "reason": reason,
            }
        )


class Monitor:
    """The deployment's live cockpit: timeline plus health tracking.

    Constructed by :class:`~repro.core.system.TransEdgeSystem` when
    ``MonitorConfig.enabled`` and installed on the shared environment
    (``env.monitor``) and observability hub
    (:meth:`~repro.obs.hub.Observability.attach_monitor`).  All three entry
    points — :meth:`on_activity` (dispatch), :meth:`on_span_closed`
    (tracer) and :meth:`on_obs_event` (flight recorder) — piggyback on
    streams that already exist; the monitor adds no events of its own.
    """

    def __init__(
        self,
        config: MonitorConfig,
        snapshot_fn: Callable[[], Dict[str, Dict[str, int]]],
        leader_of: Optional[Callable[[int], str]] = None,
    ) -> None:
        self.config = config
        self.timeline = MetricsTimeline(config, snapshot_fn)
        self.health = HealthTracker(config, leader_of=leader_of)
        self._tracer: Optional[Tracer] = None

    def bind_tracer(self, tracer: Tracer) -> None:
        """Give the monitor read access to the trace store (attribution)."""
        self._tracer = tracer

    # -- piggybacked entry points ------------------------------------------

    def on_activity(self, now_ms: float) -> None:
        """Dispatch-path hook: close any windows the clock moved past."""
        boundary = self.timeline.note_time(now_ms)
        if boundary is not None:
            self.health.decay(boundary)

    def on_span_closed(self, span: Span) -> None:
        """Tracer hook: fold finished transactions into their window.

        Only root spans carry a transaction outcome; their exclusive phase
        breakdown (:func:`repro.obs.attribution.phase_breakdown`) is what
        makes per-window phase sums comparable to end-to-end latency.
        """
        if span.parent_id is not None or span.end_ms is None:
            return
        breakdown: Dict[str, float] = {}
        if span.status == "ok" and self._tracer is not None:
            trace = self._tracer.trace(span.trace_id)
            if trace is not None:
                breakdown = phase_breakdown(trace)
        if not breakdown and span.status == "ok":
            breakdown = {span.phase: span.duration_ms}
        self.timeline.record_root(
            span.end_ms, span.duration_ms, span.status == "ok", breakdown
        )

    def on_obs_event(self, event: ObsEvent) -> None:
        """Flight-recorder hook: fold typed events into health states."""
        self.health.on_event(event)

    # -- collection --------------------------------------------------------

    def flush(self, now_ms: float) -> None:
        """Close the tail window (call once at collection time)."""
        self.timeline.flush(now_ms)

    def summary(self) -> Dict[str, object]:
        """Compact monitor digest for artifacts and bench notes."""
        return {
            "windows": self.timeline.windows_closed,
            "evicted_windows": self.timeline.evicted["windows"],
            "health": self.health.summary(),
        }
