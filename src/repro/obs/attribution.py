"""Phase-level latency attribution over a causal trace.

The naive approach — sum each phase's span durations — double-counts
wherever spans nest or overlap (a handle span contains the sends it makes;
parallel fan-out reads overlap each other), so the per-phase numbers would
not add up to the transaction's end-to-end latency and nobody could trust
the table.

This pass instead *partitions the root interval*: the root span's extent is
cut at every span boundary, and each elementary slice is attributed to
exactly one phase — the phase of the innermost (deepest, then
latest-started) span covering the slice, with overlapping siblings broken
deterministically by the fixed :data:`~repro.obs.phases.PHASES` priority
and finally by span id.  Slices no child covers belong to the root's own
phase (``client``).  The per-phase sums therefore reconcile with the
end-to-end latency *by construction*, up to float rounding — the property
the ``obs`` bench table and its test pin at ±1%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.collector import LatencySummary, summarize_latencies
from repro.obs.phases import PHASES
from repro.obs.trace import Span, TraceData

_PHASE_RANK = {phase: rank for rank, phase in enumerate(PHASES)}


def _depths(trace: TraceData) -> Dict[int, int]:
    """Depth of every span (root = 0); orphaned parents count as depth 1."""
    by_id = {span.span_id: span for span in trace.spans}
    depths: Dict[int, int] = {}

    def depth_of(span: Span) -> int:
        cached = depths.get(span.span_id)
        if cached is not None:
            return cached
        if span.parent_id is None:
            depths[span.span_id] = 0
            return 0
        parent = by_id.get(span.parent_id)
        value = 1 if parent is None else depth_of(parent) + 1
        depths[span.span_id] = value
        return value

    for span in trace.spans:
        depth_of(span)
    return depths


def phase_breakdown(trace: TraceData) -> Dict[str, float]:
    """Per-phase milliseconds of ``trace``, summing to the root duration."""
    root = trace.root
    if root is None or not root.closed:
        return {}
    lo, hi = root.start_ms, root.end_ms or root.start_ms
    if hi <= lo:
        return {root.phase: 0.0}
    depths = _depths(trace)
    spans = [
        span
        for span in trace.spans
        if span.closed and span.end_ms > lo and span.start_ms < hi
    ]

    boundaries = sorted(
        {lo, hi}
        | {min(max(span.start_ms, lo), hi) for span in spans}
        | {min(max(span.end_ms, lo), hi) for span in spans}
    )
    totals: Dict[str, float] = {}
    for left, right in zip(boundaries, boundaries[1:]):
        if right <= left:
            continue
        winner: Optional[Tuple[int, float, int, int]] = None
        phase = root.phase
        for span in spans:
            if span.start_ms <= left and span.end_ms >= right:
                key = (
                    depths.get(span.span_id, 0),
                    span.start_ms,
                    -_PHASE_RANK.get(span.phase, len(PHASES)),
                    span.span_id,
                )
                if winner is None or key > winner:
                    winner = key
                    phase = span.phase
        totals[phase] = totals.get(phase, 0.0) + (right - left)
    return totals


def reconciliation_error(trace: TraceData) -> float:
    """|sum of phases − end-to-end| as a fraction of end-to-end latency."""
    root = trace.root
    if root is None or not root.closed or root.duration_ms <= 0:
        return 0.0
    total = sum(phase_breakdown(trace).values())
    return abs(total - root.duration_ms) / root.duration_ms


class PhaseAggregate:
    """Per-phase latency distributions accumulated over many traces."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}
        self.traces = 0

    def add_trace(self, trace: TraceData) -> None:
        breakdown = phase_breakdown(trace)
        if not breakdown:
            return
        self.traces += 1
        for phase, ms in breakdown.items():
            self._samples.setdefault(phase, []).append(ms)

    def phases(self) -> List[str]:
        ordered = [phase for phase in PHASES if phase in self._samples]
        extras = sorted(set(self._samples) - set(ordered))
        return ordered + extras

    def summary(self, phase: str) -> LatencySummary:
        return summarize_latencies(self._samples.get(phase, []))

    def total_ms(self, phase: str) -> float:
        return sum(self._samples.get(phase, []))

    def share(self, phase: str) -> float:
        grand = sum(sum(samples) for samples in self._samples.values())
        if grand <= 0:
            return 0.0
        return self.total_ms(phase) / grand
