"""Trace exports: ASCII trace trees, Chrome-trace JSON, full run dumps.

Three consumers, three formats:

* humans in a terminal — :func:`render_trace_tree` draws one transaction's
  causal tree with per-span timing and phases;
* Chrome/Perfetto — :func:`chrome_trace_document` emits the Trace Event
  Format (``ph: "X"`` complete events, microsecond timestamps) so any run
  can be dropped into ``ui.perfetto.dev``;
* machines — :func:`run_document` bundles the digest, every retained trace
  and the flight-recorder timeline into one JSON document (the artifact the
  ``obs-smoke`` CI job uploads and validates).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.attribution import phase_breakdown
from repro.obs.hub import Observability
from repro.obs.trace import Span, TraceData

#: Version stamp of the run/export documents.
EXPORT_VERSION = 1


def render_trace_tree(trace: TraceData) -> str:
    """One transaction's spans as an indented causal tree."""
    by_parent: Dict[Optional[int], List[Span]] = {}
    known = {span.span_id for span in trace.spans}
    for span in trace.spans:
        parent = span.parent_id if span.parent_id in known else None
        by_parent.setdefault(parent, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda span: (span.start_ms, span.span_id))

    lines = [f"trace {trace.trace_id} ({'complete' if trace.complete else 'open'})"]

    def walk(span: Span, indent: int) -> None:
        extent = (
            f"{span.start_ms:.3f}..{span.end_ms:.3f}ms ({span.duration_ms:.3f}ms)"
            if span.closed
            else f"{span.start_ms:.3f}ms.. (open)"
        )
        status = "" if span.status in ("ok", "open") else f" [{span.status}]"
        lines.append(
            f"{'  ' * indent}- {span.name} @{span.node} phase={span.phase} {extent}{status}"
        )
        for child in by_parent.get(span.span_id, []):
            walk(child, indent + 1)

    for root in by_parent.get(None, []):
        walk(root, 1)
    breakdown = phase_breakdown(trace)
    if breakdown:
        parts = ", ".join(f"{phase}={ms:.3f}ms" for phase, ms in sorted(breakdown.items()))
        lines.append(f"  phases: {parts}")
    return "\n".join(lines)


def chrome_trace_events(trace: TraceData) -> List[Dict[str, object]]:
    """One trace's closed spans as Chrome Trace Event Format entries."""
    events: List[Dict[str, object]] = []
    for span in trace.spans:
        if not span.closed:
            continue
        events.append(
            {
                "name": span.name,
                "cat": span.phase,
                "ph": "X",
                # The Trace Event Format wants microseconds.
                "ts": round(span.start_ms * 1000.0, 3),
                "dur": round(span.duration_ms * 1000.0, 3),
                "pid": span.trace_id,
                "tid": span.node,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                },
            }
        )
    return events


def chrome_trace_document(obs: Observability) -> Dict[str, object]:
    """Every retained trace as one loadable Chrome-trace JSON document."""
    events: List[Dict[str, object]] = []
    for trace in obs.tracer.traces():
        events.extend(chrome_trace_events(trace))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "version": EXPORT_VERSION,
            "digest": obs.tracer.digest(),
        },
    }


def run_document(obs: Observability, last_events: int = 256) -> Dict[str, object]:
    """The full machine-readable dump of one observed run."""
    return {
        "version": EXPORT_VERSION,
        "digest": obs.tracer.digest(),
        "spans_recorded": obs.tracer.spans_recorded,
        "traces_evicted": obs.tracer.traces_evicted,
        "traces": [trace.to_dict() for trace in obs.tracer.traces()],
        "flight_recorder": obs.recorder.as_dicts(last_n=last_events),
    }


def write_json(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_run_document(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def trace_from_dict(data: Dict[str, object]) -> TraceData:
    """Rebuild a :class:`TraceData` from a :func:`run_document` entry."""
    trace = TraceData(str(data["trace_id"]))
    trace.complete = bool(data.get("complete", False))
    for entry in data.get("spans", []):
        span = Span(
            span_id=int(entry["span_id"]),
            trace_id=str(entry["trace_id"]),
            parent_id=entry.get("parent_id"),
            name=str(entry["name"]),
            node=str(entry["node"]),
            phase=str(entry["phase"]),
            start_ms=float(entry["start_ms"]),
        )
        if entry.get("end_ms") is not None:
            span.end_ms = float(entry["end_ms"])
            span.status = str(entry.get("status", "ok"))
        trace.spans.append(span)
    return trace
