"""The per-deployment observability hub.

One :class:`Observability` object is created by every
:class:`~repro.simnet.node.SimEnvironment` and shared by all of its nodes:
it owns the tracer, the flight recorder and the enablement flags, all
driven by :class:`~repro.common.config.ObsConfig`.  Instrumentation call
sites guard on the cheap ``tracing`` / ``events`` booleans, so a deployment
with observability off (the default) pays a couple of attribute reads per
message and nothing else.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.config import ObsConfig
from repro.obs import runtime
from repro.obs.attribution import PhaseAggregate
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import Tracer


class Observability:
    """Tracer + flight recorder behind one pair of enablement flags."""

    def __init__(self, config: ObsConfig, clock: Callable[[], float]) -> None:
        self.config = config
        # ``--trace`` (repro.obs.runtime) turns tracing on for deployments
        # whose config left it off — safe because tracing never changes what
        # a run does, only what it records.
        self.tracing = config.tracing_enabled or runtime.trace_mode()
        self.events = config.events_enabled
        self.tracer = Tracer(clock, max_traces=config.max_traces)
        self.recorder = FlightRecorder(clock, capacity=config.ring_capacity)
        #: Live monitor (repro.obs.monitor) when one is attached: receives
        #: every flight-recorder event and every closed span.  ``None`` —
        #: the default — keeps the hub byte-for-byte the passive recorder.
        self.monitor = None
        if self.tracing:
            runtime.note_observability(self)

    def attach_monitor(self, monitor) -> None:
        """Wire ``monitor`` into the event and span-close streams.

        The monitor only *reads* (it folds events into health states and
        spans into timeline windows); it draws no randomness and schedules
        nothing, so attaching one never changes digests or fingerprints.
        """
        self.monitor = monitor
        self.tracer.on_close = monitor.on_span_closed

    def event(
        self,
        node: str,
        kind: str,
        severity: str = "info",
        detail: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a flight-recorder event (no-op when events are disabled)."""
        if self.events:
            recorded = self.recorder.record(node, kind, severity, detail)
            if self.monitor is not None:
                self.monitor.on_obs_event(recorded)

    def phase_aggregate(self) -> PhaseAggregate:
        """Phase attribution over every completed trace still retained."""
        aggregate = PhaseAggregate()
        for trace in self.tracer.completed_traces():
            aggregate.add_trace(trace)
        return aggregate
