"""Declarative service-level objectives over the monitoring timeline.

An :class:`SloSpec` names a per-window metric, a comparison against a
target, and an error budget: the fraction of evaluated windows allowed to
violate the target before the objective as a whole is burned.  Specs are
plain frozen data — experiments declare them, :func:`evaluate_slos` grades
them against a :class:`~repro.obs.monitor.MetricsTimeline`'s windows, and
:func:`render_slo_table` turns the results into the fixed-width tables the
bench harness embeds in figure notes.

Metrics are *window-local* reads of :class:`~repro.obs.monitor.WindowSample`
(no cross-window state), which keeps grading trivially deterministic and
lets a window be judged the moment it closes:

``commit_p99_ms``
    Nearest-rank p99 of the window's end-to-end commit latencies.
``abort_rate``
    Aborted fraction of the window's finished transactions.
``retransmit_rate``
    Reliable-transport retransmits per finished transaction (0 when the
    channel is idle; skipped when nothing finished).
``edge_refresh_rounds``
    Edge refresh rounds the window performed (a *freshness floor*: use
    ``op=">="`` to demand background refresh keeps running, which bounds
    staleness at ``refresh_interval_ms`` + one round).

A window where a metric is undefined (no commits, say) is skipped for that
objective rather than graded — an idle window is not an SLO violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.metrics.collector import percentile
from repro.obs.monitor import WindowSample

#: Comparison operators an SLO may use (``value <op> target`` passes).
_OPS = ("<=", ">=")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective: ``metric <op> target`` per window.

    ``budget_fraction`` is the error budget: the fraction of evaluated
    windows allowed to violate the target while the objective still
    passes.  Burn rate is the observed violating fraction divided by the
    budget — above 1.0 the budget is exhausted.
    """

    name: str
    metric: str
    op: str
    target: float
    budget_fraction: float = 0.05

    def validate(self) -> "SloSpec":
        if self.op not in _OPS:
            raise ConfigurationError(f"slo {self.name}: op must be one of {_OPS}")
        if self.metric not in _METRICS:
            known = ", ".join(sorted(_METRICS))
            raise ConfigurationError(
                f"slo {self.name}: unknown metric {self.metric!r} (known: {known})"
            )
        if not 0.0 <= self.budget_fraction <= 1.0:
            raise ConfigurationError(
                f"slo {self.name}: budget_fraction must be within [0, 1]"
            )
        return self

    def passes(self, value: float) -> bool:
        return value <= self.target if self.op == "<=" else value >= self.target


@dataclass
class SloResult:
    """How one objective fared over a timeline's evaluated windows."""

    spec: SloSpec
    windows_evaluated: int
    violations: int
    worst_value: Optional[float]

    @property
    def violation_fraction(self) -> float:
        if self.windows_evaluated == 0:
            return 0.0
        return self.violations / self.windows_evaluated

    @property
    def burn_rate(self) -> float:
        """Observed violating fraction over the allowed fraction.

        A zero budget means any violation burns infinitely hard; that is
        represented by the violation count itself scaled large, keeping the
        value finite for tables.
        """
        if self.spec.budget_fraction <= 0.0:
            return float(self.violations * 1000)
        return self.violation_fraction / self.spec.budget_fraction

    @property
    def ok(self) -> bool:
        return self.burn_rate <= 1.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "metric": self.spec.metric,
            "op": self.spec.op,
            "target": self.spec.target,
            "budget_fraction": self.spec.budget_fraction,
            "windows_evaluated": self.windows_evaluated,
            "violations": self.violations,
            "violation_fraction": self.violation_fraction,
            "burn_rate": self.burn_rate,
            "worst_value": self.worst_value,
            "ok": self.ok,
        }


def _metric_commit_p99(window: WindowSample) -> Optional[float]:
    if not window.latencies:
        return None
    return percentile(window.latencies, 0.99)


def _metric_abort_rate(window: WindowSample) -> Optional[float]:
    finished = window.commits + window.aborts
    if finished == 0:
        return None
    return window.aborts / finished


def _metric_retransmit_rate(window: WindowSample) -> Optional[float]:
    finished = window.commits + window.aborts
    if finished == 0:
        return None
    return window.transport.get("messages_retransmitted", 0) / finished


def _metric_edge_refresh_rounds(window: WindowSample) -> Optional[float]:
    return float(window.counters.get("edge_refresh_rounds", 0))


_METRICS = {
    "commit_p99_ms": _metric_commit_p99,
    "abort_rate": _metric_abort_rate,
    "retransmit_rate": _metric_retransmit_rate,
    "edge_refresh_rounds": _metric_edge_refresh_rounds,
}


def metric_names() -> List[str]:
    """The metrics an :class:`SloSpec` may reference."""
    return sorted(_METRICS)


def default_slos() -> List[SloSpec]:
    """The stock objective set bench experiments grade against.

    Targets are calibrated to what a healthy (fault-free) contended run of
    this simulator actually does: windows with a handful of finished
    transactions can legitimately see majority-abort under contention, so
    the abort objective budgets for sparse-window noise instead of
    pretending per-window abort rates behave like long-run averages.
    """
    return [
        SloSpec("commit-p99", "commit_p99_ms", "<=", 400.0, budget_fraction=0.10),
        SloSpec("abort-rate", "abort_rate", "<=", 0.60, budget_fraction=0.20),
        SloSpec("retransmit-rate", "retransmit_rate", "<=", 1.0, budget_fraction=0.10),
    ]


def evaluate_slos(
    windows: Sequence[WindowSample], specs: Optional[Sequence[SloSpec]] = None
) -> List[SloResult]:
    """Grade ``specs`` (default: :func:`default_slos`) window by window."""
    if specs is None:
        specs = default_slos()
    results: List[SloResult] = []
    for spec in specs:
        spec.validate()
        metric = _METRICS[spec.metric]
        evaluated = 0
        violations = 0
        worst: Optional[float] = None
        for window in windows:
            value = metric(window)
            if value is None:
                continue
            evaluated += 1
            if not spec.passes(value):
                violations += 1
            if worst is None:
                worst = value
            elif spec.op == "<=":
                worst = max(worst, value)
            else:
                worst = min(worst, value)
        results.append(SloResult(spec, evaluated, violations, worst))
    return results


def render_slo_table(results: Sequence[SloResult]) -> str:
    """Fixed-width SLO report for bench notes and the obs CLI."""
    header = (
        f"{'slo':<18} {'objective':<28} {'windows':>7} "
        f"{'viol':>5} {'burn':>6} {'worst':>10} {'ok':>4}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        spec = result.spec
        objective = f"{spec.metric} {spec.op} {spec.target:g}"
        worst = "-" if result.worst_value is None else f"{result.worst_value:.2f}"
        lines.append(
            f"{spec.name:<18} {objective:<28} {result.windows_evaluated:>7} "
            f"{result.violations:>5} {result.burn_rate:>6.2f} {worst:>10} "
            f"{'yes' if result.ok else 'NO':>4}"
        )
    return "\n".join(lines)
