"""Process-level handle on the most recent traced deployment.

The bench CLI's ``--trace`` flag must reach inside experiments that build
their systems internally; rather than thread a parameter through every
experiment signature, the flag flips :func:`enable_trace_mode` and each
:class:`~repro.obs.hub.Observability` created with tracing on registers
itself here.  After an experiment finishes, the CLI exports whatever traced
deployment ran last.  This is deliberately a tiny, explicit registry — not
a general global: nothing in the protocol stack reads it.
"""

from __future__ import annotations

from typing import Optional

_TRACE_MODE = False
_LAST: Optional[object] = None


def enable_trace_mode(enabled: bool = True) -> None:
    """Ask subsequently built bench deployments to enable tracing."""
    global _TRACE_MODE
    _TRACE_MODE = enabled


def trace_mode() -> bool:
    return _TRACE_MODE


def note_observability(obs: object) -> None:
    """Called by every tracing-enabled Observability as it is created."""
    global _LAST
    _LAST = obs


def last_observability() -> Optional[object]:
    """The most recently created tracing-enabled Observability (or None)."""
    return _LAST


def reset() -> None:
    global _LAST, _TRACE_MODE
    _LAST = None
    _TRACE_MODE = False
