"""The flight recorder: bounded per-node rings of typed protocol events.

Latency answers *where time went*; the flight recorder answers *what
happened* — view changes, checkpoints, recoveries, crashes, fault
injections, cache refreshes — each stamped with simulated time, a severity
and a small detail mapping.  Every node writes into its own bounded ring
buffer, so a long run keeps only the recent past (exactly what a post-mortem
needs) at O(capacity) memory per node.

On a chaos oracle failure the runner dumps the merged last-N timeline into
the ``chaos-repro-<seed>.json`` artifact next to the failing transaction's
trace; the trace-completeness oracle also reads these events to separate
legitimate reply loss (a recorded drop fault, a crash, a view change) from
a protocol bug that silently swallowed a reply.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Iterable, List, Mapping, Optional

#: Recognised severities, mildest first.
SEVERITIES = ("debug", "info", "warn", "error")


class ObsEvent:
    """One structured protocol event."""

    __slots__ = ("seq", "time_ms", "node", "kind", "severity", "detail")

    def __init__(
        self,
        seq: int,
        time_ms: float,
        node: str,
        kind: str,
        severity: str,
        detail: Mapping[str, object],
    ) -> None:
        self.seq = seq
        self.time_ms = time_ms
        self.node = node
        self.kind = kind
        self.severity = severity
        self.detail = dict(detail)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "time_ms": self.time_ms,
            "node": self.node,
            "kind": self.kind,
            "severity": self.severity,
            "detail": dict(self.detail),
        }


class FlightRecorder:
    """Bounded per-node event rings with a mergeable global timeline."""

    def __init__(self, clock: Callable[[], float], capacity: int = 256) -> None:
        self._clock = clock
        self.capacity = max(1, capacity)
        self._rings: "OrderedDict[str, Deque[ObsEvent]]" = OrderedDict()
        self._seq = itertools.count(1)
        self.events_recorded = 0

    def record(
        self,
        node: str,
        kind: str,
        severity: str = "info",
        detail: Optional[Mapping[str, object]] = None,
    ) -> ObsEvent:
        """Append one event to ``node``'s ring (evicting its oldest if full)."""
        event = ObsEvent(
            next(self._seq), self._clock(), node, kind, severity, detail or {}
        )
        ring = self._rings.get(node)
        if ring is None:
            ring = deque(maxlen=self.capacity)
            self._rings[node] = ring
        ring.append(event)
        self.events_recorded += 1
        return event

    def node_events(self, node: str) -> List[ObsEvent]:
        return list(self._rings.get(node, ()))

    def nodes(self) -> Iterable[str]:
        return self._rings.keys()

    def timeline(self, last_n: Optional[int] = None) -> List[ObsEvent]:
        """All retained events merged across nodes, in recording order.

        The global ``seq`` counter makes the merge total and deterministic
        even when several events share one simulated timestamp.
        """
        merged = sorted(
            (event for ring in self._rings.values() for event in ring),
            key=lambda event: event.seq,
        )
        if last_n is not None:
            merged = merged[-last_n:]
        return merged

    def events_of_kind(self, kind: str) -> List[ObsEvent]:
        return [event for event in self.timeline() if event.kind == kind]

    def as_dicts(self, last_n: Optional[int] = None) -> List[Dict[str, object]]:
        return [event.to_dict() for event in self.timeline(last_n)]
