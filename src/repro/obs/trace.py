"""Causal spans and the deterministic trace store.

A *trace* is the causal history of one transaction: the client opens a root
span, a :class:`TraceContext` rides on every message the transaction
touches, and every node that queues, handles or forwards it opens child
spans stamped with simulated time and a phase tag
(:mod:`repro.obs.phases`).

Determinism is the design constraint that shapes everything here:

* span ids are a per-tracer counter, so identical event orders yield
  identical ids;
* spans are *folded into a streaming digest* the moment they close, in
  close order — the digest therefore covers every span ever recorded even
  after old traces are evicted from the bounded retention window, and the
  same seed always yields the same digest (``tests/obs`` pins this as a
  regression oracle);
* the tracer draws no randomness and schedules no simulator events, so
  enabling tracing cannot perturb a run — chaos fingerprints and bench
  numbers are identical with tracing on or off.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.crypto.hashing import sha256_hex, stable_encode

#: Digest the stream starts from, so an empty tracer has a defined digest.
_SEED_DIGEST = sha256_hex(b"repro.obs.trace.v1")


@dataclass(frozen=True)
class TraceContext:
    """What rides on a message: the trace and the sender-side parent span."""

    trace_id: str
    span_id: int


class Span:
    """One timed, phase-tagged interval of a trace."""

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "node",
        "phase",
        "start_ms",
        "end_ms",
        "status",
    )

    def __init__(
        self,
        span_id: int,
        trace_id: str,
        parent_id: Optional[int],
        name: str,
        node: str,
        phase: str,
        start_ms: float,
    ) -> None:
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.phase = phase
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.status = "open"

    @property
    def closed(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        return 0.0 if self.end_ms is None else self.end_ms - self.start_ms

    def context(self) -> TraceContext:
        """The context a message carries when this span is its causal parent."""
        return TraceContext(self.trace_id, self.span_id)

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "phase": self.phase,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "status": self.status,
        }


class TraceData:
    """All spans of one trace, in recording order."""

    __slots__ = ("trace_id", "spans", "complete")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: List[Span] = []
        self.complete = False

    @property
    def root(self) -> Optional[Span]:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def find(self, name: str) -> Optional[Span]:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "complete": self.complete,
            "spans": [span.to_dict() for span in self.spans],
        }


class Tracer:
    """Creates spans, retains a bounded window of traces, streams a digest."""

    def __init__(self, clock: Callable[[], float], max_traces: int = 2048) -> None:
        self._clock = clock
        self._max_traces = max(1, max_traces)
        self._traces: "OrderedDict[str, TraceData]" = OrderedDict()
        self._ids = itertools.count(1)
        self._digest = _SEED_DIGEST
        self.spans_recorded = 0
        self.traces_evicted = 0
        #: Optional close hook: called with each span right after it folds
        #: into the digest.  The live monitor (repro.obs.monitor) uses it to
        #: bucket span durations into timeline windows; the hook runs after
        #: all tracer bookkeeping, so observers cannot perturb the digest.
        self.on_close: Optional[Callable[[Span], None]] = None

    # -- recording ---------------------------------------------------------

    def begin_trace(self, trace_id: str, name: str, node: str, phase: str = "client") -> Span:
        """Open a trace's root span (client-side, at transaction start)."""
        return self._new_span(trace_id, None, name, node, phase, self._clock())

    def span(
        self,
        trace_id: str,
        parent_id: Optional[int],
        name: str,
        node: str,
        phase: str,
        start_ms: Optional[float] = None,
    ) -> Span:
        """Open a child span; close it later with :meth:`finish`."""
        start = self._clock() if start_ms is None else start_ms
        return self._new_span(trace_id, parent_id, name, node, phase, start)

    def add_span(
        self,
        trace_id: str,
        parent_id: Optional[int],
        name: str,
        node: str,
        phase: str,
        start_ms: float,
        end_ms: float,
    ) -> Span:
        """Record a span whose extent is already known (queue/net/handle)."""
        span = self._new_span(trace_id, parent_id, name, node, phase, start_ms)
        self.finish(span, end_ms=end_ms)
        return span

    def finish(self, span: Span, end_ms: Optional[float] = None, status: str = "ok") -> None:
        """Close ``span`` and fold it into the streaming digest."""
        if span.closed:
            return
        span.end_ms = self._clock() if end_ms is None else end_ms
        span.status = status
        self._fold(span)
        if span.parent_id is None:
            trace = self._traces.get(span.trace_id)
            if trace is not None:
                trace.complete = True
            self._evict()
        if self.on_close is not None:
            self.on_close(span)

    # -- queries -----------------------------------------------------------

    def digest(self) -> str:
        """Streaming digest over every span closed so far (eviction-proof)."""
        return self._digest

    def trace(self, trace_id: str) -> Optional[TraceData]:
        return self._traces.get(trace_id)

    def traces(self) -> Iterable[TraceData]:
        return self._traces.values()

    def completed_traces(self) -> List[TraceData]:
        return [trace for trace in self._traces.values() if trace.complete]

    def __len__(self) -> int:
        return len(self._traces)

    # -- internals ---------------------------------------------------------

    def _new_span(
        self,
        trace_id: str,
        parent_id: Optional[int],
        name: str,
        node: str,
        phase: str,
        start_ms: float,
    ) -> Span:
        span = Span(next(self._ids), trace_id, parent_id, name, node, phase, start_ms)
        trace = self._traces.get(trace_id)
        if trace is None:
            trace = TraceData(trace_id)
            self._traces[trace_id] = trace
        trace.spans.append(span)
        self.spans_recorded += 1
        return span

    def _fold(self, span: Span) -> None:
        record = (
            self._digest,
            span.trace_id,
            span.span_id,
            span.parent_id if span.parent_id is not None else 0,
            span.name,
            span.node,
            span.phase,
            span.start_ms,
            span.end_ms,
            span.status,
        )
        self._digest = sha256_hex(stable_encode(record))

    def _evict(self) -> None:
        if len(self._traces) <= self._max_traces:
            return
        # Oldest-first, but never evict a trace that is still open: its late
        # spans must land in the same TraceData (digest order would survive
        # either way, but the retained window should hold whole traces).
        for trace_id in list(self._traces):
            if len(self._traces) <= self._max_traces:
                break
            if self._traces[trace_id].complete:
                del self._traces[trace_id]
                self.traces_evicted += 1
