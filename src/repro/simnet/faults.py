"""Transport-level fault injection.

Byzantine behaviour shows up in two places in the reproduction: protocol-level
misbehaviour (a lying leader or replica, implemented in
:mod:`repro.bft.byzantine` and exercised by tests) and transport-level faults
injected here — dropped, delayed or tampered messages.  Filters are installed
on the :class:`~repro.simnet.network.Network` and apply to matching traffic.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

from repro.common.ids import NodeId
from repro.simnet.messages import Message
from repro.simnet.network import Network


@dataclass
class FaultRule:
    """Selects the traffic a fault applies to.

    ``None`` fields match everything; ``probability`` applies the fault to a
    random subset of matching messages.
    """

    src: Optional[NodeId] = None
    dst: Optional[NodeId] = None
    message_type: Optional[Type[Message]] = None
    probability: float = 1.0

    def matches(self, src: NodeId, dst: NodeId, message: Message, rng: random.Random) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.message_type is not None and not isinstance(message, self.message_type):
            return False
        if self.probability < 1.0 and rng.random() > self.probability:
            return False
        return True


@dataclass
class _InstalledFault:
    rule: FaultRule
    action: Callable[[Message], Optional[Message]]
    applied: int = 0
    #: Optional side-effect hook (see :meth:`FaultInjector.observe`).
    observer: Optional[Callable[[NodeId, NodeId, Message], None]] = None


class FaultInjector:
    """Installs and tracks transport faults on a network."""

    def __init__(self, network: Network, seed: int = 13) -> None:
        self._network = network
        self._rng = random.Random(seed)
        self._faults: List[_InstalledFault] = []
        self._crashed: Dict[NodeId, List[_InstalledFault]] = {}
        network.add_filter(self._filter)

    # -- installation -------------------------------------------------------

    def drop(self, rule: FaultRule) -> _InstalledFault:
        """Drop matching messages."""
        return self._install(rule, lambda message: None)

    def tamper(
        self, rule: FaultRule, mutate: Callable[[Message], Message]
    ) -> _InstalledFault:
        """Replace matching messages with ``mutate(copy)`` of the original."""

        def action(message: Message) -> Optional[Message]:
            return mutate(copy.deepcopy(message))

        return self._install(rule, action)

    def observe(
        self, rule: FaultRule, callback: Callable[[NodeId, NodeId, Message], None]
    ) -> _InstalledFault:
        """Watch matching traffic without altering it.

        ``callback(src, dst, message)`` runs at send time for every matching
        message, which lets tests trigger a fault at an exact protocol point
        — e.g. crash a coordinator's leader the moment the final
        ``ParticipantPrepared`` vote is on the wire.  Note that a callback
        which installs a crash affects the *observed message too* (it has not
        been delivered yet): crashing the destination here models "the
        message never arrived".
        """

        def action(message: Message) -> Optional[Message]:
            # The observer's note of src/dst is bound per message in _filter.
            return message

        fault = _InstalledFault(rule=rule, action=action)
        fault.observer = callback
        self._faults.append(fault)
        return fault

    def isolate(self, node: NodeId) -> List[_InstalledFault]:
        """Drop all traffic to and from ``node`` (crash/partition emulation)."""
        return [self.drop(FaultRule(src=node)), self.drop(FaultRule(dst=node))]

    def crash(self, node: NodeId) -> List[_InstalledFault]:
        """Crash ``node``: drop all its traffic until :meth:`restart`.

        Unlike a bare :meth:`isolate`, the installed faults are remembered so
        the crash can be lifted later — the crash-then-restart fault used by
        the recovery benchmarks and tests (``repro.recovery``).
        """
        if node in self._crashed:
            return self._crashed[node]
        faults = self.isolate(node)
        self._crashed[node] = faults
        return faults

    def restart(self, node: NodeId) -> None:
        """Lift a previous :meth:`crash`; the node's traffic flows again."""
        for fault in self._crashed.pop(node, []):
            self.remove(fault)

    def is_crashed(self, node: NodeId) -> bool:
        return node in self._crashed

    def remove(self, fault: _InstalledFault) -> None:
        """Uninstall one previously installed fault (no-op when already gone)."""
        if fault in self._faults:
            self._faults.remove(fault)

    def clear(self) -> None:
        self._faults.clear()
        self._crashed.clear()

    def _install(
        self, rule: FaultRule, action: Callable[[Message], Optional[Message]]
    ) -> _InstalledFault:
        fault = _InstalledFault(rule=rule, action=action)
        self._faults.append(fault)
        return fault

    # -- filter -------------------------------------------------------------

    def _filter(self, src: NodeId, dst: NodeId, message: Message) -> Optional[Message]:
        current: Optional[Message] = message
        # Plain index iteration on purpose: an observer callback may install
        # new faults (e.g. a crash) that must already apply to this message.
        for fault in self._faults:
            if current is None:
                return None
            if fault.rule.matches(src, dst, current, self._rng):
                fault.applied += 1
                if fault.observer is not None:
                    fault.observer(src, dst, current)
                current = fault.action(current)
        return current
