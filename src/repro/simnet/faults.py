"""Transport-level fault injection.

Byzantine behaviour shows up in two places in the reproduction: protocol-level
misbehaviour (a lying leader or replica, implemented in
:mod:`repro.bft.byzantine` and exercised by tests) and transport-level faults
injected here — dropped, delayed or tampered messages.  Filters are installed
on the :class:`~repro.simnet.network.Network` and apply to matching traffic.

Faults can be installed directly (tests poking one scenario) or as a
*scheduled fault plan* (:class:`FaultSchedule`): timed windows during which a
fault applies, driven by the simulator clock.  The chaos engine
(:mod:`repro.chaos`) composes whole runs out of scheduled plans, which is why
every random draw in this module goes through one explicit
:class:`random.Random` — replaying a seed must reproduce the exact same
drop/delay decisions.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

from repro.common.ids import NodeId
from repro.simnet.messages import Message
from repro.simnet.network import Network
from repro.simnet.reliable import ReliableEnvelope


@dataclass
class FaultRule:
    """Selects the traffic a fault applies to.

    ``None`` fields match everything; ``probability`` applies the fault to a
    random subset of matching messages.
    """

    src: Optional[NodeId] = None
    dst: Optional[NodeId] = None
    message_type: Optional[Type[Message]] = None
    probability: float = 1.0

    def matches(self, src: NodeId, dst: NodeId, message: Message, rng: random.Random) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.message_type is not None and not self._type_matches(message):
            return False
        if self.probability < 1.0 and rng.random() > self.probability:
            return False
        return True

    def _type_matches(self, message: Message) -> bool:
        """Type check with reliable-envelope look-through.

        A rule targeting a protocol type (say ``Commit``) keeps matching when
        the reliable channel wraps that traffic in a
        :class:`~repro.simnet.reliable.ReliableEnvelope` — faults select the
        protocol message they mean, whatever the transport framing.
        """
        if isinstance(message, self.message_type):
            return True
        return isinstance(message, ReliableEnvelope) and isinstance(
            message.payload, self.message_type
        )


@dataclass
class _InstalledFault:
    rule: FaultRule
    action: Callable[[Message], Optional[Message]]
    applied: int = 0
    #: Optional side-effect hook (see :meth:`FaultInjector.observe`).
    observer: Optional[Callable[[NodeId, NodeId, Message], None]] = None
    #: Optional route-aware action (sees src/dst; see :meth:`FaultInjector.delay`).
    route_action: Optional[
        Callable[[NodeId, NodeId, Message], Optional[Message]]
    ] = None


class FaultInjector:
    """Installs and tracks transport faults on a network.

    All probabilistic decisions draw from one :class:`random.Random`: pass
    ``rng`` to share a generator with the caller (the chaos engine threads a
    single seeded generator through the whole run so replays are
    bit-identical), or ``seed`` to let the injector own one.
    """

    def __init__(
        self,
        network: Network,
        seed: int = 13,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._network = network
        self._rng = rng if rng is not None else random.Random(seed)
        self._faults: List[_InstalledFault] = []
        self._crashed: Dict[NodeId, List[_InstalledFault]] = {}
        network.add_filter(self._filter)

    # -- installation -------------------------------------------------------

    def drop(self, rule: FaultRule) -> _InstalledFault:
        """Drop matching messages."""
        return self._install(rule, lambda message: None)

    def tamper(
        self, rule: FaultRule, mutate: Callable[[Message], Message]
    ) -> _InstalledFault:
        """Replace matching messages with ``mutate(copy)`` of the original.

        ``mutate`` always receives the *protocol* message: when the traffic
        travels inside a reliable-channel envelope, the copied payload is
        mutated and re-wrapped, so byzantine behaviours written against
        protocol types keep working whatever the transport framing.
        """

        def action(message: Message) -> Optional[Message]:
            clone = copy.deepcopy(message)
            if isinstance(clone, ReliableEnvelope):
                clone.payload = mutate(clone.payload)
                return clone
            return mutate(clone)

        return self._install(rule, action)

    def observe(
        self, rule: FaultRule, callback: Callable[[NodeId, NodeId, Message], None]
    ) -> _InstalledFault:
        """Watch matching traffic without altering it.

        ``callback(src, dst, message)`` runs at send time for every matching
        message, which lets tests trigger a fault at an exact protocol point
        — e.g. crash a coordinator's leader the moment the final
        ``ParticipantPrepared`` vote is on the wire.  Note that a callback
        which installs a crash affects the *observed message too* (it has not
        been delivered yet): crashing the destination here models "the
        message never arrived".
        """

        def action(message: Message) -> Optional[Message]:
            # The observer's note of src/dst is bound per message in _filter.
            return message

        fault = _InstalledFault(rule=rule, action=action)
        fault.observer = callback
        self._faults.append(fault)
        return fault

    def delay(self, rule: FaultRule, extra_ms: float) -> _InstalledFault:
        """Hold matching messages back for ``extra_ms`` before delivery.

        Implemented by swallowing the message and re-injecting it after the
        extra delay through :meth:`Network.send_unfiltered`, so the held
        message is delivered with its normal link latency on top of
        ``extra_ms`` and is not re-examined by any fault (no double delays,
        no second drop chance).  Delivery order between delayed and
        undelayed traffic can therefore invert — exactly the reordering a
        slow link produces.  Statistics: a delayed-then-delivered message
        counts once in ``sent``, once in ``delayed``, never in ``dropped``
        (the swallow's drop increment is reclassified here).
        """
        if extra_ms < 0:
            raise ValueError("delay extra_ms must be non-negative")
        fault = _InstalledFault(rule=rule, action=lambda message: message)

        def route_action(src: NodeId, dst: NodeId, message: Message) -> Optional[Message]:
            def reinject() -> None:
                # Returning None below makes send() count a drop; this
                # message is delivered after all, so reclassify it.
                self._network.stats.messages_dropped -= 1
                self._network.stats.messages_delayed += 1
                self._network.send_unfiltered(src, dst, message)

            self._obs_event("message-delayed", src, dst, message, extra_ms=extra_ms)
            self._network.simulator.schedule(extra_ms, reinject)
            return None

        fault.route_action = route_action
        self._faults.append(fault)
        return fault

    def isolate(self, node: NodeId) -> List[_InstalledFault]:
        """Drop all traffic to and from ``node`` (crash/partition emulation)."""
        return [self.drop(FaultRule(src=node)), self.drop(FaultRule(dst=node))]

    def crash(self, node: NodeId) -> List[_InstalledFault]:
        """Crash ``node``: drop all its traffic until :meth:`restart`.

        Unlike a bare :meth:`isolate`, the installed faults are remembered so
        the crash can be lifted later — the crash-then-restart fault used by
        the recovery benchmarks and tests (``repro.recovery``).
        """
        if node in self._crashed:
            return self._crashed[node]
        faults = self.isolate(node)
        self._crashed[node] = faults
        return faults

    def restart(self, node: NodeId) -> None:
        """Lift a previous :meth:`crash`; the node's traffic flows again."""
        for fault in self._crashed.pop(node, []):
            self.remove(fault)

    def is_crashed(self, node: NodeId) -> bool:
        return node in self._crashed

    def remove(self, fault: _InstalledFault) -> None:
        """Uninstall one previously installed fault (no-op when already gone)."""
        if fault in self._faults:
            self._faults.remove(fault)

    def clear(self) -> None:
        self._faults.clear()
        self._crashed.clear()

    def _install(
        self, rule: FaultRule, action: Callable[[Message], Optional[Message]]
    ) -> _InstalledFault:
        fault = _InstalledFault(rule=rule, action=action)
        self._faults.append(fault)
        return fault

    def _obs_event(
        self,
        kind: str,
        src: NodeId,
        dst: NodeId,
        message: Message,
        extra_ms: Optional[float] = None,
    ) -> None:
        """Record an injected fault on the flight recorder (if one is wired).

        The carried ``trace_id`` is what lets the trace-completeness oracle
        distinguish "reply trace cut short by an injected fault" from a
        genuine dropped-reply bug.
        """
        obs = getattr(self._network, "obs", None)
        if obs is None:
            return
        detail: Dict[str, object] = {
            "src": str(src),
            "dst": str(dst),
            "type": message.type_name,
            "trace_id": message.trace.trace_id if message.trace is not None else None,
        }
        if extra_ms is not None:
            detail["extra_ms"] = extra_ms
        obs.event("network", kind, "warn", detail)

    # -- filter -------------------------------------------------------------

    def _filter(self, src: NodeId, dst: NodeId, message: Message) -> Optional[Message]:
        current: Optional[Message] = message
        # Plain index iteration on purpose: an observer callback may install
        # new faults (e.g. a crash) that must already apply to this message.
        for fault in self._faults:
            if current is None:
                return None
            if fault.rule.matches(src, dst, current, self._rng):
                fault.applied += 1
                if fault.observer is not None:
                    observed = (
                        current.payload
                        if isinstance(current, ReliableEnvelope)
                        else current
                    )
                    fault.observer(src, dst, observed)
                if fault.route_action is not None:
                    current = fault.route_action(src, dst, current)
                else:
                    current = fault.action(current)
                    if current is None:
                        self._obs_event("message-dropped", src, dst, message)
        return current


@dataclass
class _ScheduledWindow:
    """One entry of a :class:`FaultSchedule` (for introspection in tests)."""

    at_ms: float
    until_ms: Optional[float]
    description: str


class FaultSchedule:
    """A timed fault plan: faults that install and uninstall themselves.

    Each entry opens at an absolute simulated time and (optionally) closes
    again after a window, driven by the simulator clock — the building block
    for scripted fault scenarios and for the chaos engine's replayable fault
    plans.  Faults installed by a window that never closes stay active until
    :meth:`FaultInjector.clear`.
    """

    def __init__(self, injector: FaultInjector, simulator) -> None:
        self._injector = injector
        self._simulator = simulator
        self.windows: List[_ScheduledWindow] = []

    # -- generic -------------------------------------------------------------

    def window(
        self,
        at_ms: float,
        install: Callable[[FaultInjector], object],
        until_ms: Optional[float] = None,
        description: str = "fault",
    ) -> _ScheduledWindow:
        """Schedule ``install(injector)`` at ``at_ms``; undo at ``until_ms``.

        ``install`` returns the installed fault (or a list of faults), which
        are removed when the window closes.
        """
        if until_ms is not None and until_ms < at_ms:
            raise ValueError("fault window must close after it opens")
        entry = _ScheduledWindow(at_ms=at_ms, until_ms=until_ms, description=description)
        self.windows.append(entry)

        def opened() -> None:
            installed = install(self._injector)
            if until_ms is None:
                return
            faults = installed if isinstance(installed, list) else [installed]

            def closed() -> None:
                for fault in faults:
                    self._injector.remove(fault)

            self._simulator.schedule_at(until_ms, closed)

        self._simulator.schedule_at(at_ms, opened)
        return entry

    # -- convenience wrappers ------------------------------------------------

    def drop_window(
        self, at_ms: float, rule: FaultRule, until_ms: Optional[float] = None
    ) -> _ScheduledWindow:
        """Drop matching messages between ``at_ms`` and ``until_ms``."""
        return self.window(
            at_ms,
            lambda injector: injector.drop(rule),
            until_ms=until_ms,
            description="drop",
        )

    def delay_window(
        self,
        at_ms: float,
        rule: FaultRule,
        extra_ms: float,
        until_ms: Optional[float] = None,
    ) -> _ScheduledWindow:
        """Delay matching messages by ``extra_ms`` between ``at_ms`` and ``until_ms``."""
        return self.window(
            at_ms,
            lambda injector: injector.delay(rule, extra_ms),
            until_ms=until_ms,
            description="delay",
        )
