"""Discrete-event simulator.

The whole TransEdge deployment — replicas, leaders, clients and the network
between them — runs on a single event loop driven by simulated time.  Time is
a float number of milliseconds.  Events are callbacks scheduled at absolute
times; ties are broken by insertion order so executions are deterministic for
a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self._event.cancelled or self._event.fired:
            return
        self._event.cancelled = True
        self._simulator._pending -= 1


class Simulator:
    """A minimal, deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._pending = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live events still scheduled — a counter, not an O(n) heap scan."""
        return self._pending

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule an event {delay_ms}ms in the past")
        return self.schedule_at(self._now + delay_ms, callback)

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time_ms``."""
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule at {time_ms}ms; simulated time is already {self._now}ms"
            )
        event = _ScheduledEvent(time=time_ms, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._queue, event)
        self._pending += 1
        return EventHandle(event, self)

    def run(
        self,
        until_ms: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Process events until the queue drains, ``until_ms`` or ``max_events``.

        Returns the number of events processed by this call.  When
        ``until_ms`` is given, the clock is advanced to ``until_ms`` even if
        the queue drained earlier, so back-to-back ``run`` calls observe a
        monotonically advancing clock.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if until_ms is not None and event.time > until_ms:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                event.fired = True
                self._pending -= 1
                self._now = event.time
                event.callback()
                processed += 1
                self._events_processed += 1
        finally:
            self._running = False
        if until_ms is not None and until_ms > self._now:
            self._now = until_ms
        return processed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain (bounded by ``max_events`` as a backstop)."""
        processed = self.run(max_events=max_events)
        if self._queue and processed >= max_events:
            raise SimulationError(
                f"simulation did not become idle within {max_events} events"
            )
        return processed
