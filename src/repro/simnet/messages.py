"""Base message classes and request/reply correlation helpers.

Protocol packages (``repro.bft``, ``repro.core``, ``repro.baselines``) define
their concrete messages as dataclasses deriving from :class:`Message`.
Client-side workflows use the request/reply pair: a :class:`RequestMessage`
carries a unique ``request_id`` that the responder copies into its
:class:`ReplyMessage`, which is how the process framework in
:mod:`repro.simnet.proc` resumes a waiting client coroutine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass
class Message:
    """Base class of every simulated network message."""

    @property
    def type_name(self) -> str:
        """Short name used for dispatch and network statistics."""
        return type(self).__name__


_request_counter = itertools.count()


def next_request_id() -> str:
    """Return a process-unique request identifier."""
    return f"req-{next(_request_counter)}"


@dataclass
class RequestMessage(Message):
    """A message that expects a correlated reply."""

    request_id: str = field(default_factory=next_request_id, kw_only=True)


@dataclass
class ReplyMessage(Message):
    """A message answering a prior :class:`RequestMessage`."""

    request_id: str = field(kw_only=True)
