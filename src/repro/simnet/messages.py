"""Base message classes and request/reply correlation helpers.

Protocol packages (``repro.bft``, ``repro.core``, ``repro.baselines``) define
their concrete messages as dataclasses deriving from :class:`Message`.
Client-side workflows use the request/reply pair: a :class:`RequestMessage`
carries a unique ``request_id`` that the responder copies into its
:class:`ReplyMessage`, which is how the process framework in
:mod:`repro.simnet.proc` resumes a waiting client coroutine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.trace import TraceContext


@dataclass
class Message:
    """Base class of every simulated network message.

    ``trace`` is the causal-tracing context (:mod:`repro.obs`) the message
    carries from sender to receiver.  It is excluded from equality and repr
    so protocol semantics are untouched; when tracing is disabled it stays
    ``None`` and costs nothing.  Re-sent messages (client failover re-uses
    request objects) keep their original context — same transaction, same
    trace.
    """

    trace: "Optional[TraceContext]" = field(
        default=None, kw_only=True, compare=False, repr=False
    )

    @property
    def type_name(self) -> str:
        """Short name used for dispatch and network statistics."""
        return type(self).__name__


_request_counter = itertools.count()


def next_request_id() -> str:
    """Return a process-unique request identifier."""
    return f"req-{next(_request_counter)}"


@dataclass
class RequestMessage(Message):
    """A message that expects a correlated reply."""

    request_id: str = field(default_factory=next_request_id, kw_only=True)


@dataclass
class ReplyMessage(Message):
    """A message answering a prior :class:`RequestMessage`."""

    request_id: str = field(kw_only=True)
