"""Simulated nodes: shared environment, processing-cost model and dispatch.

A :class:`SimNode` is an actor attached to the network.  Incoming messages
are not handled instantaneously: each node is a single-server FIFO queue with
a per-message processing cost, which is what makes simulated throughput
finite and sensitive to protocol design (a leader that must verify more
signatures or run more conflict checks per transaction serves fewer
transactions per simulated second).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Type

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.common.ids import NodeId
from repro.crypto.signatures import KeyRegistry, NodeVerifier, Signer, make_signer
from repro.obs.hub import Observability
from repro.obs.phases import phase_for
from repro.obs.trace import Span, TraceContext
from repro.simnet.messages import Message
from repro.simnet.network import Network
from repro.simnet.reliable import ReliableAck, ReliableEnvelope, ReliableTransport
from repro.simnet.simulator import Simulator


class SimEnvironment:
    """Everything a node needs to participate in the simulation.

    One environment is shared by all nodes of a deployment: the event loop,
    the network, the system configuration, the PKI registry and a seeded
    random generator (so whole-system runs are reproducible).
    """

    def __init__(
        self,
        config: SystemConfig,
        simulator: Optional[Simulator] = None,
        network: Optional[Network] = None,
        registry: Optional[KeyRegistry] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        from repro.simnet.latency import build_latency_model

        self.config = config.validate()
        self.simulator = simulator or Simulator()
        self.rng = rng or random.Random(config.seed)
        if network is None:
            latency_model = build_latency_model(config.latency, config.num_partitions)
            network = Network(self.simulator, latency_model, random.Random(config.seed + 1))
        self.network = network
        self.registry = registry or KeyRegistry(
            verify_cache_size=self.config.perf.verify_cache_size
        )
        #: Shared observability hub (repro.obs): tracer + flight recorder.
        #: The network gets a handle so deliveries can record ``net`` spans.
        self.obs = Observability(self.config.obs, lambda: self.simulator.now)
        self.network.obs = self.obs
        #: Live monitor (repro.obs.monitor), installed by the system when
        #: ``MonitorConfig.enabled``; ``None`` otherwise.  Nodes poke it on
        #: every dispatch so timeline windows close on sim-time without any
        #: extra simulator events.
        self.monitor = None
        #: Reliable delivery for core links (repro.simnet.reliable), or
        #: ``None`` when disabled — the fire-and-forget seed behaviour.
        #: Its jitter generator is dedicated (``seed + 3``) so enabling the
        #: channel never perturbs the env/network/fault draw sequences.
        self.reliability: Optional[ReliableTransport] = None
        if self.config.reliability.enabled:
            self.reliability = ReliableTransport(
                self.config.reliability,
                self.network,
                self.simulator,
                random.Random(config.seed + 3),
                obs=self.obs,
            )

    @property
    def now(self) -> float:
        return self.simulator.now

    def new_signer(self, identity: str) -> Signer:
        """Create and register a signer for ``identity`` (setup-time PKI)."""
        signer = make_signer(self.config.crypto_backend, identity, rng=self.rng)
        self.registry.register(signer)
        return signer


#: Handler signature: receives the message and the sender's node id.
MessageHandler = Callable[[Message, NodeId], None]


class SimNode:
    """Base class for every simulated actor (replicas, leaders, clients)."""

    def __init__(self, node_id: NodeId, env: SimEnvironment) -> None:
        self.node_id = node_id
        self.env = env
        self.signer = env.new_signer(str(node_id))
        #: Per-node signature verification: the shared PKI registry behind a
        #: cache private to this node, so verify-memo memory and hit rates
        #: are modeled per replica (``PerfConfig.verify_cache_size``).
        self.verifier = NodeVerifier(
            env.registry, env.config.perf.verify_cache_size
        )
        if env.config.costs.verify_cache_miss_penalty_ms > 0.0:
            self.verifier.on_miss = self._on_verify_cache_miss
        self._handlers: Dict[Type[Message], MessageHandler] = {}
        self._busy_until = 0.0
        self.messages_handled = 0
        #: Causal-tracing state (repro.obs): the span whose handler/process
        #: is currently executing on this node (outgoing messages inherit it
        #: as their context), and the just-delivered message's ``net`` span
        #: handed over by the network so queue/handle spans chain under it.
        self._current_span: Optional[Span] = None
        self._obs_net_hint: Optional[Span] = None
        #: Crash-fault flag: a crashed node silently drops everything it
        #: receives (including deliveries already in flight when it crashed)
        #: until the fault injector restarts it.
        self.crashed = False
        env.network.register(self)

    # -- wiring -----------------------------------------------------------

    def register_handler(self, message_type: Type[Message], handler: MessageHandler) -> None:
        """Route messages of ``message_type`` to ``handler``."""
        self._handlers[message_type] = handler

    def send(self, dst: NodeId, message: Message) -> None:
        """Send ``message`` to ``dst`` over the simulated network.

        Replica-to-replica traffic goes through the reliable channel when one
        is configured (ack/retransmit/dedup; :mod:`repro.simnet.reliable`);
        everything else — and every link when reliability is disabled — is
        fire-and-forget exactly as before.
        """
        self._stamp_trace(message)
        transport = self.env.reliability
        if transport is not None and transport.covers(self.node_id, dst):
            transport.send(self.node_id, dst, message)
        else:
            self.env.network.send(self.node_id, dst, message)

    def broadcast(self, dsts, message: Message) -> None:
        self._stamp_trace(message)
        transport = self.env.reliability
        if transport is None:
            self.env.network.broadcast(self.node_id, dsts, message)
            return
        # Per-destination envelopes (each link has its own sequence space)
        # around the one shared payload object, mirroring Network.broadcast.
        for dst in dsts:
            if dst == self.node_id:
                continue
            if transport.covers(self.node_id, dst):
                transport.send(self.node_id, dst, message)
            else:
                self.env.network.send(self.node_id, dst, message)

    def _stamp_trace(self, message: Message) -> None:
        """Attach the currently executing span's context to ``message``.

        Only untraced messages are stamped (a failover re-send keeps its
        original transaction's context), and only while a traced handler or
        process is running — so protocol-internal traffic (consensus votes,
        checkpoint rounds) stays untraced and cheap.
        """
        if (
            message.trace is None
            and self._current_span is not None
            and self.env.obs.tracing
        ):
            message.trace = self._current_span.context()

    def schedule(self, delay_ms: float, callback: Callable[[], None]):
        """Schedule a local timer on the shared event loop."""
        return self.env.simulator.schedule(delay_ms, callback)

    @property
    def now(self) -> float:
        return self.env.simulator.now

    # -- processing model --------------------------------------------------

    def processing_cost_ms(self, message: Message) -> float:
        """Simulated time this node spends handling ``message``.

        Subclasses refine this per message type (e.g. a batch proposal costs
        time proportional to the number of transactions it carries).
        """
        return self.env.config.costs.message_handling_ms

    def phase_of(self, message: Message) -> str:
        """Attribution phase of handling ``message`` (see repro.obs.phases)."""
        return phase_for(message.type_name)

    def receive(self, message: Message, src: NodeId) -> None:
        """Network entry point: queue the message behind ongoing work."""
        net_span = self._obs_net_hint
        self._obs_net_hint = None
        if self.crashed:
            return
        if isinstance(message, (ReliableEnvelope, ReliableAck)):
            # Transport layer: acks and dedup are handled at arrival time
            # (before the busy queue — ack processing models NIC work, not
            # protocol work), and the protocol layer sees only fresh
            # payloads, never envelopes or duplicates.
            transport = self.env.reliability
            if transport is not None:
                payload = transport.on_receive(self.node_id, src, message)
            else:
                payload = message.payload if isinstance(message, ReliableEnvelope) else None
            if payload is None:
                return
            message = payload
        arrival = self.env.simulator.now
        start = max(arrival, self._busy_until)
        cost = self.processing_cost_ms(message)
        completion = start + cost
        self._busy_until = completion
        handle_span = None
        if self.env.obs.tracing and message.trace is not None:
            # Queue and handle extents are fully determined here (single-
            # server FIFO), so both spans are recorded already closed; the
            # handle span becomes current again when the handler runs, so
            # replies sent from inside it chain correctly.
            tracer = self.env.obs.tracer
            trace_id = message.trace.trace_id
            parent = net_span.span_id if net_span is not None else message.trace.span_id
            node = str(self.node_id)
            if start - arrival > 1e-9:
                queue_span = tracer.add_span(
                    trace_id, parent, f"queue:{message.type_name}", node,
                    "queue", arrival, start,
                )
                parent = queue_span.span_id
            handle_span = tracer.add_span(
                trace_id, parent, f"handle:{message.type_name}", node,
                self.phase_of(message), start, completion,
            )
        if handle_span is None:
            self.env.simulator.schedule_at(
                completion, lambda: self._dispatch(message, src)
            )
        else:
            self.env.simulator.schedule_at(
                completion,
                lambda: self._dispatch_in_span(message, src, handle_span),
            )

    def _dispatch_in_span(self, message: Message, src: NodeId, span: Span) -> None:
        """Run the handler with ``span`` current, so its sends are traced."""
        previous = self._current_span
        self._current_span = span
        try:
            self._dispatch(message, src)
        finally:
            self._current_span = previous

    def occupy(self, cost_ms: float) -> None:
        """Account for locally initiated work (e.g. sealing a batch)."""
        now = self.env.simulator.now
        self._busy_until = max(now, self._busy_until) + cost_ms

    def _on_verify_cache_miss(self, misses: int) -> None:
        """Charge the configured per-miss verify penalty as occupancy.

        Wired only when ``CostConfig.verify_cache_miss_penalty_ms`` is
        positive, so the default cost model (hits and misses both cost the
        flat ``signature_verify_ms``) is untouched.  The charge lands after
        the current handle span, so a cold or wedged cache shows up as queue
        time on subsequent messages — exactly how a busier CPU would.
        """
        self.occupy(misses * self.env.config.costs.verify_cache_miss_penalty_ms)

    @property
    def busy_until(self) -> float:
        return self._busy_until

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, message: Message, src: NodeId) -> None:
        monitor = self.env.monitor
        if monitor is not None:
            # Lazy window sampling (repro.obs.monitor): dispatches are the
            # densest existing event stream, so boundary crossings are
            # noticed here without scheduling anything of our own.
            monitor.on_activity(self.env.simulator.now)
        if self.crashed:
            return
        self.messages_handled += 1
        handler = self._handlers.get(type(message))
        if handler is None:
            handler = self._find_handler_by_mro(type(message))
        if handler is None:
            self.on_unhandled(message, src)
            return
        handler(message, src)

    def _find_handler_by_mro(self, message_type: Type[Message]) -> Optional[MessageHandler]:
        for base in message_type.__mro__[1:]:
            if base in self._handlers:
                return self._handlers[base]
        return None

    def on_unhandled(self, message: Message, src: NodeId) -> None:
        """Called for messages with no registered handler."""
        raise SimulationError(
            f"{self.node_id} has no handler for {message.type_name} from {src}"
        )
