"""Simulated nodes: shared environment, processing-cost model and dispatch.

A :class:`SimNode` is an actor attached to the network.  Incoming messages
are not handled instantaneously: each node is a single-server FIFO queue with
a per-message processing cost, which is what makes simulated throughput
finite and sensitive to protocol design (a leader that must verify more
signatures or run more conflict checks per transaction serves fewer
transactions per simulated second).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Type

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.common.ids import NodeId
from repro.crypto.signatures import KeyRegistry, NodeVerifier, Signer, make_signer
from repro.simnet.messages import Message
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator


class SimEnvironment:
    """Everything a node needs to participate in the simulation.

    One environment is shared by all nodes of a deployment: the event loop,
    the network, the system configuration, the PKI registry and a seeded
    random generator (so whole-system runs are reproducible).
    """

    def __init__(
        self,
        config: SystemConfig,
        simulator: Optional[Simulator] = None,
        network: Optional[Network] = None,
        registry: Optional[KeyRegistry] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        from repro.simnet.latency import build_latency_model

        self.config = config.validate()
        self.simulator = simulator or Simulator()
        self.rng = rng or random.Random(config.seed)
        if network is None:
            latency_model = build_latency_model(config.latency, config.num_partitions)
            network = Network(self.simulator, latency_model, random.Random(config.seed + 1))
        self.network = network
        self.registry = registry or KeyRegistry(
            verify_cache_size=self.config.perf.verify_cache_size
        )

    @property
    def now(self) -> float:
        return self.simulator.now

    def new_signer(self, identity: str) -> Signer:
        """Create and register a signer for ``identity`` (setup-time PKI)."""
        signer = make_signer(self.config.crypto_backend, identity, rng=self.rng)
        self.registry.register(signer)
        return signer


#: Handler signature: receives the message and the sender's node id.
MessageHandler = Callable[[Message, NodeId], None]


class SimNode:
    """Base class for every simulated actor (replicas, leaders, clients)."""

    def __init__(self, node_id: NodeId, env: SimEnvironment) -> None:
        self.node_id = node_id
        self.env = env
        self.signer = env.new_signer(str(node_id))
        #: Per-node signature verification: the shared PKI registry behind a
        #: cache private to this node, so verify-memo memory and hit rates
        #: are modeled per replica (``PerfConfig.verify_cache_size``).
        self.verifier = NodeVerifier(
            env.registry, env.config.perf.verify_cache_size
        )
        self._handlers: Dict[Type[Message], MessageHandler] = {}
        self._busy_until = 0.0
        self.messages_handled = 0
        #: Crash-fault flag: a crashed node silently drops everything it
        #: receives (including deliveries already in flight when it crashed)
        #: until the fault injector restarts it.
        self.crashed = False
        env.network.register(self)

    # -- wiring -----------------------------------------------------------

    def register_handler(self, message_type: Type[Message], handler: MessageHandler) -> None:
        """Route messages of ``message_type`` to ``handler``."""
        self._handlers[message_type] = handler

    def send(self, dst: NodeId, message: Message) -> None:
        """Send ``message`` to ``dst`` over the simulated network."""
        self.env.network.send(self.node_id, dst, message)

    def broadcast(self, dsts, message: Message) -> None:
        self.env.network.broadcast(self.node_id, dsts, message)

    def schedule(self, delay_ms: float, callback: Callable[[], None]):
        """Schedule a local timer on the shared event loop."""
        return self.env.simulator.schedule(delay_ms, callback)

    @property
    def now(self) -> float:
        return self.env.simulator.now

    # -- processing model --------------------------------------------------

    def processing_cost_ms(self, message: Message) -> float:
        """Simulated time this node spends handling ``message``.

        Subclasses refine this per message type (e.g. a batch proposal costs
        time proportional to the number of transactions it carries).
        """
        return self.env.config.costs.message_handling_ms

    def receive(self, message: Message, src: NodeId) -> None:
        """Network entry point: queue the message behind ongoing work."""
        if self.crashed:
            return
        arrival = self.env.simulator.now
        start = max(arrival, self._busy_until)
        cost = self.processing_cost_ms(message)
        completion = start + cost
        self._busy_until = completion
        self.env.simulator.schedule_at(
            completion, lambda: self._dispatch(message, src)
        )

    def occupy(self, cost_ms: float) -> None:
        """Account for locally initiated work (e.g. sealing a batch)."""
        now = self.env.simulator.now
        self._busy_until = max(now, self._busy_until) + cost_ms

    @property
    def busy_until(self) -> float:
        return self._busy_until

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, message: Message, src: NodeId) -> None:
        if self.crashed:
            return
        self.messages_handled += 1
        handler = self._handlers.get(type(message))
        if handler is None:
            handler = self._find_handler_by_mro(type(message))
        if handler is None:
            self.on_unhandled(message, src)
            return
        handler(message, src)

    def _find_handler_by_mro(self, message_type: Type[Message]) -> Optional[MessageHandler]:
        for base in message_type.__mro__[1:]:
            if base in self._handlers:
                return self._handlers[base]
        return None

    def on_unhandled(self, message: Message, src: NodeId) -> None:
        """Called for messages with no registered handler."""
        raise SimulationError(
            f"{self.node_id} has no handler for {message.type_name} from {src}"
        )
