"""Discrete-event simulation substrate: scheduler, network, nodes, processes."""

from repro.simnet.faults import FaultInjector, FaultRule
from repro.simnet.latency import (
    EdgeLatencyModel,
    FixedLatencyModel,
    LatencyModel,
    ZeroLatencyModel,
    build_latency_model,
    client_home_partition,
)
from repro.simnet.messages import Message, ReplyMessage, RequestMessage, next_request_id
from repro.simnet.network import Network, NetworkStats
from repro.simnet.node import SimEnvironment, SimNode
from repro.simnet.proc import Call, Gather, Process, ProcessNode, Sleep
from repro.simnet.simulator import EventHandle, Simulator

__all__ = [
    "Call",
    "EdgeLatencyModel",
    "EventHandle",
    "FaultInjector",
    "FaultRule",
    "FixedLatencyModel",
    "Gather",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "Process",
    "ProcessNode",
    "ReplyMessage",
    "RequestMessage",
    "SimEnvironment",
    "SimNode",
    "Simulator",
    "Sleep",
    "ZeroLatencyModel",
    "build_latency_model",
    "client_home_partition",
    "next_request_id",
]
