"""Generator-based processes for client-side workflows.

Client logic (run a transaction: read, buffer writes, commit, wait) is much
easier to read as straight-line code than as a hand-written state machine.
:class:`ProcessNode` lets a node run Python generators as simulated
processes: the generator ``yield``s *operations* and the framework resumes it
when the operation completes.

Supported operations:

* :class:`Call` — send a request to one node and wait for the correlated
  reply (optionally bounded by a timeout, in which case ``None`` is
  returned).
* :class:`Gather` — issue several calls in parallel and resume once a quorum
  (or a custom predicate) is satisfied; the result is a list of replies
  aligned with the calls, with ``None`` for replies that never arrived.
* :class:`Sleep` — advance simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.common.ids import NodeId
from repro.simnet.messages import Message, ReplyMessage, RequestMessage
from repro.simnet.node import SimEnvironment, SimNode


@dataclass
class Call:
    """Send ``request`` to ``dst`` and wait for the correlated reply."""

    dst: NodeId
    request: RequestMessage
    timeout_ms: Optional[float] = None


@dataclass
class Gather:
    """Issue ``calls`` in parallel and wait for enough replies.

    ``quorum`` is the number of replies to wait for (default: all).  When
    ``done`` is provided it overrides ``quorum``: it receives the partially
    filled reply list and returns True when the wait should end.
    """

    calls: Sequence[Call]
    quorum: Optional[int] = None
    done: Optional[Callable[[List[Optional[ReplyMessage]]], bool]] = None
    timeout_ms: Optional[float] = None


@dataclass
class Sleep:
    """Pause the process for ``delay_ms`` of simulated time."""

    delay_ms: float


#: A process body: a generator that yields operations and receives results.
ProcessBody = Generator[object, object, object]


@dataclass
class _Wait:
    process: "Process"
    replies: List[Optional[ReplyMessage]]
    remaining_ids: Dict[str, int] = field(default_factory=dict)
    needed: int = 0
    done: Optional[Callable[[List[Optional[ReplyMessage]]], bool]] = None
    single: bool = False
    finished: bool = False
    timer = None


class Process:
    """A running generator process hosted by a :class:`ProcessNode`.

    ``span`` is the process's causal-tracing context (repro.obs): requests
    the process issues are stamped with it, so several concurrent driver
    processes on one client node each propagate their *own* transaction's
    trace.  It is inherited from whatever span was current at spawn time
    (e.g. an edge proxy spawning a serve process from a traced handler) and
    replaced by client workflows when they open a transaction's root span.
    """

    def __init__(self, node: "ProcessNode", body: ProcessBody, name: str = "") -> None:
        self.node = node
        self.body = body
        self.name = name or f"proc@{node.node_id}"
        self.finished = False
        self.result: object = None
        self.span = node._current_span

    def start(self) -> None:
        self._advance(None)

    def _advance(self, value: object) -> None:
        if self.finished:
            return
        # Generator code runs with this process's span current, so direct
        # sends from workflow bodies (complaint broadcasts, lock releases)
        # carry the transaction's context; save/restore because a resume can
        # happen from inside another message's traced dispatch.
        node = self.node
        previous_span = node._current_span
        previous_process = node._active_process
        node._current_span = self.span
        node._active_process = self
        try:
            try:
                operation = self.body.send(value)
            except StopIteration as stop:
                self.finished = True
                self.result = stop.value
                node.on_process_finished(self)
                return
            node._execute_operation(self, operation)
        finally:
            node._current_span = previous_span
            node._active_process = previous_process


class ProcessNode(SimNode):
    """A node able to run generator processes and correlate replies."""

    def __init__(self, node_id: NodeId, env: SimEnvironment) -> None:
        super().__init__(node_id, env)
        self._waits_by_request: Dict[str, _Wait] = {}
        self._active_process: Optional[Process] = None
        self.register_handler(ReplyMessage, self._on_reply)

    # -- public API --------------------------------------------------------

    def spawn(self, body: ProcessBody, name: str = "") -> Process:
        """Start a new process running ``body`` immediately."""
        process = Process(self, body, name=name)
        # Start on the event loop so that spawning from setup code and from
        # running handlers behaves the same way.
        self.schedule(0.0, process.start)
        return process

    def on_process_finished(self, process: Process) -> None:
        """Hook for subclasses (e.g. workload drivers chaining transactions)."""

    # -- operation execution ------------------------------------------------

    def _execute_operation(self, process: Process, operation: object) -> None:
        if isinstance(operation, Call):
            self._execute_gather(process, Gather([operation], timeout_ms=operation.timeout_ms), single=True)
        elif isinstance(operation, Gather):
            self._execute_gather(process, operation, single=False)
        elif isinstance(operation, Sleep):
            self.schedule(operation.delay_ms, lambda: process._advance(None))
        else:
            raise SimulationError(
                f"process {process.name} yielded unsupported operation {operation!r}"
            )

    def _execute_gather(self, process: Process, gather: Gather, single: bool) -> None:
        calls = list(gather.calls)
        if not calls:
            process._advance(None if single else [])
            return
        wait = _Wait(
            process=process,
            replies=[None] * len(calls),
            needed=gather.quorum if gather.quorum is not None else len(calls),
            done=gather.done,
            single=single,
        )
        stamp = (
            process.span is not None and self.env.obs.tracing
        )
        for index, call in enumerate(calls):
            request_id = call.request.request_id
            if request_id in self._waits_by_request:
                raise SimulationError(f"duplicate request id {request_id}")
            wait.remaining_ids[request_id] = index
            self._waits_by_request[request_id] = wait
            if stamp and call.request.trace is None:
                call.request.trace = process.span.context()
            self.send(call.dst, call.request)
        if gather.timeout_ms is not None:
            wait.timer = self.schedule(gather.timeout_ms, lambda: self._finish_wait(wait))
        # Per-call timeouts inside a Gather use the smallest timeout provided.
        per_call_timeouts = [c.timeout_ms for c in calls if c.timeout_ms is not None]
        if per_call_timeouts and gather.timeout_ms is None:
            wait.timer = self.schedule(min(per_call_timeouts), lambda: self._finish_wait(wait))

    def _on_reply(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, ReplyMessage)
        wait = self._waits_by_request.pop(message.request_id, None)
        if wait is None or wait.finished:
            return
        index = wait.remaining_ids.pop(message.request_id)
        wait.replies[index] = message
        if self._wait_satisfied(wait):
            self._finish_wait(wait)

    def _wait_satisfied(self, wait: _Wait) -> bool:
        received = sum(1 for reply in wait.replies if reply is not None)
        if wait.done is not None:
            return wait.done(wait.replies)
        return received >= wait.needed

    def _finish_wait(self, wait: _Wait) -> None:
        if wait.finished:
            return
        wait.finished = True
        if wait.timer is not None:
            wait.timer.cancel()
        for request_id in list(wait.remaining_ids):
            self._waits_by_request.pop(request_id, None)
        wait.remaining_ids.clear()
        if wait.single:
            wait.process._advance(wait.replies[0])
        else:
            wait.process._advance(list(wait.replies))
