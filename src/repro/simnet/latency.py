"""Latency models for the simulated edge network.

The GEDM setting of the paper has three qualitatively different link types:

* links between replicas of the *same* cluster (machines in one edge/micro
  datacentre) — sub-millisecond;
* links between *different* clusters — wide-area, a few milliseconds plus a
  configurable "additional latency" that the paper sweeps to emulate
  geo-distribution (Figures 8, 12, 13);
* links between a client and a cluster — the client is placed next to one
  "home" partition and pays the wide-area cost to reach the others;
* links between a client and an *edge proxy* (``repro.edge``) — a proxy in
  the client's own region is one short hop away
  (``LatencyConfig.client_to_edge_ms``), which is what makes edge-served
  reads cheaper than a round trip to the far core; a proxy itself pays the
  client-to-cluster (wide-area) cost to reach core replicas.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

from repro.common.config import LatencyConfig
from repro.common.ids import ClientId, EdgeProxyId, NodeId, PartitionId, ReplicaId


class LatencyModel(Protocol):
    """Computes the one-way delay of a message between two nodes."""

    def delay_ms(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        """One-way message delay from ``src`` to ``dst`` in milliseconds."""
        ...  # pragma: no cover - protocol definition


def client_home_partition(client: ClientId, num_partitions: int) -> PartitionId:
    """Deterministically place a client next to one partition's cluster."""
    return sum(client.name.encode("utf-8")) % max(1, num_partitions)


def proxy_region(proxy: EdgeProxyId, num_partitions: int) -> PartitionId:
    """Deterministically place an edge proxy in one partition's region.

    Proxies are dealt round-robin over the regions, so any proxy count covers
    the deployment and clients can find a same-region proxy whenever
    ``num_proxies >= num_partitions`` (and often sooner).
    """
    return proxy.index % max(1, num_partitions)


class EdgeLatencyModel:
    """Latency model matching the deployment described in Section 5.1."""

    def __init__(self, config: LatencyConfig, num_partitions: int) -> None:
        self._config = config
        self._num_partitions = num_partitions

    def _jitter(self, base: float, rng: random.Random) -> float:
        fraction = self._config.jitter_fraction
        if fraction <= 0 or base <= 0:
            return base
        return base * (1.0 + rng.uniform(-fraction, fraction))

    def _partition_of(self, node: NodeId) -> PartitionId:
        if isinstance(node, ReplicaId):
            return node.partition
        if isinstance(node, EdgeProxyId):
            return proxy_region(node, self._num_partitions)
        return client_home_partition(node, self._num_partitions)

    def _is_client(self, node: NodeId) -> bool:
        return isinstance(node, (ClientId, EdgeProxyId))

    def delay_ms(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        src_partition = self._partition_of(src)
        dst_partition = self._partition_of(dst)
        same_partition = src_partition == dst_partition
        crosses_wan = not same_partition
        config = self._config

        # Client <-> edge proxy: the near-edge link.  A same-region proxy is
        # one short hop away; a proxy in another region still costs the WAN.
        endpoints = {type(src), type(dst)}
        if endpoints == {ClientId, EdgeProxyId}:
            base = config.client_to_edge_ms
            if crosses_wan:
                base += config.inter_cluster_ms + config.inter_cluster_extra_ms
            return self._jitter(base, rng)

        # Clients and proxies pay the client-to-cluster cost towards the
        # core; a proxy is "a client of the core" as far as links go.
        if self._is_client(src) or self._is_client(dst):
            base = config.client_to_cluster_ms
            if crosses_wan:
                base += config.inter_cluster_ms + config.inter_cluster_extra_ms
            return self._jitter(base, rng)

        if same_partition:
            return self._jitter(config.intra_cluster_ms, rng)
        base = config.inter_cluster_ms + config.inter_cluster_extra_ms
        return self._jitter(base, rng)


class FixedLatencyModel:
    """Constant delay for every link; handy in unit tests."""

    def __init__(self, delay_ms: float = 1.0) -> None:
        self._delay_ms = delay_ms

    def delay_ms(self, src: NodeId, dst: NodeId, rng: random.Random) -> float:
        return self._delay_ms


class ZeroLatencyModel(FixedLatencyModel):
    """Messages arrive instantaneously (pure protocol-logic tests)."""

    def __init__(self) -> None:
        super().__init__(0.0)


def build_latency_model(
    config: LatencyConfig,
    num_partitions: int,
    override: Optional[LatencyModel] = None,
) -> LatencyModel:
    """Return ``override`` when provided, else the standard edge model."""
    if override is not None:
        return override
    return EdgeLatencyModel(config, num_partitions)
