"""Simulated message bus connecting all nodes of the deployment.

Every node registers itself with the network; ``send`` computes a link delay
from the latency model and schedules delivery on the destination node.  The
network also hosts the fault-injection hooks used to emulate byzantine and
crash behaviour at the transport level (dropping, delaying or tampering with
messages), and records per-message-type statistics used by tests and by the
benchmark harness to report message complexity.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Callable, Dict, Iterable, List, Optional, Protocol

from repro.common.errors import NetworkError
from repro.common.ids import NodeId
from repro.simnet.latency import LatencyModel
from repro.simnet.messages import Message
from repro.simnet.simulator import Simulator


class MessageSink(Protocol):
    """Anything that can receive messages from the network."""

    node_id: NodeId

    def receive(self, message: Message, src: NodeId) -> None:
        ...  # pragma: no cover - protocol definition


#: A message filter sees (src, dst, message) and returns the message to
#: deliver (possibly modified) or ``None`` to drop it.
MessageFilter = Callable[[NodeId, NodeId, Message], Optional[Message]]


class NetworkStats:
    """Counters describing the traffic that crossed the network."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_delayed = 0
        self.by_type: Counter = Counter()

    def snapshot(self) -> Dict[str, int]:
        return {
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "dropped": self.messages_dropped,
            "delayed": self.messages_delayed,
        }


class Network:
    """Point-to-point message delivery with configurable latency and faults."""

    def __init__(
        self,
        simulator: Simulator,
        latency_model: LatencyModel,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._simulator = simulator
        self._latency_model = latency_model
        self._rng = rng or random.Random(0)
        self._nodes: Dict[NodeId, MessageSink] = {}
        self._filters: List[MessageFilter] = []
        self.stats = NetworkStats()
        #: Observability hub (repro.obs), attached by SimEnvironment; when
        #: tracing is on, each delivery of a traced message records a ``net``
        #: span and hands it to the receiver so its spans chain under it.
        self.obs = None

    @property
    def simulator(self) -> Simulator:
        return self._simulator

    def register(self, node: MessageSink) -> None:
        """Attach ``node`` to the network; its ``node_id`` becomes routable."""
        if node.node_id in self._nodes:
            raise NetworkError(f"node {node.node_id} is already registered")
        self._nodes[node.node_id] = node

    def unregister(self, node_id: NodeId) -> None:
        self._nodes.pop(node_id, None)

    def knows(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterable[NodeId]:
        return self._nodes.keys()

    def add_filter(self, message_filter: MessageFilter) -> None:
        """Install a fault-injection filter applied to every sent message."""
        self._filters.append(message_filter)

    def remove_filter(self, message_filter: MessageFilter) -> None:
        self._filters.remove(message_filter)

    def clear_filters(self) -> None:
        self._filters.clear()

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` with modelled latency."""
        if dst not in self._nodes:
            raise NetworkError(f"message to unknown node {dst}")
        self.stats.messages_sent += 1
        self.stats.by_type[message.type_name] += 1

        delivered = message
        for message_filter in self._filters:
            filtered = message_filter(src, dst, delivered)
            if filtered is None:
                self.stats.messages_dropped += 1
                return
            delivered = filtered

        self._schedule_delivery(src, dst, delivered)

    def send_unfiltered(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Deliver ``message`` with modelled latency, bypassing fault filters.

        Used by delay faults to re-inject a held message: the message already
        passed (and was held by) the filter chain once, so running it through
        again would delay or drop it twice.  Statistics-neutral — the
        original :meth:`send` already counted the message as sent; any
        reclassification (e.g. drop → delayed) is the caller's job, so this
        path carries no hidden counter coupling (see
        :meth:`~repro.simnet.faults.FaultInjector.delay`).
        """
        if dst not in self._nodes:
            raise NetworkError(f"message to unknown node {dst}")
        self._schedule_delivery(src, dst, message)

    def _schedule_delivery(self, src: NodeId, dst: NodeId, message: Message) -> None:
        delay = self._latency_model.delay_ms(src, dst, self._rng)
        destination = self._nodes[dst]

        net_span = None
        obs = self.obs
        if obs is not None and obs.tracing and message.trace is not None:
            # The link delay is drawn here, so the span's extent is already
            # known.  One span per *delivery*: a broadcast shares the message
            # object but each destination gets its own net span.
            now = self._simulator.now
            net_span = obs.tracer.add_span(
                message.trace.trace_id,
                message.trace.span_id,
                f"net:{message.type_name}",
                f"{src}->{dst}",
                "net",
                now,
                now + delay,
            )

        def _deliver(message_to_deliver: Message = message) -> None:
            self.stats.messages_delivered += 1
            if net_span is not None:
                # Hand the net span to the receiver (consumed synchronously
                # in receive()) so its queue/handle spans chain under it.
                destination._obs_net_hint = net_span
            destination.receive(message_to_deliver, src)

        self._simulator.schedule(delay, _deliver)

    def broadcast(self, src: NodeId, dsts: Iterable[NodeId], message: Message) -> None:
        """Send ``message`` to every destination in ``dsts`` (excluding ``src``)."""
        for dst in dsts:
            if dst == src:
                continue
            self.send(src, dst, message)
