"""Reliable delivery over lossy core links.

The chaos planner was historically forbidden from dropping core-to-core
traffic: every protocol message between replicas was fire-and-forget, so a
single lost ``Commit`` vote could wedge a consensus instance forever.  This
module supplies the missing transport guarantee.  A :class:`ReliableTransport`
sits under :meth:`SimNode.send <repro.simnet.node.SimNode.send>` for every
replica-to-replica link and implements the classic ack/retransmit recipe:

* **Per-link sequence numbers.**  Each directed link stamps outgoing payloads
  with a monotonically increasing sequence number inside a
  :class:`ReliableEnvelope`.
* **Cumulative acks.**  The receiver tracks the highest contiguously received
  sequence per link and piggybacks it on every reverse envelope; after
  ``ack_delay_ms`` of reverse silence a standalone :class:`ReliableAck` is
  sent instead (acks themselves are fire-and-forget — a lost ack provokes a
  retransmission, whose arrival re-arms the ack timer, so finite loss windows
  always converge).
* **Retransmission with jittered exponential backoff.**  Each link keeps one
  timer on its oldest unacked message.  The timeout floor adapts to the
  modelled link RTT (otherwise the paper's 70 ms ``inter_cluster_extra_ms``
  sweeps would spuriously retransmit everything), then doubles per fruitless
  round up to ``retransmit_cap_ms`` with a jitter drawn from a generator
  dedicated to this module (``seed + 3``) so enabling reliability never
  perturbs the latency or fault draw sequences.  After ``max_retransmits``
  consecutive rounds with no ack progress the *link* is declared stalled and
  its whole outstanding window is abandoned (``base`` advances past it) —
  the cap bounds simulation work against permanently dead peers at one
  backoff sequence per link, while the chaos planner's finite loss windows
  are comfortably outlived.
* **Receiver-side dedup.**  A retransmission that races its original is
  dropped at the transport layer (watermark + above-watermark set), so
  protocol code never observes a duplicate.  Out-of-order arrivals are
  delivered immediately — the underlying network already reorders freely via
  jittered latency, so the protocol layers tolerate reordering by design.

Retransmissions and standalone acks re-enter the *filtered*
:meth:`Network.send <repro.simnet.network.Network.send>` path on purpose: an
open drop window applies to them exactly as it does to first transmissions.

With ``ReliabilityConfig.enabled=False`` the transport is never constructed:
no envelopes, no timers, no randomness, byte-for-byte the fire-and-forget
seed behaviour.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.common.config import ReliabilityConfig
from repro.common.ids import NodeId, ReplicaId
from repro.simnet.messages import Message
from repro.simnet.network import Network
from repro.simnet.simulator import Simulator


@dataclass
class ReliableEnvelope(Message):
    """A protocol payload travelling over a reliable link.

    ``seq`` is this payload's per-link sequence number, ``ack`` the sender's
    cumulative ack for the reverse direction (piggybacked), and ``base`` the
    lowest sequence the sender still retains — everything below ``base`` has
    been acked or abandoned and will never be retransmitted, which lets the
    receiver advance its watermark past holes the sender gave up on.
    """

    payload: Message = None  # type: ignore[assignment]
    seq: int = 0
    ack: int = 0
    base: int = 1

    @property
    def type_name(self) -> str:
        # Report the payload's type: network statistics, net-span names and
        # per-type processing costs then see exactly the traffic the
        # protocol sent, with the envelope invisible (retransmissions count
        # as another message of the payload's type, which is what they are
        # on the wire).
        return self.payload.type_name


@dataclass
class ReliableAck(Message):
    """Standalone cumulative ack, sent after ``ack_delay_ms`` of silence."""

    ack: int = 0


@dataclass
class _SendLink:
    """Sender-side state of one directed link."""

    next_seq: int = 1
    #: seq -> payload; insertion order == sequence order.
    unacked: "OrderedDict[int, Message]" = field(default_factory=OrderedDict)
    #: Lowest seq not yet acked/abandoned (== envelope ``base``).
    base: int = 1
    timer: Optional[object] = None
    #: Consecutive retransmit-timer fires without any ack progress.  The
    #: abandon cap applies to this *link stall*, not per message: a dead
    #: peer costs one backoff sequence for the whole outstanding window
    #: instead of one per queued message.
    stall_count: int = 0
    #: Deterministic RTT-derived floor for the first retransmit timeout.
    rtt_floor_ms: float = 0.0


@dataclass
class _RecvLink:
    """Receiver-side state of one directed link."""

    #: Highest contiguously received sequence (cumulative ack value).
    watermark: int = 0
    #: Received sequences above the watermark (holes pending).
    above: Set[int] = field(default_factory=set)
    ack_timer: Optional[object] = None


class _ZeroJitterRng:
    """Stands in for ``random.Random`` to probe a latency model's base delay.

    ``uniform`` returns the midpoint and ``random`` one half, so jittered
    models report their central value and no real generator state is
    consumed — the probe is deterministic and side-effect free.
    """

    @staticmethod
    def uniform(a: float, b: float) -> float:
        return (a + b) / 2.0

    @staticmethod
    def random() -> float:
        return 0.5


class ReliableTransport:
    """Ack/retransmit/backoff shim shared by every replica of a deployment.

    One instance per :class:`~repro.simnet.node.SimEnvironment` owns the
    state of all directed replica-to-replica links.  ``counters`` is a plain
    dict surfaced through ``TransEdgeSystem.cache_snapshot`` and the chaos
    report so retransmission regressions are visible in bench notes.
    """

    def __init__(
        self,
        config: ReliabilityConfig,
        network: Network,
        simulator: Simulator,
        rng: random.Random,
        obs=None,
    ) -> None:
        self.config = config
        self._network = network
        self._simulator = simulator
        self._rng = rng
        self._obs = obs
        self._send_links: Dict[Tuple[NodeId, NodeId], _SendLink] = {}
        self._recv_links: Dict[Tuple[NodeId, NodeId], _RecvLink] = {}
        self.counters: Dict[str, int] = {
            "messages_retransmitted": 0,
            "duplicates_dropped": 0,
            "acks_sent": 0,
            "retransmits_abandoned": 0,
            "links_abandoned": 0,
        }

    # -- coverage -----------------------------------------------------------

    @staticmethod
    def covers(src: NodeId, dst: NodeId) -> bool:
        """Reliable links are the replica-to-replica (core) links only.

        Client and edge-proxy traffic keeps its own end-to-end recovery
        (request retry against a duplicate-answering leader), which is the
        right layer for nodes that may legitimately give up.
        """
        return isinstance(src, ReplicaId) and isinstance(dst, ReplicaId) and src != dst

    # -- sender path --------------------------------------------------------

    def send(self, src: NodeId, dst: NodeId, message: Message) -> None:
        """Wrap ``message`` in an envelope and transmit it with tracking."""
        key = (src, dst)
        link = self._send_links.get(key)
        if link is None:
            link = self._send_links[key] = _SendLink(
                rtt_floor_ms=self._probe_rtt_ms(src, dst)
            )
        seq = link.next_seq
        link.next_seq += 1
        link.unacked[seq] = message
        self._transmit(src, dst, link, seq, message)
        if link.timer is None:
            self._arm_retransmit(src, dst, link)

    def _transmit(
        self, src: NodeId, dst: NodeId, link: _SendLink, seq: int, payload: Message
    ) -> None:
        envelope = ReliableEnvelope(
            payload=payload,
            seq=seq,
            ack=self._recv_links.setdefault((src, dst), _RecvLink()).watermark,
            base=link.base,
            trace=payload.trace,
        )
        self._cancel_ack_timer((src, dst))
        self._network.send(src, dst, envelope)

    def _probe_rtt_ms(self, src: NodeId, dst: NodeId) -> float:
        """Deterministic round-trip estimate for the retransmit floor."""
        model = getattr(self._network, "_latency_model", None)
        if model is None:
            return 0.0
        probe = _ZeroJitterRng()
        return model.delay_ms(src, dst, probe) + model.delay_ms(dst, src, probe)

    def _timeout_ms(self, link: _SendLink) -> float:
        cfg = self.config
        floor = link.rtt_floor_ms * 1.25 + cfg.ack_delay_ms
        base = max(cfg.retransmit_base_ms, floor)
        cap = max(cfg.retransmit_cap_ms, base)
        timeout = min(cap, base * (2.0 ** link.stall_count))
        jitter = cfg.retransmit_jitter_fraction
        if jitter > 0:
            timeout *= 1.0 + self._rng.uniform(0.0, jitter)
        return timeout

    def _arm_retransmit(self, src: NodeId, dst: NodeId, link: _SendLink) -> None:
        if not link.unacked:
            link.timer = None
            return
        link.timer = self._simulator.schedule(
            self._timeout_ms(link), lambda: self._on_retransmit_timer(src, dst, link)
        )

    def _on_retransmit_timer(self, src: NodeId, dst: NodeId, link: _SendLink) -> None:
        link.timer = None
        if not link.unacked:
            return
        if link.stall_count >= self.config.max_retransmits:
            # The peer has not acked anything through a whole backoff
            # sequence: declare it unreachable and abandon the outstanding
            # window, advancing ``base`` past it so the receiver's watermark
            # (and with it the cumulative ack) can move again if the peer
            # ever returns.
            for payload in link.unacked.values():
                self.counters["retransmits_abandoned"] += 1
                self._obs_event("retransmit-abandoned", src, dst, payload)
            # One typed per-link summary on top of the per-message events:
            # the health tracker keys off it (link-abandoned marks ``dst``
            # degraded), and it gives operators the "gave up on this peer"
            # headline without counting payload events.
            abandoned = len(link.unacked)
            self.counters["links_abandoned"] += 1
            if self._obs is not None:
                self._obs.event(
                    "network",
                    "link-abandoned",
                    "warn",
                    {
                        "src": str(src),
                        "dst": str(dst),
                        "messages_abandoned": abandoned,
                        "stall_count": link.stall_count,
                    },
                )
            link.base = link.next_seq
            link.unacked.clear()
            link.stall_count = 0
            return
        link.stall_count += 1
        # Retransmit the whole outstanding window (dedup makes already-
        # delivered copies harmless), so one timer fire can recover several
        # holes of a loss burst instead of one per round trip.
        for seq, payload in list(link.unacked.items()):
            self.counters["messages_retransmitted"] += 1
            self._obs_event("message-retransmit", src, dst, payload)
            self._transmit(src, dst, link, seq, payload)
        self._arm_retransmit(src, dst, link)

    def _on_ack(self, src: NodeId, dst: NodeId, ack: int) -> None:
        """Process a cumulative ack for the ``src -> dst`` direction."""
        link = self._send_links.get((src, dst))
        if link is None:
            return
        advanced = False
        while link.unacked:
            seq = next(iter(link.unacked))
            if seq > ack:
                break
            del link.unacked[seq]
            advanced = True
        if ack + 1 > link.base:
            link.base = ack + 1
        if not advanced:
            return
        link.stall_count = 0
        if link.timer is not None:
            link.timer.cancel()
            link.timer = None
        self._arm_retransmit(src, dst, link)

    # -- receiver path ------------------------------------------------------

    def on_receive(self, node: NodeId, src: NodeId, message: Message) -> Optional[Message]:
        """Transport entry at the receiving node.

        Returns the payload to hand to the protocol layer, or ``None`` when
        the message was transport-internal (an ack) or a duplicate.
        """
        if isinstance(message, ReliableAck):
            self._on_ack(node, src, message.ack)
            return None
        assert isinstance(message, ReliableEnvelope)
        # The piggybacked ack covers our sends on the reverse link.
        self._on_ack(node, src, message.ack)
        link = self._recv_links.setdefault((node, src), _RecvLink())
        if message.base - 1 > link.watermark:
            # The sender abandoned everything below ``base``; stop waiting
            # for those holes so the cumulative ack can advance.
            link.watermark = message.base - 1
            self._drain_above(link)
        seq = message.seq
        duplicate = seq <= link.watermark or seq in link.above
        if not duplicate:
            if seq == link.watermark + 1:
                link.watermark = seq
                self._drain_above(link)
            else:
                link.above.add(seq)
        else:
            self.counters["duplicates_dropped"] += 1
            self._obs_event("duplicate-dropped", src, node, message.payload)
        # Every envelope arrival (duplicates included — the ack that would
        # have silenced this retransmission was evidently lost) owes the
        # sender an ack unless reverse traffic piggybacks one first.
        self._arm_ack_timer(node, src, link)
        return None if duplicate else message.payload

    @staticmethod
    def _drain_above(link: _RecvLink) -> None:
        while link.watermark + 1 in link.above:
            link.above.discard(link.watermark + 1)
            link.watermark += 1
        link.above = {seq for seq in link.above if seq > link.watermark}

    def _arm_ack_timer(self, node: NodeId, src: NodeId, link: _RecvLink) -> None:
        if link.ack_timer is not None:
            return
        link.ack_timer = self._simulator.schedule(
            self.config.ack_delay_ms, lambda: self._send_ack(node, src, link)
        )

    def _send_ack(self, node: NodeId, src: NodeId, link: _RecvLink) -> None:
        link.ack_timer = None
        self.counters["acks_sent"] += 1
        self._network.send(node, src, ReliableAck(ack=link.watermark))

    def _cancel_ack_timer(self, key: Tuple[NodeId, NodeId]) -> None:
        link = self._recv_links.get(key)
        if link is not None and link.ack_timer is not None:
            link.ack_timer.cancel()
            link.ack_timer = None

    # -- introspection ------------------------------------------------------

    def in_flight(self) -> int:
        """Unacked messages across all links (tests and debugging)."""
        return sum(len(link.unacked) for link in self._send_links.values())

    def _obs_event(self, kind: str, src: NodeId, dst: NodeId, payload: Message) -> None:
        if self._obs is None:
            return
        self._obs.event(
            "network",
            kind,
            "info",
            {
                "src": str(src),
                "dst": str(dst),
                "type": payload.type_name,
                "trace_id": payload.trace.trace_id if payload.trace is not None else None,
            },
        )
