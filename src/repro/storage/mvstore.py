"""Multi-version key-value store.

Each partition replica keeps its data in a :class:`MultiVersionStore`.  Every
visible write is tagged with the batch number in which it became visible, so
the store can answer three kinds of reads:

* ``latest`` — the current committed value and its version (used when serving
  client reads for read-write transactions and round-1 read-only requests);
* ``as_of`` — the value visible at a given batch number (used for round-2
  read-only requests that need an older or newer-but-specific snapshot);
* ``version_of`` — just the version, used by optimistic validation
  (Definition 3.1, rule 1: a read is stale when the key's latest version is
  newer than the version the transaction read).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.common.errors import StorageError, UnknownKeyError
from repro.common.ids import NO_BATCH, BatchNumber
from repro.common.types import Key, Value, VersionedValue


@dataclass
class _VersionChain:
    """Versions of one key, ordered by ascending batch number."""

    versions: List[BatchNumber]
    values: List[Value]

    def latest(self) -> VersionedValue:
        return VersionedValue(value=self.values[-1], version=self.versions[-1])

    def as_of(self, batch: BatchNumber) -> Optional[VersionedValue]:
        """Newest version with ``version <= batch`` (None when none exists)."""
        index = bisect.bisect_right(self.versions, batch) - 1
        if index < 0:
            return None
        return VersionedValue(value=self.values[index], version=self.versions[index])

    def append(self, batch: BatchNumber, value: Value) -> None:
        if self.versions and batch < self.versions[-1]:
            raise StorageError(
                f"version {batch} is older than latest version {self.versions[-1]}"
            )
        if self.versions and batch == self.versions[-1]:
            # Two writes in the same batch: last writer wins.
            self.values[-1] = value
            return
        self.versions.append(batch)
        self.values.append(value)


class MultiVersionStore:
    """Versioned key/value storage for one partition."""

    def __init__(self, initial: Optional[Mapping[Key, Value]] = None) -> None:
        self._chains: Dict[Key, _VersionChain] = {}
        if initial:
            for key, value in initial.items():
                self._chains[key] = _VersionChain(versions=[NO_BATCH], values=[value])

    # -- writes -------------------------------------------------------------

    def apply(self, writes: Mapping[Key, Value], batch: BatchNumber) -> None:
        """Make ``writes`` visible at version ``batch``."""
        if batch <= NO_BATCH:
            raise StorageError(f"cannot apply writes at reserved version {batch}")
        for key, value in writes.items():
            chain = self._chains.get(key)
            if chain is None:
                chain = _VersionChain(versions=[], values=[])
                self._chains[key] = chain
            chain.append(batch, value)

    def preload(self, items: Mapping[Key, Value]) -> None:
        """Load initial data at the reserved pre-history version."""
        for key, value in items.items():
            if key in self._chains:
                raise StorageError(f"key {key!r} already preloaded")
            self._chains[key] = _VersionChain(versions=[NO_BATCH], values=[value])

    # -- checkpointing support ----------------------------------------------

    def snapshot_image(self, batch: BatchNumber) -> Dict[Key, Tuple[BatchNumber, Value]]:
        """Latest ``(version, value)`` of every key visible at ``batch``.

        This is the restorable form of the store used by checkpoint images:
        unlike :meth:`snapshot_as_of` it keeps the version of each value, so a
        replica restored from the image answers ``version_of``/``as_of``
        queries identically to one that processed the whole log.
        """
        image: Dict[Key, Tuple[BatchNumber, Value]] = {}
        for key, chain in self._chains.items():
            versioned = chain.as_of(batch)
            if versioned is not None:
                image[key] = (versioned.version, versioned.value)
        return image

    def restore_image(self, image: Mapping[Key, Tuple[BatchNumber, Value]]) -> None:
        """Rebuild an empty store from a checkpoint image (one version per key)."""
        if self._chains:
            raise StorageError("restore_image requires an empty store")
        for key, (version, value) in image.items():
            self._chains[key] = _VersionChain(versions=[version], values=[value])

    def prune(self, upto: BatchNumber) -> int:
        """Drop versions older than the newest version ``<= upto``.

        After pruning, ``as_of(key, batch)`` stays exact for every
        ``batch >= upto``; older snapshots resolve to the oldest retained
        version.  Returns the number of versions removed.
        """
        pruned = 0
        for chain in self._chains.values():
            cut = bisect.bisect_right(chain.versions, upto) - 1
            if cut > 0:
                del chain.versions[:cut]
                del chain.values[:cut]
                pruned += cut
        return pruned

    def max_chain_length(self) -> int:
        """Length of the longest version chain (0 for an empty store)."""
        return max((len(chain.versions) for chain in self._chains.values()), default=0)

    def total_versions(self) -> int:
        """Total number of stored versions across all keys."""
        return sum(len(chain.versions) for chain in self._chains.values())

    # -- reads --------------------------------------------------------------

    def __contains__(self, key: Key) -> bool:
        return key in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def keys(self) -> Iterable[Key]:
        return self._chains.keys()

    def latest(self, key: Key) -> VersionedValue:
        chain = self._chains.get(key)
        if chain is None:
            raise UnknownKeyError(key)
        return chain.latest()

    def get(self, key: Key) -> Optional[VersionedValue]:
        chain = self._chains.get(key)
        if chain is None:
            return None
        return chain.latest()

    def version_of(self, key: Key) -> BatchNumber:
        """Latest visible version of ``key`` (``NO_BATCH`` for unknown keys)."""
        chain = self._chains.get(key)
        if chain is None:
            return NO_BATCH
        return chain.versions[-1]

    def as_of(self, key: Key, batch: BatchNumber) -> Optional[VersionedValue]:
        """Value of ``key`` as of batch ``batch`` (inclusive)."""
        chain = self._chains.get(key)
        if chain is None:
            return None
        return chain.as_of(batch)

    def snapshot_latest(self) -> Dict[Key, Value]:
        """Materialise the latest visible value of every key."""
        return {key: chain.values[-1] for key, chain in self._chains.items()}

    def iter_items_as_of(self, batch: BatchNumber) -> Iterator[Tuple[Key, Value]]:
        """Iterate the ``(key, value)`` pairs visible at batch ``batch``.

        The streaming primitive behind :meth:`snapshot_as_of`; use it
        directly when a single pass suffices and no dict is needed.
        """
        for key, chain in self._chains.items():
            versioned = chain.as_of(batch)
            if versioned is not None:
                yield key, versioned.value

    def snapshot_as_of(self, batch: BatchNumber) -> Dict[Key, Value]:
        """Materialise the state visible at batch ``batch``."""
        return dict(self.iter_items_as_of(batch))

    def history(self, key: Key) -> Tuple[Tuple[BatchNumber, Value], ...]:
        """Full version history of ``key`` (oldest first)."""
        chain = self._chains.get(key)
        if chain is None:
            raise UnknownKeyError(key)
        return tuple(zip(chain.versions, chain.values))
