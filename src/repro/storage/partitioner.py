"""Hash partitioning of keys across clusters.

The paper distributes the 1M-key space uniformly across the 5 clusters using
hashing (Section 5.1).  The partitioner here uses a stable digest (not
Python's randomised ``hash``) so that every node, client and test agrees on
key placement, and offers helpers to group a transaction's footprint by
partition — the basic operation behind deciding whether a transaction is
local or distributed.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, Mapping, Set, TypeVar

from repro.common.errors import ConfigurationError
from repro.common.ids import PartitionId
from repro.common.types import Key

ValueT = TypeVar("ValueT")


class HashPartitioner:
    """Maps keys to partitions with a stable hash."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        self._num_partitions = num_partitions

    @property
    def num_partitions(self) -> int:
        return self._num_partitions

    def partition_of(self, key: Key) -> PartitionId:
        """Partition owning ``key``."""
        digest = hashlib.blake2s(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self._num_partitions

    def group_keys(self, keys: Iterable[Key]) -> Dict[PartitionId, Set[Key]]:
        """Group ``keys`` by owning partition."""
        grouped: Dict[PartitionId, Set[Key]] = {}
        for key in keys:
            grouped.setdefault(self.partition_of(key), set()).add(key)
        return grouped

    def group_items(
        self, items: Mapping[Key, ValueT]
    ) -> Dict[PartitionId, Dict[Key, ValueT]]:
        """Group a key-value mapping by owning partition."""
        grouped: Dict[PartitionId, Dict[Key, ValueT]] = {}
        for key, value in items.items():
            grouped.setdefault(self.partition_of(key), {})[key] = value
        return grouped

    def partitions_of(self, keys: Iterable[Key]) -> FrozenSet[PartitionId]:
        """Set of partitions touched by ``keys``."""
        return frozenset(self.partition_of(key) for key in keys)

    def is_local(self, keys: Iterable[Key]) -> bool:
        """True when every key lives in a single partition."""
        return len(self.partitions_of(keys)) <= 1

    def local_keys(self, keys: Iterable[Key], partition: PartitionId) -> Set[Key]:
        """Subset of ``keys`` owned by ``partition``."""
        return {key for key in keys if self.partition_of(key) == partition}
