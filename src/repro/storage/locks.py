"""Shared/exclusive lock table.

TransEdge itself never locks — its read-only protocol is lock-free and its
read-write path is optimistic.  The lock table exists for the **Augustus
baseline** (Section 5/6.2 of the paper): Augustus read-only transactions take
shared locks on the keys they read at a quorum of replicas, which is exactly
the interference with read-write transactions that the paper's Table 1
measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.common.types import Key


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _KeyLockState:
    shared_holders: Set[str] = field(default_factory=set)
    exclusive_holder: str = ""

    def is_free(self) -> bool:
        return not self.shared_holders and not self.exclusive_holder


class LockTable:
    """Non-blocking lock table: requests either acquire immediately or fail.

    Augustus-style protocols abort on conflict rather than queueing, so the
    table exposes try-acquire semantics and never blocks the simulation.
    """

    def __init__(self) -> None:
        self._locks: Dict[Key, _KeyLockState] = {}
        self._holdings: Dict[str, Set[Key]] = {}

    # -- queries ------------------------------------------------------------

    def holders(self, key: Key) -> List[str]:
        state = self._locks.get(key)
        if state is None:
            return []
        holders = sorted(state.shared_holders)
        if state.exclusive_holder:
            holders.append(state.exclusive_holder)
        return holders

    def is_share_locked(self, key: Key) -> bool:
        state = self._locks.get(key)
        return bool(state and state.shared_holders)

    def is_exclusive_locked(self, key: Key) -> bool:
        state = self._locks.get(key)
        return bool(state and state.exclusive_holder)

    def can_acquire(self, owner: str, key: Key, mode: LockMode) -> bool:
        state = self._locks.get(key)
        if state is None or state.is_free():
            return True
        if mode is LockMode.SHARED:
            # Shared is compatible with shared; incompatible with a foreign
            # exclusive holder.
            return not state.exclusive_holder or state.exclusive_holder == owner
        # Exclusive requires the key to be free or held only by this owner.
        foreign_shared = state.shared_holders - {owner}
        foreign_exclusive = state.exclusive_holder not in ("", owner)
        return not foreign_shared and not foreign_exclusive

    # -- acquire / release ---------------------------------------------------

    def try_acquire(self, owner: str, keys: Iterable[Key], mode: LockMode) -> bool:
        """Atomically acquire ``mode`` locks on all ``keys`` or none of them."""
        keys = list(keys)
        if not all(self.can_acquire(owner, key, mode) for key in keys):
            return False
        for key in keys:
            state = self._locks.setdefault(key, _KeyLockState())
            if mode is LockMode.SHARED:
                state.shared_holders.add(owner)
            else:
                state.exclusive_holder = owner
            self._holdings.setdefault(owner, set()).add(key)
        return True

    def release_all(self, owner: str) -> None:
        """Release every lock held by ``owner``."""
        for key in self._holdings.pop(owner, set()):
            state = self._locks.get(key)
            if state is None:
                continue
            state.shared_holders.discard(owner)
            if state.exclusive_holder == owner:
                state.exclusive_holder = ""
            if state.is_free():
                del self._locks[key]

    def held_by(self, owner: str) -> Set[Key]:
        return set(self._holdings.get(owner, set()))

    def __len__(self) -> int:
        return len(self._locks)
