"""Storage substrate: multi-version store, hash partitioner, lock table."""

from repro.storage.locks import LockMode, LockTable
from repro.storage.mvstore import MultiVersionStore
from repro.storage.partitioner import HashPartitioner

__all__ = ["HashPartitioner", "LockMode", "LockTable", "MultiVersionStore"]
