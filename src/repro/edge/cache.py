"""Verified per-partition cache of an edge proxy.

The cache keeps, per partition, one *context*: a certified batch header plus
``key → (value, version, proof)`` entries whose proofs all verify against
that header's Merkle root.  Keeping every entry of a context proven against
the *same* header is what lets a whole partition section be handed to a
client as-is — a client verifies a section exactly like a core round-1 reply,
so mixing proofs from different roots would just produce a section the
client rejects.

Staleness is bounded two ways:

* **header lag** — the proxy tracks the newest certified header it has seen
  per partition (fetches and :class:`~repro.edge.messages.HeaderAnnouncement`
  both advance it); a context trailing that header by more than
  ``max_header_lag_batches`` is dropped, forcing a refresh from the core;
* **TTL** — entries older than ``ttl_ms`` of simulated time are dropped,
  which bounds staleness even when no announcements arrive (e.g. a
  partitioned proxy).

Capacity is bounded per partition with LRU eviction.  The cache is a plain
data structure (no network access) so it can be unit-tested in isolation;
:class:`~repro.edge.proxy.EdgeProxy` owns one and fills it from the core.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.common.ids import BatchNumber, PartitionId
from repro.common.types import Key, Value
from repro.core.batch import CertifiedHeader
from repro.crypto.merkle import MerkleProof
from repro.edge.messages import PartitionSection


@dataclass
class CacheEntry:
    """One cached key: its value, version and proof under the context header."""

    value: Value
    version: BatchNumber
    proof: MerkleProof
    cached_at_ms: float


@dataclass
class _PartitionContext:
    """All cached entries of one partition, proven against one header."""

    header: CertifiedHeader
    entries: "OrderedDict[Key, CacheEntry]" = field(default_factory=OrderedDict)


@dataclass
class EdgeCacheStats:
    """Counters scraped by the proxy and aggregated system-wide."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stale_drops: int = 0
    ttl_drops: int = 0


class EdgeCache:
    """Per-partition verified read cache with LRU, TTL and lag bounds."""

    def __init__(
        self,
        capacity_per_partition: int,
        ttl_ms: Optional[float] = None,
        max_header_lag_batches: int = 8,
    ) -> None:
        if capacity_per_partition < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity_per_partition
        self._ttl_ms = ttl_ms
        self._max_lag = max_header_lag_batches
        self._contexts: Dict[PartitionId, _PartitionContext] = {}
        self._latest_numbers: Dict[PartitionId, BatchNumber] = {}
        self.stats = EdgeCacheStats()

    # -- header tracking -----------------------------------------------------

    def note_header(self, partition: PartitionId, header: CertifiedHeader) -> None:
        """Record that ``header`` is the newest certified batch seen for ``partition``."""
        current = self._latest_numbers.get(partition)
        if current is None or header.number > current:
            self._latest_numbers[partition] = header.number

    def latest_number(self, partition: PartitionId) -> Optional[BatchNumber]:
        return self._latest_numbers.get(partition)

    def context_header(self, partition: PartitionId) -> Optional[CertifiedHeader]:
        context = self._contexts.get(partition)
        return context.header if context is not None else None

    # -- lookups ---------------------------------------------------------------

    def lookup(
        self, partition: PartitionId, keys: Iterable[Key], now_ms: float
    ) -> Optional[PartitionSection]:
        """A complete verified section for ``keys``, or None on any miss.

        Partial hits count as misses: the proxy refetches the partition's
        whole requested key set so the resulting section stays proven against
        a single header.
        """
        keys = tuple(keys)
        context = self._usable_context(partition, now_ms)
        if context is None or any(key not in context.entries for key in keys):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        values: Dict[Key, Value] = {}
        versions: Dict[Key, BatchNumber] = {}
        proofs: Dict[Key, MerkleProof] = {}
        for key in keys:
            entry = context.entries[key]
            context.entries.move_to_end(key)
            values[key] = entry.value
            versions[key] = entry.version
            proofs[key] = entry.proof
        return PartitionSection(
            partition=partition,
            values=values,
            versions=versions,
            proofs=proofs,
            header=context.header,
        )

    def _usable_context(
        self, partition: PartitionId, now_ms: float
    ) -> Optional[_PartitionContext]:
        context = self._contexts.get(partition)
        if context is None:
            return None
        latest = self._latest_numbers.get(partition)
        if latest is not None and latest - context.header.number > self._max_lag:
            # Too far behind the announced tip: refresh before serving again.
            self.stats.stale_drops += 1
            del self._contexts[partition]
            return None
        if self._ttl_ms is not None:
            fresh = OrderedDict(
                (key, entry)
                for key, entry in context.entries.items()
                if now_ms - entry.cached_at_ms <= self._ttl_ms
            )
            self.stats.ttl_drops += len(context.entries) - len(fresh)
            context.entries = fresh
        return context

    # -- admission ---------------------------------------------------------------

    def admit(
        self,
        partition: PartitionId,
        header: CertifiedHeader,
        values: Dict[Key, Value],
        versions: Dict[Key, BatchNumber],
        proofs: Dict[Key, MerkleProof],
        now_ms: float,
    ) -> None:
        """Cache a verified core reply for ``partition``.

        Entries merge into the existing context when the header matches;
        a newer header replaces the context wholesale (old proofs do not
        verify against the new root); an older header is ignored.
        """
        context = self._contexts.get(partition)
        if context is not None and header.number < context.header.number:
            return
        if context is None or header.number > context.header.number:
            context = _PartitionContext(header=header)
            self._contexts[partition] = context
        for key, value in values.items():
            proof = proofs.get(key)
            if proof is None:
                continue
            context.entries[key] = CacheEntry(
                value=value,
                version=versions.get(key, -1),
                proof=proof,
                cached_at_ms=now_ms,
            )
            context.entries.move_to_end(key)
        while len(context.entries) > self._capacity:
            context.entries.popitem(last=False)
            self.stats.evictions += 1
        self.note_header(partition, header)

    # -- maintenance --------------------------------------------------------------

    def invalidate_partition(self, partition: PartitionId) -> None:
        self._contexts.pop(partition, None)

    def clear(self) -> None:
        self._contexts.clear()

    def cached_keys(self, partition: PartitionId) -> Tuple[Key, ...]:
        """Keys currently cached for ``partition`` (the proxy's working set).

        Used to *refresh-batch*: when a miss forces a core fetch anyway, the
        proxy asks for the working set too, so the fresh header arrives with
        proofs for everything it already serves and the context survives
        header churn instead of shrinking back to the requested keys.
        """
        context = self._contexts.get(partition)
        if context is None:
            return ()
        return tuple(context.entries)

    def entry_count(self, partition: Optional[PartitionId] = None) -> int:
        if partition is not None:
            context = self._contexts.get(partition)
            return len(context.entries) if context is not None else 0
        return sum(len(context.entries) for context in self._contexts.values())

    def hit_rate(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
