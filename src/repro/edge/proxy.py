"""The untrusted edge read proxy.

An :class:`EdgeProxy` is a :class:`~repro.simnet.proc.ProcessNode` placed in
one region of the simulated edge network (see
:func:`~repro.simnet.latency.proxy_region`).  Clients in the same region
reach it over the short near-edge link; the proxy pays the wide-area cost to
reach core clusters, exactly once per cache miss instead of once per read.

Serving a read:

1. group the requested keys by partition;
2. answer each partition from the cache when a complete, fresh context is
   available (all keys proven against one certified header, within the
   header-lag and TTL bounds);
3. on a miss, fetch the partition's keys from the core cluster's leader with
   a regular :class:`~repro.core.messages.ReadOnlyRequest`, verify the reply
   (an honest proxy does not cache garbage) and admit it;
4. run the CD-vector consistency check over the assembled sections; any
   partition with an unsatisfied dependency is refetched fresh from the core
   once — cheap proxy-side repair that usually spares the client a round 2;
5. reply with the per-partition sections.

Trust model: the proxy is *untrusted*.  Everything it returns is
self-certifying (Merkle proofs against quorum-certified headers) and clients
re-verify all of it, so a byzantine or stale proxy can only be caught —
never believed.  The :mod:`repro.edge.byzantine` behaviours plug in here to
exercise exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.ids import EdgeProxyId, NodeId, PartitionId
from repro.common.types import Key
from repro.core.messages import ReadOnlyReply, ReadOnlyRequest
from repro.core.readonly import PartitionSnapshot, find_unsatisfied_dependencies, verify_snapshot
from repro.core.topology import ClusterTopology
from repro.edge.messages import (
    EdgeReadReply,
    EdgeReadRequest,
    HeaderAnnouncement,
    PartitionSection,
)
from repro.edge.cache import EdgeCache
from repro.simnet.messages import Message
from repro.simnet.node import SimEnvironment
from repro.simnet.proc import Call, Gather, ProcessNode
from repro.storage.partitioner import HashPartitioner


@dataclass
class ProxyCounters:
    """Per-proxy counters, aggregated into ``SystemCounters``."""

    reads_served: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    core_fetches: int = 0
    refresh_rounds: int = 0
    announcements_received: int = 0
    announcements_rejected: int = 0
    rejected_core_replies: int = 0


class ProxyBehaviour:
    """Hook a proxy's reply passes through; the honest default is identity.

    Byzantine behaviours (:mod:`repro.edge.byzantine`) override
    :meth:`mutate` to tamper with sections before they leave the proxy.
    """

    name = "honest"

    def mutate(
        self,
        proxy: "EdgeProxy",
        request: EdgeReadRequest,
        sections: Dict[PartitionId, PartitionSection],
    ) -> Dict[PartitionId, PartitionSection]:
        return sections


class EdgeProxy(ProcessNode):
    """One untrusted read proxy between clients and the core clusters."""

    def __init__(
        self,
        node_id: EdgeProxyId,
        env: SimEnvironment,
        topology: ClusterTopology,
        partitioner: HashPartitioner,
        behaviour: Optional[ProxyBehaviour] = None,
    ) -> None:
        super().__init__(node_id, env)
        self.config: SystemConfig = env.config
        self.topology = topology
        self.partitioner = partitioner
        self.counters = ProxyCounters()
        self.behaviour = behaviour or ProxyBehaviour()
        edge = self.config.edge
        self.cache = EdgeCache(
            capacity_per_partition=edge.cache_capacity,
            ttl_ms=edge.cache_ttl_ms,
            max_header_lag_batches=edge.max_header_lag_batches,
        )
        self.register_handler(EdgeReadRequest, self._on_edge_read)
        self.register_handler(HeaderAnnouncement, self._on_announcement)

    # ------------------------------------------------------------------
    # processing-cost model
    # ------------------------------------------------------------------

    def processing_cost_ms(self, message: Message) -> float:
        costs = self.config.costs
        if isinstance(message, EdgeReadRequest):
            # Serving from cache is a plain lookup per key; proofs are stored,
            # not recomputed, so no per-level Merkle charge applies.
            return costs.message_handling_ms + len(message.keys) * costs.read_op_ms
        if isinstance(message, HeaderAnnouncement):
            return costs.signature_verify_ms
        if isinstance(message, ReadOnlyReply):
            return costs.message_handling_ms + len(message.values) * costs.read_op_ms
        return costs.message_handling_ms

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _on_edge_read(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, EdgeReadRequest)
        self.spawn(self._serve(message, src), name=f"serve-{message.request_id}")

    def _on_announcement(self, message: Message, src: NodeId) -> None:
        assert isinstance(message, HeaderAnnouncement)
        header = message.header
        if header is None or header.partition != message.partition:
            return
        # Announcements steer cache refreshes; verifying them keeps a
        # byzantine core leader from inflating this proxy's idea of "newest"
        # (which would needlessly churn its cache).
        if not header.verify(
            self.verifier,
            self.topology.members(header.partition),
            self.config.certificate_size,
        ):
            self.counters.announcements_rejected += 1
            self.env.obs.event(
                str(self.node_id),
                "edge-announcement-rejected",
                "warn",
                {"partition": int(message.partition)},
            )
            return
        self.counters.announcements_received += 1
        self.cache.note_header(message.partition, header)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def _serve(
        self, message: EdgeReadRequest, src: NodeId
    ) -> Generator[object, object, None]:
        grouped = self.partitioner.group_keys(message.keys)
        sections: Dict[PartitionId, PartitionSection] = {}
        from_cache: List[PartitionId] = []
        hits: Dict[PartitionId, PartitionSection] = {}
        for partition in sorted(grouped):
            keys = tuple(sorted(grouped[partition]))
            section = self.cache.lookup(partition, keys, now_ms=self.now)
            if section is not None:
                hits[partition] = section
        # A hit only counts when the cached section is actually served: a
        # partial hit is refetched below, so charging it as a hit would
        # inflate the rate fig_edge reports (and CI gates on).
        if len(hits) == len(grouped):
            self.counters.cache_hits += len(hits)
            # Fully cached: serve locally.  Contexts admitted together (every
            # fetch refreshes all accessed partitions' working sets in one
            # round) stay mutually CD-consistent, so this almost never needs
            # the repair round below.
            sections.update(hits)
            from_cache.extend(hits)
        else:
            self.counters.cache_misses += len(grouped)
            # Any miss refetches *all* accessed partitions in one parallel
            # round: mixing a fresh header with lagging cached contexts would
            # just fail the CD check and cost a second core round anyway.
            fetched = yield from self._fetch_many(grouped, sorted(grouped))
            sections.update(fetched)
        # CD-vector consistency check over the assembled sections: refetch
        # lagging partitions once so the client usually gets a mutually
        # consistent snapshot without its own dependency-repair round.
        required = self._unsatisfied(grouped, sections)
        if required:
            self.counters.refresh_rounds += 1
            self.env.obs.event(
                str(self.node_id),
                "edge-refresh",
                "info",
                {"partitions": sorted(int(p) for p in required)},
            )
            fresh = yield from self._fetch_many(grouped, sorted(required))
            for partition, section in fresh.items():
                sections[partition] = section
                if partition in from_cache:
                    from_cache.remove(partition)
        sections = self.behaviour.mutate(self, message, sections)
        self.counters.reads_served += 1
        self.send(
            src,
            EdgeReadReply(
                request_id=message.request_id,
                sections=sections,
                from_cache=tuple(from_cache),
            ),
        )

    def _fetch_many(
        self,
        grouped: Dict[PartitionId, List[Key]],
        partitions: List[PartitionId],
    ) -> Generator[object, object, Dict[PartitionId, PartitionSection]]:
        """Fill misses from the core clusters — one parallel round for all.

        Each request also *refresh-batches*: it asks for the partition's
        cached working set alongside the missed keys, so the reply's fresh
        header comes with proofs for everything already cached and the
        context survives header churn at the cost of zero extra round trips.
        """
        if not partitions:
            return {}
        calls = []
        for partition in partitions:
            fetch_keys = set(grouped[partition])
            budget = self.config.edge.cache_capacity - len(fetch_keys)
            if budget > 0:
                fetch_keys.update(self.cache.cached_keys(partition)[:budget])
            calls.append(
                Call(
                    self.topology.leader(partition),
                    ReadOnlyRequest(keys=tuple(sorted(fetch_keys))),
                )
            )
        replies = yield Gather(calls, timeout_ms=self.config.edge.fetch_timeout_ms)
        sections: Dict[PartitionId, PartitionSection] = {}
        for partition, reply in zip(partitions, replies):
            section = self._admit_reply(
                partition, tuple(sorted(grouped[partition])), reply
            )
            if section is not None:
                sections[partition] = section
        return sections

    def _admit_reply(
        self, partition: PartitionId, requested: Tuple[Key, ...], reply: object
    ) -> Optional[PartitionSection]:
        """Verify a core reply, cache it, and cut the requested-keys section."""
        if reply is None or not isinstance(reply, ReadOnlyReply) or reply.header is None:
            return None
        self.counters.core_fetches += 1
        snapshot = PartitionSnapshot(
            partition=partition,
            keys=tuple(sorted(reply.values)),
            values=dict(reply.values),
            versions=dict(reply.versions),
            proofs=dict(reply.proofs),
            header=reply.header,
        )
        # No staleness bound here (now_ms=None): freshness is the *client's*
        # policy; the proxy only refuses responses that are provably forged.
        if verify_snapshot(snapshot, self.verifier, self.topology, self.config):
            self.cache.admit(
                partition,
                reply.header,
                dict(reply.values),
                dict(reply.versions),
                dict(reply.proofs),
                now_ms=self.now,
            )
        else:
            self.counters.rejected_core_replies += 1
            self.env.obs.event(
                str(self.node_id),
                "edge-reply-rejected",
                "warn",
                {"partition": int(partition)},
            )
        return PartitionSection(
            partition=partition,
            values={key: reply.values[key] for key in requested if key in reply.values},
            versions={key: reply.versions[key] for key in requested if key in reply.versions},
            proofs={key: reply.proofs[key] for key in requested if key in reply.proofs},
            header=reply.header,
        )

    def _unsatisfied(
        self,
        grouped: Dict[PartitionId, List[Key]],
        sections: Dict[PartitionId, PartitionSection],
    ) -> Dict[PartitionId, int]:
        snapshots = {
            partition: PartitionSnapshot(
                partition=partition,
                keys=tuple(sorted(grouped[partition])),
                values=section.values,
                versions=section.versions,
                proofs=section.proofs,
                header=section.header,
            )
            for partition, section in sections.items()
        }
        return find_unsatisfied_dependencies(snapshots)
