"""Messages of the edge read-proxy tier.

Two small protocols:

* **client ↔ proxy** — a client sends an :class:`EdgeReadRequest` for the
  whole key set of a snapshot read-only transaction; the proxy answers with
  one :class:`PartitionSection` per accessed partition, each shaped exactly
  like a core round-1 reply (values, versions, Merkle proofs, certified
  header).  The client verifies every section exactly as it verifies a core
  reply — the proxy adds no trust, only proximity.
* **core leader → proxy** — a :class:`HeaderAnnouncement` pushes a freshly
  certified batch header so the proxy knows how stale its cached contexts
  are; announcements carry no data and are verified against the cluster's
  signatures before adoption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.ids import BatchNumber, PartitionId
from repro.common.types import Key, Value
from repro.core.batch import CertifiedHeader
from repro.crypto.merkle import MerkleProof
from repro.simnet.messages import Message, ReplyMessage, RequestMessage


@dataclass
class PartitionSection:
    """One partition's share of an edge read reply (round-1 reply shape)."""

    partition: PartitionId
    values: Dict[Key, Value] = field(default_factory=dict)
    versions: Dict[Key, BatchNumber] = field(default_factory=dict)
    proofs: Dict[Key, MerkleProof] = field(default_factory=dict)
    header: Optional[CertifiedHeader] = None


@dataclass
class EdgeReadRequest(RequestMessage):
    """Client → proxy: serve a snapshot read over ``keys`` from your cache."""

    keys: Tuple[Key, ...] = ()


@dataclass
class EdgeReadReply(ReplyMessage):
    """Proxy → client: per-partition sections, each independently verifiable.

    ``from_cache`` records which partitions were served from the proxy's
    cache (vs. fetched from the core on a miss); it is bookkeeping only —
    clients never trust it, they verify the sections either way.
    """

    sections: Dict[PartitionId, PartitionSection] = field(default_factory=dict)
    from_cache: Tuple[PartitionId, ...] = ()


@dataclass
class HeaderAnnouncement(Message):
    """Core leader → proxies: a new batch header was certified (no payload)."""

    partition: PartitionId = 0
    header: Optional[CertifiedHeader] = None
