"""Client-side proxy selection and blacklisting.

Every client owns one :class:`EdgeRouter`.  The router knows the deployment's
proxy ids and picks one per read-only transaction:

* ``"nearest"`` — prefer proxies placed in the client's own region (the
  near-edge link, see :func:`~repro.simnet.latency.proxy_region`), falling
  back to round-robin over the remaining proxies;
* ``"round-robin"`` — spread reads over all proxies evenly.

Blacklisting is *client-local* knowledge: a proxy whose response failed
verification is never asked again by this client (a byzantine proxy can
serve other clients honestly, so a shared blacklist would itself be a trust
assumption).  With every proxy blacklisted the router returns ``None`` and
the client reads directly from the core.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.common.ids import EdgeProxyId, PartitionId
from repro.simnet.latency import proxy_region


class EdgeRouter:
    """Pick a proxy for each read; remember the ones caught misbehaving."""

    def __init__(
        self,
        proxies: Sequence[EdgeProxyId],
        home_partition: PartitionId,
        num_partitions: int,
        policy: str = "nearest",
    ) -> None:
        self._proxies: List[EdgeProxyId] = list(proxies)
        self._policy = policy
        self._blacklisted: Set[EdgeProxyId] = set()
        self._round_robin = 0
        self._near: List[EdgeProxyId] = [
            proxy
            for proxy in self._proxies
            if proxy_region(proxy, num_partitions) == home_partition
        ]

    def pick(self) -> Optional[EdgeProxyId]:
        """The proxy to use for the next read (None when none is usable).

        ``nearest`` round-robins over the usable same-region proxies and only
        widens to the remaining proxies when no near one is usable;
        ``round-robin`` spreads over all usable proxies regardless of region.
        """
        candidates = [p for p in self._proxies if p not in self._blacklisted]
        if not candidates:
            return None
        if self._policy == "nearest":
            near = [p for p in self._near if p not in self._blacklisted]
            if near:
                candidates = near
        choice = candidates[self._round_robin % len(candidates)]
        self._round_robin += 1
        return choice

    def blacklist(self, proxy: EdgeProxyId) -> None:
        """Never ask ``proxy`` again (its response failed verification)."""
        self._blacklisted.add(proxy)

    def blacklisted(self) -> frozenset:
        return frozenset(self._blacklisted)

    def usable_count(self) -> int:
        return len(self._proxies) - len(self._blacklisted)
