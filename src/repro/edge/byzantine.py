"""Byzantine edge-proxy behaviours.

Each behaviour plugs into :class:`~repro.edge.proxy.EdgeProxy` and corrupts
the reply in one specific way a hostile proxy operator could attempt:

* :class:`TamperedValueBehaviour` — return a modified value while keeping
  the original proof (e.g. serving doctored content);
* :class:`TamperedProofBehaviour` — return the true value but a corrupted
  proof (e.g. a proxy that lost its proof store and fabricates one);
* :class:`StaleHeaderBehaviour` — pin the first snapshot it ever served and
  replay it forever (e.g. a proxy hiding new writes behind old, genuinely
  certified state — a *freshness* attack, every signature checks out).

All three are caught client-side: the first two fail proof/header
verification outright; the stale replay fails the client's freshness bound
(``FreshnessConfig.client_staleness_bound_ms``), which is exactly the knob
the paper's Section 4.4.2 adds for this attack.  On any failure the client
blacklists the proxy and re-reads from the core, so the attacks cost
latency, never correctness.

Mutations operate on copies — a byzantine proxy still keeps an intact cache,
which makes the attack maximally sneaky (only the wire data lies).
"""

from __future__ import annotations

import copy
from typing import Dict

from repro.common.ids import PartitionId
from repro.crypto.merkle import MerkleProof, ProofStep
from repro.edge.messages import EdgeReadRequest, PartitionSection
from repro.edge.proxy import EdgeProxy, ProxyBehaviour


def _flip_first_byte(value: bytes) -> bytes:
    if not value:
        return b"\x01"
    return bytes([value[0] ^ 0xFF]) + value[1:]


class TamperedValueBehaviour(ProxyBehaviour):
    """Serve a corrupted value under the genuine proof and header."""

    name = "tampered-value"

    def __init__(self) -> None:
        self.mutations = 0

    def mutate(
        self,
        proxy: EdgeProxy,
        request: EdgeReadRequest,
        sections: Dict[PartitionId, PartitionSection],
    ) -> Dict[PartitionId, PartitionSection]:
        mutated = copy.deepcopy(sections)
        for section in mutated.values():
            for key in sorted(section.values):
                section.values[key] = _flip_first_byte(section.values[key])
                self.mutations += 1
                break  # one corrupted key per section is enough to be caught
        return mutated


class TamperedProofBehaviour(ProxyBehaviour):
    """Serve the true value but a fabricated Merkle proof."""

    name = "tampered-proof"

    def __init__(self) -> None:
        self.mutations = 0

    def mutate(
        self,
        proxy: EdgeProxy,
        request: EdgeReadRequest,
        sections: Dict[PartitionId, PartitionSection],
    ) -> Dict[PartitionId, PartitionSection]:
        mutated = copy.deepcopy(sections)
        for section in mutated.values():
            for key in sorted(section.proofs):
                proof = section.proofs[key]
                if not proof.steps:
                    continue
                first = proof.steps[0]
                corrupted = ProofStep(
                    sibling=_flip_first_byte(first.sibling),
                    sibling_is_left=first.sibling_is_left,
                )
                section.proofs[key] = MerkleProof(
                    key=proof.key, steps=(corrupted,) + proof.steps[1:]
                )
                self.mutations += 1
                break
        return mutated


class StaleHeaderBehaviour(ProxyBehaviour):
    """Replay the first (genuinely certified) snapshot forever.

    Signatures and proofs all verify — the lie is purely about *time*, so
    only the client's freshness bound catches it.  The pin is per partition
    and per key set, so workloads that re-read a fixed key set observe a
    frozen database while the core moves on.
    """

    name = "stale-header"

    def __init__(self) -> None:
        self.replays = 0
        self._pinned: Dict[PartitionId, PartitionSection] = {}

    def mutate(
        self,
        proxy: EdgeProxy,
        request: EdgeReadRequest,
        sections: Dict[PartitionId, PartitionSection],
    ) -> Dict[PartitionId, PartitionSection]:
        result: Dict[PartitionId, PartitionSection] = {}
        for partition, section in sections.items():
            pinned = self._pinned.get(partition)
            usable = pinned is not None and all(
                key in pinned.values for key in section.values
            )
            if usable:
                self.replays += 1
                result[partition] = pinned
            else:
                self._pinned[partition] = copy.deepcopy(section)
                result[partition] = section
        return result


BEHAVIOURS = {
    behaviour.name: behaviour
    for behaviour in (
        TamperedValueBehaviour,
        TamperedProofBehaviour,
        StaleHeaderBehaviour,
    )
}


def make_behaviour(name: str) -> ProxyBehaviour:
    """Instantiate a byzantine behaviour by name (see :data:`BEHAVIOURS`)."""
    try:
        return BEHAVIOURS[name]()
    except KeyError:
        known = ", ".join(sorted(BEHAVIOURS))
        raise ValueError(f"unknown byzantine proxy behaviour {name!r}; expected one of {known}")


def install_byzantine(proxy: EdgeProxy, name: str) -> ProxyBehaviour:
    """Make ``proxy`` byzantine in place and return the installed behaviour."""
    behaviour = make_behaviour(name)
    proxy.behaviour = behaviour
    return behaviour
