"""``repro.edge`` — the untrusted edge read-proxy tier.

TransEdge's setting is reads across untrusted edge nodes; this package adds
that tier to the reproduction.  Edge proxies sit between clients and the
core partition clusters, cache recent certified batch headers plus verified
``(key, value, version, proof)`` entries, and serve snapshot read-only
requests from the near edge when the CD-vector consistency check allows —
falling back to the core for misses and dependency repair.  Proxies add no
trust: clients re-verify every proof and header, and a proxy caught lying
(or replaying stale state) is blacklisted and bypassed.

Enable with ``SystemConfig(edge=EdgeConfig(enabled=True, ...))``; the
default (disabled) leaves the deployment byte-for-byte unchanged.
"""

from repro.edge.cache import CacheEntry, EdgeCache, EdgeCacheStats
from repro.edge.byzantine import (
    BEHAVIOURS,
    StaleHeaderBehaviour,
    TamperedProofBehaviour,
    TamperedValueBehaviour,
    install_byzantine,
    make_behaviour,
)
from repro.edge.messages import (
    EdgeReadReply,
    EdgeReadRequest,
    HeaderAnnouncement,
    PartitionSection,
)
from repro.edge.proxy import EdgeProxy, ProxyBehaviour, ProxyCounters
from repro.edge.routing import EdgeRouter

__all__ = [
    "BEHAVIOURS",
    "CacheEntry",
    "EdgeCache",
    "EdgeCacheStats",
    "EdgeProxy",
    "EdgeReadReply",
    "EdgeReadRequest",
    "EdgeRouter",
    "HeaderAnnouncement",
    "PartitionSection",
    "ProxyBehaviour",
    "ProxyCounters",
    "StaleHeaderBehaviour",
    "TamperedProofBehaviour",
    "TamperedValueBehaviour",
    "install_byzantine",
    "make_behaviour",
]
