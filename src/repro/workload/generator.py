"""YCSB-inspired transactional workload generator.

Following Section 5.1 of the paper, the generator produces *transaction
specifications* — which keys to read, which keys to write and with what
values — that drivers then execute through a client.  The default profile
mirrors the paper's: read-write transactions carry 5 reads and 3 writes
spread over the clusters, read-only transactions read one key from each
accessed cluster, keys are chosen uniformly over the hashed key space, and
values are opaque byte strings of a configured size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence

from repro.common.ids import PartitionId
from repro.common.types import Key, TxnKind, Value
from repro.storage.partitioner import HashPartitioner
from repro.workload.distributions import KeyChooser, make_chooser


@dataclass(frozen=True)
class TxnSpec:
    """One transaction to execute: keys to read, values to write."""

    kind: TxnKind
    read_keys: tuple
    writes: Mapping[Key, Value]

    def op_count(self) -> int:
        return len(self.read_keys) + len(self.writes)


@dataclass
class WorkloadProfile:
    """Knobs describing a workload mix (defaults follow Section 5.1)."""

    read_ops: int = 5
    write_ops: int = 3
    read_only_ops: int = 5
    clusters_per_read_only: Optional[int] = None
    local_fraction: float = 0.0
    write_only_fraction: float = 0.0
    read_only_fraction: float = 0.0
    value_size: int = 256
    distribution: str = "uniform"
    zipf_theta: float = 0.99

    def validate(self) -> "WorkloadProfile":
        for name in ("local_fraction", "write_only_fraction", "read_only_fraction"):
            fraction = getattr(self, name)
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.read_ops < 0 or self.write_ops < 0 or self.read_only_ops < 1:
            raise ValueError("operation counts must be non-negative (>=1 for read-only)")
        if self.value_size < 1:
            raise ValueError("value_size must be >= 1")
        return self


class WorkloadGenerator:
    """Generates transaction specifications over a fixed key population."""

    def __init__(
        self,
        keys: Sequence[Key],
        partitioner: HashPartitioner,
        profile: Optional[WorkloadProfile] = None,
        seed: int = 11,
    ) -> None:
        if not keys:
            raise ValueError("workload needs a non-empty key population")
        self.profile = (profile or WorkloadProfile()).validate()
        self.partitioner = partitioner
        self._rng = random.Random(seed)
        self._keys = list(keys)
        self._keys_by_partition: Dict[PartitionId, List[Key]] = {}
        for key in self._keys:
            self._keys_by_partition.setdefault(partitioner.partition_of(key), []).append(key)
        for partition_keys in self._keys_by_partition.values():
            partition_keys.sort()
        self._chooser: KeyChooser = make_chooser(
            self._keys, self.profile.distribution, self.profile.zipf_theta
        )
        self._choosers_by_partition: Dict[PartitionId, KeyChooser] = {
            partition: make_chooser(keys, self.profile.distribution, self.profile.zipf_theta)
            for partition, keys in self._keys_by_partition.items()
        }
        self._value_counter = 0

    # ------------------------------------------------------------------
    # value generation
    # ------------------------------------------------------------------

    def next_value(self) -> Value:
        """A fresh, identifiable value padded to the configured size."""
        self._value_counter += 1
        prefix = f"v{self._value_counter:012d}:".encode("ascii")
        return prefix.ljust(self.profile.value_size, b"x")

    # ------------------------------------------------------------------
    # single-transaction generators
    # ------------------------------------------------------------------

    def partitions(self) -> List[PartitionId]:
        return sorted(self._keys_by_partition)

    def keys_in_partition(self, partition: PartitionId, count: int) -> List[Key]:
        chooser = self._choosers_by_partition[partition]
        return chooser.choose_distinct(count, self._rng)

    def local_read_write(self, partition: Optional[PartitionId] = None) -> TxnSpec:
        """A read-write transaction confined to a single partition."""
        if partition is None:
            partition = self._rng.choice(self.partitions())
        needed = self.profile.read_ops + self.profile.write_ops
        keys = self.keys_in_partition(partition, needed)
        read_keys = keys[: self.profile.read_ops]
        write_keys = keys[self.profile.read_ops:]
        if not write_keys and keys:
            write_keys = [keys[-1]]
        return TxnSpec(
            kind=TxnKind.LOCAL_READ_WRITE,
            read_keys=tuple(read_keys),
            writes={key: self.next_value() for key in write_keys},
        )

    def local_write_only(self, partition: Optional[PartitionId] = None) -> TxnSpec:
        """A write-only transaction confined to a single partition."""
        if partition is None:
            partition = self._rng.choice(self.partitions())
        write_count = max(1, self.profile.write_ops)
        keys = self.keys_in_partition(partition, write_count)
        return TxnSpec(
            kind=TxnKind.LOCAL_WRITE_ONLY,
            read_keys=(),
            writes={key: self.next_value() for key in keys},
        )

    def distributed_read_write(
        self,
        read_ops: Optional[int] = None,
        write_ops: Optional[int] = None,
    ) -> TxnSpec:
        """A read-write transaction whose operations span the clusters.

        Operations are dealt round-robin over the partitions (the paper's
        experiments "ensure that each transaction reads or writes some data
        on each participating cluster").
        """
        read_ops = self.profile.read_ops if read_ops is None else read_ops
        write_ops = self.profile.write_ops if write_ops is None else write_ops
        partitions = self.partitions()
        total_ops = read_ops + write_ops
        chosen: List[Key] = []
        seen = set()
        for index in range(total_ops):
            partition = partitions[index % len(partitions)]
            for candidate in self.keys_in_partition(partition, 1 + len(seen)):
                if candidate not in seen:
                    chosen.append(candidate)
                    seen.add(candidate)
                    break
        read_keys = chosen[:read_ops]
        write_keys = chosen[read_ops:]
        return TxnSpec(
            kind=TxnKind.DISTRIBUTED_READ_WRITE,
            read_keys=tuple(read_keys),
            writes={key: self.next_value() for key in write_keys},
        )

    def skewed_read_write(self, read_ops: int, write_ops: int) -> TxnSpec:
        """A read/write-skewed transaction as in Figures 10-11 of the paper.

        Reads stay on the transaction's home partition while each write goes
        to a distinct partition (the home partition first), so the number of
        clusters participating in 2PC equals the number of write operations —
        "R=5,W=1 essentially means local read-write transactions" (Section
        5.2), and skewing towards writes means coordinating more clusters.
        """
        partitions = self.partitions()
        home = self._rng.choice(partitions)
        write_partitions = [home] + [p for p in partitions if p != home]
        write_partitions = write_partitions[: max(1, min(write_ops, len(partitions)))]
        read_keys = self.keys_in_partition(home, read_ops) if read_ops > 0 else []
        writes: Dict[Key, Value] = {}
        for index in range(write_ops):
            partition = write_partitions[index % len(write_partitions)]
            for candidate in self.keys_in_partition(partition, index + 1):
                if candidate not in writes and candidate not in read_keys:
                    writes[candidate] = self.next_value()
                    break
        kind = (
            TxnKind.LOCAL_READ_WRITE
            if len(write_partitions) == 1
            else TxnKind.DISTRIBUTED_READ_WRITE
        )
        return TxnSpec(kind=kind, read_keys=tuple(read_keys), writes=writes)

    def read_only(self, clusters: Optional[int] = None, ops: Optional[int] = None) -> TxnSpec:
        """A read-only transaction reading from ``clusters`` distinct partitions.

        Matching Section 5.1, the default reads one key from each accessed
        cluster; ``ops`` can raise the total read count (Figure 7's
        long-running read-only transactions), in which case reads are spread
        round-robin over the accessed clusters.
        """
        partitions = self.partitions()
        if clusters is None:
            clusters = (
                self.profile.clusters_per_read_only
                if self.profile.clusters_per_read_only is not None
                else len(partitions)
            )
        clusters = max(1, min(clusters, len(partitions)))
        accessed = self._rng.sample(partitions, clusters)
        ops = self.profile.read_only_ops if ops is None else ops
        ops = max(ops, clusters)
        per_partition = {partition: 0 for partition in accessed}
        for index in range(ops):
            per_partition[accessed[index % clusters]] += 1
        read_keys: List[Key] = []
        for partition, count in per_partition.items():
            read_keys.extend(self.keys_in_partition(partition, count))
        return TxnSpec(kind=TxnKind.READ_ONLY, read_keys=tuple(read_keys), writes={})

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------

    def mixed_stream(
        self,
        count: int,
        local_fraction: Optional[float] = None,
        read_only_fraction: Optional[float] = None,
        write_only_fraction: Optional[float] = None,
    ) -> Iterator[TxnSpec]:
        """An endless-enough stream of transactions following the mix fractions."""
        local_fraction = (
            self.profile.local_fraction if local_fraction is None else local_fraction
        )
        read_only_fraction = (
            self.profile.read_only_fraction if read_only_fraction is None else read_only_fraction
        )
        write_only_fraction = (
            self.profile.write_only_fraction if write_only_fraction is None else write_only_fraction
        )
        for _ in range(count):
            draw = self._rng.random()
            if draw < read_only_fraction:
                yield self.read_only()
            elif draw < read_only_fraction + write_only_fraction:
                yield self.local_write_only()
            elif draw < read_only_fraction + write_only_fraction + local_fraction:
                yield self.local_read_write()
            else:
                yield self.distributed_read_write()

    def stream_of(self, count: int, kind: TxnKind, **kwargs) -> Iterator[TxnSpec]:
        """A stream of ``count`` transactions of one kind."""
        makers = {
            TxnKind.LOCAL_WRITE_ONLY: self.local_write_only,
            TxnKind.LOCAL_READ_WRITE: self.local_read_write,
            TxnKind.DISTRIBUTED_READ_WRITE: self.distributed_read_write,
            TxnKind.READ_ONLY: self.read_only,
        }
        maker = makers[kind]
        for _ in range(count):
            yield maker(**kwargs)
