"""Key-choice distributions for the workload generator.

The paper's workload picks keys uniformly at random over a hashed key space
(Section 5.1).  A Zipfian chooser is also provided for skewed-contention
experiments and ablations — contention is what drives abort rates, so being
able to dial it is useful even though the paper's headline numbers use the
uniform distribution.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Protocol, Sequence, Set


class KeyChooser(Protocol):
    """Chooses keys from a fixed population."""

    def choose(self, rng: random.Random) -> str:
        ...  # pragma: no cover - protocol definition

    def choose_distinct(self, count: int, rng: random.Random) -> List[str]:
        ...  # pragma: no cover - protocol definition


class UniformKeyChooser:
    """Every key is equally likely."""

    def __init__(self, keys: Sequence[str]) -> None:
        if not keys:
            raise ValueError("key population must not be empty")
        self._keys = list(keys)

    def choose(self, rng: random.Random) -> str:
        return self._keys[rng.randrange(len(self._keys))]

    def choose_distinct(self, count: int, rng: random.Random) -> List[str]:
        count = min(count, len(self._keys))
        if count > len(self._keys) // 2:
            return rng.sample(self._keys, count)
        # Keys are returned in draw order, not set-iteration order: string
        # hashing is randomised per process, so iterating a set here would
        # make "same seed" runs diverge across processes (which the trace
        # digest regression oracle would catch).
        chosen: List[str] = []
        seen: Set[str] = set()
        while len(chosen) < count:
            key = self.choose(rng)
            if key not in seen:
                seen.add(key)
                chosen.append(key)
        return chosen


class ZipfianKeyChooser:
    """Keys follow a Zipf distribution: low ranks are disproportionately popular.

    ``theta`` is the usual YCSB skew parameter (0 = uniform, 0.99 = heavily
    skewed).  The cumulative weights are precomputed so choosing is a binary
    search.
    """

    def __init__(self, keys: Sequence[str], theta: float = 0.99) -> None:
        if not keys:
            raise ValueError("key population must not be empty")
        if not 0 <= theta < 1.5:
            raise ValueError("theta must be in [0, 1.5)")
        self._keys = list(keys)
        weights = [1.0 / ((rank + 1) ** theta) for rank in range(len(self._keys))]
        total = 0.0
        self._cumulative: List[float] = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def choose(self, rng: random.Random) -> str:
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        index = min(index, len(self._keys) - 1)
        return self._keys[index]

    def choose_distinct(self, count: int, rng: random.Random) -> List[str]:
        count = min(count, len(self._keys))
        # Draw order, not set order — see UniformKeyChooser.choose_distinct.
        chosen: List[str] = []
        seen: Set[str] = set()
        attempts = 0
        while len(chosen) < count and attempts < 50 * count:
            key = self.choose(rng)
            if key not in seen:
                seen.add(key)
                chosen.append(key)
            attempts += 1
        remaining = [key for key in self._keys if key not in seen]
        while len(chosen) < count and remaining:
            key = remaining.pop()
            seen.add(key)
            chosen.append(key)
        return chosen


def make_chooser(keys: Sequence[str], distribution: str = "uniform", theta: float = 0.99) -> KeyChooser:
    """Factory used by workload profiles (``'uniform'`` or ``'zipfian'``)."""
    if distribution == "uniform":
        return UniformKeyChooser(keys)
    if distribution == "zipfian":
        return ZipfianKeyChooser(keys, theta=theta)
    raise ValueError(f"unknown key distribution {distribution!r}")
