"""Workload generation (YCSB-inspired transactional workloads, Section 5.1)."""

from repro.workload.distributions import (
    KeyChooser,
    UniformKeyChooser,
    ZipfianKeyChooser,
    make_chooser,
)
from repro.workload.generator import TxnSpec, WorkloadGenerator, WorkloadProfile

__all__ = [
    "KeyChooser",
    "TxnSpec",
    "UniformKeyChooser",
    "WorkloadGenerator",
    "WorkloadProfile",
    "ZipfianKeyChooser",
    "make_chooser",
]
