"""Versioned Merkle tree archive: cheap historical trees for snapshot reads.

Round two of the snapshot read-only protocol asks a replica to prove keys
against the Merkle root of an *older* batch.  Rebuilding that tree from a
materialised historical snapshot costs O(K) in the partition size — the
paper's cheapest operation would scale with the database, not the read.

The archive exploits the fact that consecutive committed trees differ only
along the root paths of the batch's dirty keys.  Whenever the current tree is
about to absorb a batch's updates in place, the archive records a *reverse
delta*: the digests currently stored on those root paths, O(dirty · log K)
space and time.  A batch that inserts brand-new keys shifts leaf positions
and forces :class:`~repro.crypto.merkle.MerkleStore` to rebuild; the
superseded tree object is then retired into the archive wholesale (it is
immutable from that point on, so this is a reference, not a copy).

``tree_at(batch)`` resolves a historical tree as a read-only
:class:`HistoricalTreeView`: digest lookups fall through the reverse deltas
from the requested state towards the present, stopping at the first retired
full tree (or the live tree).  Proofs produced by the view are byte-identical
to proofs from a from-scratch tree over the historical snapshot, because the
leaf order and level structure are exactly those of the base tree.

Retention is driven by the checkpoint manager: when a checkpoint becomes
stable, the archive is pruned alongside the multi-version store and the
certified-header list, so the three always answer the same window of batches.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Collection, Dict, List, Optional, Sequence, Union

from repro.common.errors import ProofError
from repro.common.ids import NO_BATCH, BatchNumber
from repro.common.types import Key
from repro.crypto.hashing import Digest
from repro.crypto.merkle import EMPTY_ROOT, MerkleProof, MerkleTree, proof_steps

#: A reverse delta: for every tree level, the superseded digests by node index.
ReverseDelta = List[Dict[int, Digest]]


class HistoricalTreeView:
    """A past Merkle tree, resolved lazily through reverse deltas.

    The view shares the level *structure* (leaf order, level sizes) with
    ``base`` — valid because deltas are only recorded between trees with an
    identical key set — and answers digest lookups by checking the deltas
    oldest-first before falling through to the base tree.

    A view whose base is the *live* tree is only valid until the next
    archived apply mutates that tree in place; ``stale_check`` (installed by
    the archive) makes such a view raise :class:`ProofError` afterwards
    instead of silently mixing old delta cells with new live digests.
    """

    def __init__(
        self,
        base: MerkleTree,
        deltas: Sequence[ReverseDelta],
        stale_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._base = base
        self._deltas = tuple(deltas)
        self._stale_check = stale_check

    def _ensure_fresh(self) -> None:
        if self._stale_check is not None and self._stale_check():
            raise ProofError(
                "historical tree view is stale: the live tree advanced past it"
            )

    def _digest_at(self, level: int, index: int) -> Digest:
        for delta in self._deltas:
            cells = delta[level]
            if index in cells:
                return cells[index]
        return self._base._levels[level][index]

    @property
    def root(self) -> Digest:
        self._ensure_fresh()
        if not self._base._levels[0]:
            return EMPTY_ROOT
        return self._digest_at(len(self._base._levels) - 1, 0)

    def __contains__(self, key: Key) -> bool:
        return key in self._base._index

    def __len__(self) -> int:
        return len(self._base)

    def keys(self) -> Sequence[Key]:
        return self._base.keys()

    def prove(self, key: Key) -> MerkleProof:
        """Membership proof for ``key`` against this historical root.

        Byte-identical to ``MerkleTree(historical_items).prove(key)``: the
        walk is the shared :func:`~repro.crypto.merkle.proof_steps` over this
        view's digest accessor, and the level structure is the base tree's.
        """
        self._ensure_fresh()
        if key not in self._base._index:
            raise ProofError(f"key {key!r} is not in the Merkle tree")
        steps = proof_steps(
            [len(level) for level in self._base._levels],
            self._base._index[key],
            self._digest_at,
        )
        return MerkleProof(key=key, steps=steps)


@dataclass
class _Record:
    """One archived state: the tree right after ``batch`` was applied.

    Exactly one of ``delta``/``tree`` is set.  A delta record is relative to
    the next-newer record (or the live tree); a tree record is self-contained
    and terminates delta resolution for every older record.

    ``swallowed_min`` is set by :meth:`MerkleTreeArchive.compact`: it is the
    smallest batch number whose state was merged into this record and can no
    longer be reproduced exactly.  ``tree_at(b)`` answers from this record
    only for ``b < swallowed_min`` — beyond it the record's state would be
    silently wrong for ``b``, so the archive refuses instead (the replica
    falls back to a rebuild).
    """

    batch: BatchNumber
    delta: Optional[ReverseDelta] = None
    tree: Optional[MerkleTree] = None
    swallowed_min: Optional[BatchNumber] = None


class MerkleTreeArchive:
    """Per-partition history of committed Merkle trees as reverse deltas.

    The owning :class:`~repro.crypto.merkle.MerkleStore` notifies the archive
    immediately *before* folding a batch into the current tree; the archive
    captures whatever is needed to keep answering for the superseded state.
    ``max_batches`` bounds memory when checkpoint-driven pruning is disabled.
    """

    def __init__(self, max_batches: int = 512) -> None:
        if max_batches < 1:
            raise ValueError("archive max_batches must be >= 1")
        self._max_batches = max_batches
        self._records: List[_Record] = []
        self._batches: List[BatchNumber] = []  # parallel to _records, ascending
        self._current_batch: BatchNumber = NO_BATCH
        # Set when the live tree mutated without a batch tag: its batch
        # position is unknown, so no historical (or current) answer is safe
        # until the next tagged apply re-bases the archive.
        self._invalid = False
        # Bumped whenever the live tree is about to mutate (or history is
        # dropped); views based on the live tree check it to fail loudly
        # instead of reading half-updated digests.
        self._generation = 0
        self.deltas_recorded = 0
        self.trees_retired = 0
        self.records_compacted = 0

    # -- queries -------------------------------------------------------------

    @property
    def current_batch(self) -> BatchNumber:
        """Batch number of the live tree (the last mutating apply)."""
        return self._current_batch

    @property
    def oldest_batch(self) -> Optional[BatchNumber]:
        """Oldest batch the archive can still answer for (None when empty)."""
        if not self._batches:
            return None
        return self._batches[0]

    def __len__(self) -> int:
        return len(self._records)

    def tree_at(
        self, batch: BatchNumber, current_tree: MerkleTree
    ) -> Optional[Union[MerkleTree, HistoricalTreeView]]:
        """The tree as of ``batch``, or None when outside the retained window.

        ``current_tree`` is the owning store's live tree, used both as the
        answer for ``batch >= current_batch`` and as the fall-through base for
        delta resolution.
        """
        if self._invalid:
            return None
        if batch >= self._current_batch:
            return current_tree
        position = bisect.bisect_right(self._batches, batch) - 1
        if position < 0:
            return None
        target = self._records[position]
        if target.swallowed_min is not None and batch >= target.swallowed_min:
            # A compacted-away batch: the record's state is older than the
            # requested one and would verify against the wrong root.
            return None
        if target.tree is not None:
            return target.tree
        deltas: List[ReverseDelta] = [target.delta]
        for record in self._records[position + 1 :]:
            if record.tree is not None:
                # Retired trees are immutable: the view can outlive applies.
                return HistoricalTreeView(record.tree, deltas)
            deltas.append(record.delta)
        generation = self._generation
        return HistoricalTreeView(
            current_tree, deltas, stale_check=lambda: self._generation != generation
        )

    def covers(self, batch: BatchNumber) -> bool:
        """True when :meth:`tree_at` would answer for ``batch``.

        Cheap (two bisect-level checks, no view construction) so the
        processing-cost model can ask it per request.
        """
        if self._invalid:
            return False
        if batch >= self._current_batch:
            return True
        position = bisect.bisect_right(self._batches, batch) - 1
        if position < 0:
            return False
        record = self._records[position]
        return record.swallowed_min is None or batch < record.swallowed_min

    def prove_at(
        self, key: Key, batch: BatchNumber, current_tree: MerkleTree
    ) -> MerkleProof:
        """Proof for ``key`` against the tree as of ``batch``.

        Raises :class:`ProofError` when the batch is outside the archive or
        the key is not a member of the historical tree.
        """
        tree = self.tree_at(batch, current_tree)
        if tree is None:
            raise ProofError(f"batch {batch} is older than the archive retention")
        return tree.prove(key)

    # -- recording (called by MerkleStore before each mutation) ---------------

    def record_delta(self, new_batch: BatchNumber, delta: ReverseDelta) -> None:
        """Archive the current state as a reverse delta, superseded by ``new_batch``."""
        if self._append(_Record(batch=self._current_batch, delta=delta), new_batch):
            self.deltas_recorded += 1

    def record_tree(self, new_batch: BatchNumber, tree: MerkleTree) -> None:
        """Retire the current tree wholesale (a rebuild is about to replace it)."""
        if self._append(_Record(batch=self._current_batch, tree=tree), new_batch):
            self.trees_retired += 1

    def _append(self, record: _Record, new_batch: BatchNumber) -> bool:
        self._generation += 1  # the live tree is about to mutate
        if self._invalid:
            # The pre-state is unusable; re-base on the new batch instead of
            # archiving a delta against an unknown position.
            self.reset(base_batch=new_batch)
            return False
        if new_batch <= self._current_batch:
            raise ValueError(
                f"archive batches must increase: {new_batch} after {self._current_batch}"
            )
        self._records.append(record)
        self._batches.append(record.batch)
        self._current_batch = new_batch
        overflow = len(self._records) - self._max_batches
        if overflow > 0:
            del self._records[:overflow]
            del self._batches[:overflow]
        return True

    def reset(self, base_batch: BatchNumber = NO_BATCH) -> None:
        """Drop all history and re-base (state was replaced out of band)."""
        self._generation += 1
        self._records = []
        self._batches = []
        self._current_batch = base_batch
        self._invalid = False

    def invalidate(self) -> None:
        """Stop answering entirely: the live tree's batch position is unknown."""
        self._generation += 1
        self._records = []
        self._batches = []
        self._invalid = True

    # -- retention -----------------------------------------------------------

    def prune(self, upto: BatchNumber) -> int:
        """Drop records no longer needed for ``tree_at(b)`` with ``b >= upto``.

        Mirrors :meth:`MultiVersionStore.prune`: the newest record at or below
        ``upto`` is kept as the floor of the retained window.  Returns the
        number of records dropped.
        """
        cut = bisect.bisect_right(self._batches, upto) - 1
        if cut <= 0:
            return 0
        del self._records[:cut]
        del self._batches[:cut]
        return cut

    # -- compaction (checkpoint-time, see PerfConfig.archive_compaction) ------

    def compact(self, keep: Collection[BatchNumber]) -> int:
        """Merge records whose exact state no request can name any more.

        ``keep`` is the set of batch numbers that must stay exactly
        answerable — for a partition replica, the earliest header of every
        LCE run plus the retention floor, since
        ``_earliest_header_with_lce`` can never return any other header.  A
        record outside ``keep`` is merged into its next-older neighbour:
        consecutive reverse deltas overlap heavily near the tree root, so the
        union is smaller than the parts, which is what lets an equal memory
        budget retain a longer window.  Merged-away batches are remembered
        via ``swallowed_min`` so :meth:`tree_at` refuses (rather than
        mis-answers) for them.  Returns the number of records merged away.
        """
        if len(self._records) < 2:
            return 0
        keep_set = set(keep)
        merged: List[_Record] = [self._records[0]]
        removed = 0
        for record in self._records[1:]:
            target = merged[-1]
            mergeable = (
                record.batch not in keep_set
                # Never merge a retired full tree away: it terminates delta
                # resolution for every older record.
                and record.tree is None
            )
            if not mergeable:
                merged.append(record)
                continue
            if target.tree is not None:
                # The older neighbour is self-contained; the newer delta is
                # simply dropped (older chains stop at the tree anyway).
                pass
            else:
                # Reverse deltas are consulted oldest-first, so the merged
                # delta keeps the older record's cells where both define one.
                target.delta = [
                    {**newer_cells, **older_cells}
                    for older_cells, newer_cells in zip(target.delta, record.delta)
                ]
            if target.swallowed_min is None:
                target.swallowed_min = record.batch
            removed += 1
        if not removed:
            return 0
        self._generation += 1  # views over dropped records must not linger
        self._records = merged
        self._batches = [record.batch for record in merged]
        self.records_compacted += removed
        return removed
