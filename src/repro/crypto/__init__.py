"""Cryptographic substrate: hashing, signatures, key registry and Merkle ADS."""

from repro.crypto.archive import HistoricalTreeView, MerkleTreeArchive
from repro.crypto.hashing import (
    Digest,
    combine_digests,
    digest_of,
    sha256,
    sha256_hex,
    stable_encode,
)
from repro.crypto.merkle import (
    EMPTY_ROOT,
    MerkleProof,
    MerkleStore,
    MerkleTree,
    ProofStep,
    leaf_digest,
    verify_proof,
)
from repro.crypto.rsa import RsaKeyPair, RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.crypto.signatures import (
    HmacSigner,
    KeyRegistry,
    NodeVerifier,
    RsaSigner,
    Signature,
    Signer,
    VerifyCache,
    build_registry,
    make_signer,
)

__all__ = [
    "Digest",
    "EMPTY_ROOT",
    "HistoricalTreeView",
    "HmacSigner",
    "KeyRegistry",
    "NodeVerifier",
    "MerkleProof",
    "MerkleStore",
    "MerkleTree",
    "MerkleTreeArchive",
    "ProofStep",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "RsaSigner",
    "Signature",
    "Signer",
    "VerifyCache",
    "build_registry",
    "combine_digests",
    "digest_of",
    "generate_keypair",
    "leaf_digest",
    "make_signer",
    "sha256",
    "sha256_hex",
    "stable_encode",
    "verify_proof",
]
