"""A from-scratch textbook RSA signature scheme.

The paper assumes each edge node owns a public/private key pair used to sign
every inter-node message.  This module provides that substrate without any
external dependency: Miller–Rabin probabilistic prime generation, modular
inverse via the extended Euclidean algorithm, and hash-then-sign signatures
(``signature = H(message)^d mod n``).

This is *textbook* RSA — no padding scheme — which is fine for the simulated
trust model (the adversary in the simulation forges by flipping bytes, not by
exploiting algebraic malleability), and keeps the implementation compact and
auditable.  The default key size of 512 bits keeps key generation fast; it is
configurable for callers who want more margin.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.common.errors import CryptoError

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


@dataclass(frozen=True)
class RsaPublicKey:
    """Public half of an RSA key pair."""

    n: int
    e: int

    def fingerprint(self) -> str:
        """Short stable identifier of the key (hex digest prefix)."""
        material = f"{self.n:x}:{self.e:x}".encode("ascii")
        return hashlib.sha256(material).hexdigest()[:16]


@dataclass(frozen=True)
class RsaPrivateKey:
    """Private half of an RSA key pair (keeps the public part alongside)."""

    n: int
    d: int
    public: RsaPublicKey


@dataclass(frozen=True)
class RsaKeyPair:
    """A generated RSA key pair."""

    public: RsaPublicKey
    private: RsaPrivateKey


def generate_keypair(bits: int = 512, rng: "random.Random | None" = None) -> RsaKeyPair:
    """Generate an RSA key pair with a modulus of roughly ``bits`` bits."""
    if bits < 128:
        raise CryptoError("RSA modulus must be at least 128 bits")
    # Deterministic fallback: key generation must not be the one place a
    # whole-system run touches unseeded randomness (chaos replays are
    # expected to be bit-identical from the seed alone).  Callers who want
    # distinct keys pass their own generator, as SimEnvironment does.
    rng = rng or random.Random(0x52534131)
    e = 65537
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = _modular_inverse(e, phi)
        public = RsaPublicKey(n=n, e=e)
        private = RsaPrivateKey(n=n, d=d, public=public)
        return RsaKeyPair(public=public, private=private)


def sign(private: RsaPrivateKey, message: bytes) -> bytes:
    """Sign ``message`` with hash-then-sign RSA."""
    digest_int = _message_representative(message, private.n)
    signature_int = pow(digest_int, private.d, private.n)
    return signature_int.to_bytes((private.n.bit_length() + 7) // 8, "big")


def verify(public: RsaPublicKey, message: bytes, signature: bytes) -> bool:
    """Return True when ``signature`` is a valid signature of ``message``."""
    if not signature:
        return False
    signature_int = int.from_bytes(signature, "big")
    if signature_int >= public.n:
        return False
    recovered = pow(signature_int, public.e, public.n)
    return recovered == _message_representative(message, public.n)


def _message_representative(message: bytes, modulus: int) -> int:
    digest = hashlib.sha256(message).digest()
    return int.from_bytes(digest, "big") % modulus


def _generate_prime(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _is_probable_prime(n: int, rng: random.Random, rounds: int = 20) -> bool:
    if n < 2:
        return False
    for prime in _SMALL_PRIMES:
        if n == prime:
            return True
        if n % prime == 0:
            return False
    # Write n - 1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _modular_inverse(a: int, m: int) -> int:
    g, x, _ = _extended_gcd(a % m, m)
    if g != 1:
        raise CryptoError("modular inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> "tuple[int, int, int]":
    if a == 0:
        return b, 0, 1
    g, x, y = _extended_gcd(b % a, a)
    return g, y - (b // a) * x, x
