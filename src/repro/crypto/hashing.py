"""Hashing helpers used by signatures, Merkle trees and batch digests.

Everything that ends up under a signature is first reduced to a SHA-256
digest of a canonical byte encoding.  ``stable_encode`` provides the
canonical encoding: it is deterministic across processes and independent of
Python's per-process hash randomisation, which matters because different
replicas must compute identical digests for identical batches.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence, Union

Digest = bytes

#: Types that ``stable_encode`` understands.
Encodable = Union[
    None, bool, int, float, str, bytes, Sequence["Encodable"], Mapping[str, "Encodable"]
]


def sha256(data: bytes) -> Digest:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def stable_encode(value: Encodable) -> bytes:
    """Encode ``value`` into a canonical, order-stable byte string.

    The encoding is a small, self-delimiting tagged format:

    * ``None``/``bool``/``int``/``float``/``str``/``bytes`` become tagged
      literals.
    * sequences (``list``/``tuple``) encode their items in order;
    * mappings encode their items sorted by key, so two dictionaries with the
      same contents always encode identically regardless of insertion order.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def digest_of(value: Encodable) -> Digest:
    """SHA-256 digest of the canonical encoding of ``value``."""
    return sha256(stable_encode(value))


def combine_digests(digests: Iterable[Digest]) -> Digest:
    """Hash a sequence of digests into one (used for batch/certificate ids)."""
    hasher = hashlib.sha256()
    for digest in digests:
        hasher.update(digest)
    return hasher.digest()


def _encode_into(value: Encodable, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        encoded = str(value).encode("ascii")
        out += b"I" + len(encoded).to_bytes(4, "big") + encoded
    elif isinstance(value, float):
        encoded = repr(value).encode("ascii")
        out += b"D" + len(encoded).to_bytes(4, "big") + encoded
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out += b"S" + len(encoded).to_bytes(4, "big") + encoded
    elif isinstance(value, bytes):
        out += b"B" + len(value).to_bytes(4, "big") + value
    elif isinstance(value, (list, tuple)):
        out += b"L" + len(value).to_bytes(4, "big")
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, Mapping):
        items = sorted(value.items(), key=lambda kv: kv[0])
        out += b"M" + len(items).to_bytes(4, "big")
        for key, item in items:
            if not isinstance(key, str):
                raise TypeError(f"mapping keys must be str, got {type(key).__name__}")
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise TypeError(f"cannot stably encode values of type {type(value).__name__}")
