"""Merkle tree authenticated data structure (ADS).

TransEdge certifies the integrity of committed data with a Merkle tree per
partition: all replicas of a cluster recompute the tree while processing a
batch, the root is agreed on through the BFT layer, and read-only clients
verify returned values against the agreed root using membership proofs
(Sections 3.4 and 4.1/4.2 of the paper).

The tree is built over the partition's key/value map: leaves are
``H(key || H(value))`` in sorted key order, internal nodes are
``H(left || right)``.  An odd node at any level is promoted unchanged.  The
implementation favours clarity over asymptotic cleverness; the store keeps a
current tree and rebuilds it after applying a batch's write-sets, and can
rebuild a *historical* tree for any previously committed batch when a
read-only client asks for an older snapshot in round two.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ProofError
from repro.common.ids import NO_BATCH, BatchNumber
from repro.common.types import Key, Value
from repro.crypto.hashing import Digest, sha256

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (archive imports merkle)
    from repro.crypto.archive import HistoricalTreeView, MerkleTreeArchive

#: Root value of a tree with no leaves.
EMPTY_ROOT: Digest = sha256(b"transedge:empty-merkle-tree")


def leaf_digest(key: Key, value: Value) -> Digest:
    """Digest of one leaf: binds the key to a digest of its value."""
    return sha256(b"L" + key.encode("utf-8") + b"\x00" + sha256(value))


def _parent_digest(left: Digest, right: Digest) -> Digest:
    return sha256(b"I" + left + right)


@dataclass(frozen=True)
class ProofStep:
    """One step of a membership proof: a sibling digest and its side."""

    sibling: Digest
    sibling_is_left: bool


@dataclass(frozen=True)
class MerkleProof:
    """Membership proof for one key/value pair against a specific root."""

    key: Key
    steps: Tuple[ProofStep, ...]

    def __len__(self) -> int:
        return len(self.steps)


def proof_steps(level_sizes, leaf_index, digest_at) -> Tuple[ProofStep, ...]:
    """The sibling walk shared by live trees and archived historical views.

    ``level_sizes`` are the per-level node counts (leaves first),
    ``digest_at(level, index)`` resolves one node digest.  Keeping the walk —
    including the odd-node-promotion rule (an odd node contributes no sibling
    at its level) — in one place is what makes archive proofs byte-identical
    to live-tree proofs by construction.
    """
    index = leaf_index
    steps: List[ProofStep] = []
    for level_number, size in enumerate(level_sizes[:-1]):
        if index % 2 == 0:
            sibling_index = index + 1
            sibling_is_left = False
        else:
            sibling_index = index - 1
            sibling_is_left = True
        if sibling_index < size:
            steps.append(
                ProofStep(
                    sibling=digest_at(level_number, sibling_index),
                    sibling_is_left=sibling_is_left,
                )
            )
        index //= 2
    return tuple(steps)


class MerkleTree:
    """A Merkle tree over a key/value mapping.

    The tree supports two kinds of efficient updates for keys that are
    *already present*: :meth:`update_values` recomputes only the affected
    paths in place, and :meth:`root_with_updates` answers "what would the
    root be if these values changed" without mutating anything — which is how
    replicas validate the Merkle root a leader proposes before voting for it.
    Inserting new keys changes leaf positions and requires a rebuild.
    """

    def __init__(self, items: Mapping[Key, Value]) -> None:
        self._keys: List[Key] = sorted(items)
        self._index: Dict[Key, int] = {key: i for i, key in enumerate(self._keys)}
        self._levels: List[List[Digest]] = []
        leaves = [leaf_digest(key, items[key]) for key in self._keys]
        self._levels.append(leaves)
        current = leaves
        while len(current) > 1:
            nxt: List[Digest] = []
            for i in range(0, len(current) - 1, 2):
                nxt.append(_parent_digest(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                nxt.append(current[-1])
            self._levels.append(nxt)
            current = nxt

    @classmethod
    def from_items(cls, items: Mapping[Key, Value]) -> "MerkleTree":
        """Build a tree from a key/value mapping."""
        return cls(items)

    @property
    def root(self) -> Digest:
        """Root digest (``EMPTY_ROOT`` for an empty tree)."""
        if not self._levels[0]:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def covers(self, keys: Iterable[Key]) -> bool:
        """True when every key in ``keys`` is already a leaf of this tree."""
        return all(key in self._index for key in keys)

    def _recompute_parents(self, level_index: int, dirty: "set[int]", overlay=None) -> "set[int]":
        """Compute the dirty parent digests one level up.

        When ``overlay`` is ``None`` the tree is mutated in place; otherwise
        digests are read through/written to the overlay dictionaries and the
        stored levels stay untouched.
        """
        level = self._levels[level_index]
        parent_level = self._levels[level_index + 1]
        read_level = level if overlay is None else overlay[level_index]
        parents_dirty: "set[int]" = set()
        for index in dirty:
            parent_index = index // 2
            if parent_index in parents_dirty:
                continue
            left_index = parent_index * 2
            right_index = left_index + 1

            def digest_at(i: int) -> Digest:
                if overlay is not None and i in overlay[level_index]:
                    return overlay[level_index][i]
                return level[i]

            if right_index < len(level):
                parent = _parent_digest(digest_at(left_index), digest_at(right_index))
            else:
                parent = digest_at(left_index)
            if overlay is None:
                parent_level[parent_index] = parent
            else:
                overlay[level_index + 1][parent_index] = parent
            parents_dirty.add(parent_index)
        return parents_dirty

    def update_values(self, updates: Mapping[Key, Value]) -> Digest:
        """Update the values of existing keys in place and return the new root."""
        if not updates:
            return self.root
        if not self.covers(updates):
            raise ProofError("update_values only handles keys already in the tree")
        dirty = set()
        for key, value in updates.items():
            index = self._index[key]
            self._levels[0][index] = leaf_digest(key, value)
            dirty.add(index)
        for level_index in range(len(self._levels) - 1):
            dirty = self._recompute_parents(level_index, dirty)
        return self.root

    def root_with_updates(self, updates: Mapping[Key, Value]) -> Digest:
        """Root the tree *would* have after ``updates``, without mutating it."""
        if not updates:
            return self.root
        if not self.covers(updates):
            raise ProofError("root_with_updates only handles keys already in the tree")
        overlay: List[Dict[int, Digest]] = [dict() for _ in self._levels]
        dirty = set()
        for key, value in updates.items():
            index = self._index[key]
            overlay[0][index] = leaf_digest(key, value)
            dirty.add(index)
        for level_index in range(len(self._levels) - 1):
            dirty = self._recompute_parents(level_index, dirty, overlay=overlay)
        top = overlay[-1]
        if 0 in top:
            return top[0]
        return self.root

    def capture_paths(self, keys: Iterable[Key]) -> List[Dict[int, Digest]]:
        """Snapshot the digests on the root paths of ``keys``, level by level.

        This is exactly the cell set :meth:`update_values` overwrites for the
        same keys, so the result is the reverse delta that restores this tree
        after such an update — the raw material of
        :class:`~repro.crypto.archive.MerkleTreeArchive`.  Cost is
        O(len(keys) · log K).
        """
        dirty = {self._index[key] for key in keys}
        snapshot: List[Dict[int, Digest]] = []
        for level in self._levels:
            snapshot.append({index: level[index] for index in dirty})
            dirty = {index // 2 for index in dirty}
        return snapshot

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Key) -> bool:
        return key in self._index

    def keys(self) -> Sequence[Key]:
        return tuple(self._keys)

    def prove(self, key: Key) -> MerkleProof:
        """Produce a membership proof for ``key``.

        Raises :class:`ProofError` when the key is not part of the tree.
        """
        if key not in self._index:
            raise ProofError(f"key {key!r} is not in the Merkle tree")
        steps = proof_steps(
            [len(level) for level in self._levels],
            self._index[key],
            lambda level, index: self._levels[level][index],
        )
        return MerkleProof(key=key, steps=steps)


def verify_proof(root: Digest, key: Key, value: Value, proof: MerkleProof) -> bool:
    """Check a membership proof against ``root``.

    Returns True when replaying the proof over ``H(key, value)`` reproduces
    ``root``; the caller decides how to react to a failure (a read-only
    client treats it as a byzantine response and retries elsewhere).
    """
    if proof.key != key:
        return False
    digest = leaf_digest(key, value)
    for step in proof.steps:
        if step.sibling_is_left:
            digest = _parent_digest(step.sibling, digest)
        else:
            digest = _parent_digest(digest, step.sibling)
    return digest == root


class MerkleStore:
    """A key/value map together with its current Merkle tree.

    Replicas keep one ``MerkleStore`` per partition; ``apply`` folds in a
    batch's visible write-sets and rebuilds the tree, returning the new root
    that is then agreed on through consensus.

    When constructed with a :class:`~repro.crypto.archive.MerkleTreeArchive`,
    every batch-tagged ``apply`` first archives the superseded tree state, so
    :meth:`tree_at`/:meth:`prove_at` can answer round-2 snapshot reads for
    recent batches without materialising or rebuilding anything.
    """

    def __init__(
        self,
        initial: Optional[Mapping[Key, Value]] = None,
        archive: Optional["MerkleTreeArchive"] = None,
        base_batch: BatchNumber = NO_BATCH,
    ) -> None:
        self._items: Dict[Key, Value] = dict(initial or {})
        self._tree = MerkleTree(self._items)
        self._archive = archive
        if archive is not None:
            archive.reset(base_batch)

    @property
    def root(self) -> Digest:
        return self._tree.root

    @property
    def tree(self) -> MerkleTree:
        return self._tree

    @property
    def archive(self) -> Optional["MerkleTreeArchive"]:
        return self._archive

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Key) -> bool:
        return key in self._items

    def get(self, key: Key) -> Optional[Value]:
        return self._items.get(key)

    def items(self) -> Mapping[Key, Value]:
        """Read-only live view of the store contents (no copy)."""
        return MappingProxyType(self._items)

    def apply(self, updates: Mapping[Key, Value], batch: Optional[BatchNumber] = None) -> Digest:
        """Apply ``updates`` and return the new root.

        Updates to existing keys take the incremental path (only the affected
        tree paths are recomputed); introducing a brand-new key rebuilds the
        tree, since leaf positions shift.  ``batch`` tags the update for the
        archive; an untagged mutating apply clears the archive, since its
        deltas would no longer describe the live tree.
        """
        if not updates:
            return self._tree.root
        covered = self._tree.covers(updates)
        if self._archive is not None:
            if batch is None:
                self._archive.invalidate()
            elif covered:
                self._archive.record_delta(batch, self._tree.capture_paths(updates))
            else:
                self._archive.record_tree(batch, self._tree)
        self._items.update(updates)
        if covered:
            return self._tree.update_values(updates)
        self._tree = MerkleTree(self._items)
        return self._tree.root

    def tree_at(
        self, batch: BatchNumber
    ) -> Optional["MerkleTree | HistoricalTreeView"]:
        """The tree as of ``batch``, or None without an archive / past retention."""
        if self._archive is None:
            return None
        return self._archive.tree_at(batch, self._tree)

    def prove_at(self, key: Key, batch: BatchNumber) -> MerkleProof:
        """Proof for ``key`` against the archived tree as of ``batch``."""
        if self._archive is None:
            raise ProofError("store has no Merkle tree archive")
        return self._archive.prove_at(key, batch, self._tree)

    def archive_covers(self, batch: BatchNumber) -> bool:
        """True when :meth:`tree_at` can answer for ``batch`` from the archive."""
        if self._archive is None:
            return False
        return self._archive.covers(batch)

    def prune_archive(self, upto: BatchNumber) -> int:
        """Retention hook: drop archived states below ``upto`` (checkpoint GC)."""
        if self._archive is None:
            return 0
        return self._archive.prune(upto)

    def compact_archive(self, keep) -> int:
        """Checkpoint hook: merge archive deltas for batches outside ``keep``."""
        if self._archive is None:
            return 0
        return self._archive.compact(keep)

    def preview_root(self, updates: Mapping[Key, Value]) -> Digest:
        """Root the store would have after ``updates``, without applying them."""
        if not updates:
            return self._tree.root
        if self._tree.covers(updates):
            return self._tree.root_with_updates(updates)
        items = dict(self._items)
        items.update(updates)
        return MerkleTree(items).root

    def prove(self, key: Key) -> MerkleProof:
        return self._tree.prove(key)


def proof_payload(proof: MerkleProof) -> list:
    """Encode a proof as a ``stable_encode``-compatible payload (for signing)."""
    return [proof.key, [[step.sibling, step.sibling_is_left] for step in proof.steps]]
